//! The lowered-design IR: a flat netlist of hardware cells over single-bit
//! nets, produced by [`crate::elaborate()`] from a compiled dataflow plan.
//!
//! The IR is deliberately small: gate-level primitives (logic gates,
//! flip-flops, full adders, multiplexers, counters) plus a handful of
//! *behavioural* cells for blocks whose cycle-level semantics are
//! data-dependent state machines (source comparators, manipulator FSMs,
//! correlation-agnostic counters, the feedback divider). Every cell knows its
//! `sc_hwcost` primitive content, so [`Design::netlist`] derives the plan's
//! hardware cost by counting the *actually elaborated* structure instead of a
//! per-op lookup table.

use sc_graph::{cost as graph_cost, ManipulatorKind, UnaryFsmOp};
use sc_hwcost::{Netlist, Primitive};
use sc_rng::SourceSpec;
use std::collections::BTreeMap;

/// Identifier of a single-bit net in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetRef(pub(crate) usize);

impl NetRef {
    /// Raw dense index of the net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The hardware block a [`Cell`] instantiates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CellKind {
    /// Two-input AND gate.
    And2,
    /// Two-input OR gate.
    Or2,
    /// Two-input XOR gate.
    Xor2,
    /// Two-input XNOR gate.
    Xnor2,
    /// Inverter.
    Inv,
    /// Two-to-one multiplexer: inputs `(in0, in1, select)`.
    Mux2,
    /// D flip-flop.
    Dff,
    /// One-bit full adder: inputs `(a, b, cin)`, outputs `(sum, carry)`.
    FullAdder,
    /// Up counter with a combinational increment read path: one enable
    /// input, `bits` output bits (LSB first).
    Counter {
        /// Output bus width.
        bits: u32,
    },
    /// D/S source: an RNG/sequence generator compared against a digital
    /// threshold every cycle (Fig. 2g). No inputs, one output bit.
    Source {
        /// The generator family and configuration.
        spec: SourceSpec,
        /// Samples already served to earlier consumers of a shared generator.
        skip: u64,
        /// The encoded probability (comparator threshold).
        threshold: f64,
    },
    /// A 0.5-threshold select-bit source for MUX scaled adders.
    HalfSelect {
        /// The generator.
        spec: SourceSpec,
        /// Samples already served to earlier consumers.
        skip: u64,
    },
    /// Weighted one-hot selection source: each cycle exactly one of the
    /// `weights.len()` outputs is high, output `i` with probability
    /// `weights[i]` (cumulative-threshold comparison network).
    SelectOneHot {
        /// The generator.
        spec: SourceSpec,
        /// Samples already served to earlier consumers.
        skip: u64,
        /// Per-output selection probabilities.
        weights: Vec<f64>,
    },
    /// A correlation-manipulating FSM (synchronizer / desynchronizer /
    /// decorrelator), kept as one sequential block. Two inputs, two outputs.
    Fsm {
        /// The circuit family and depth.
        kind: ManipulatorKind,
    },
    /// The correlation-agnostic adder: a full adder whose sum feeds the
    /// residue flip-flop and whose carry (majority) is the output.
    CaAdd,
    /// Correlation-agnostic maximum (two counters + comparator).
    CaMax,
    /// Correlation-agnostic minimum.
    CaMin,
    /// Saturating-counter FSM activation.
    UnaryFsm {
        /// The FSM design.
        op: UnaryFsmOp,
    },
    /// Feedback SC divider with its comparison source.
    Divider {
        /// Comparison sample source.
        spec: SourceSpec,
        /// Samples already served to earlier consumers.
        skip: u64,
        /// Integration counter width.
        counter_bits: u32,
    },
    /// Accumulative parallel counter: `lanes` inputs, `bits` output bits
    /// carrying the running total (including the current cycle).
    Apc {
        /// Number of parallel input lanes.
        lanes: usize,
        /// Accumulator read-bus width.
        bits: u32,
    },
}

impl CellKind {
    /// Short instance-name stem used in traces and Verilog.
    #[must_use]
    pub fn stem(&self) -> &'static str {
        match self {
            CellKind::And2 => "and2",
            CellKind::Or2 => "or2",
            CellKind::Xor2 => "xor2",
            CellKind::Xnor2 => "xnor2",
            CellKind::Inv => "inv",
            CellKind::Mux2 => "mux2",
            CellKind::Dff => "dff",
            CellKind::FullAdder => "fa",
            CellKind::Counter { .. } => "counter",
            CellKind::Source { .. } => "source",
            CellKind::HalfSelect { .. } => "halfsel",
            CellKind::SelectOneHot { .. } => "wsel",
            CellKind::Fsm { .. } => "fsm",
            CellKind::CaAdd => "caadd",
            CellKind::CaMax => "camax",
            CellKind::CaMin => "camin",
            CellKind::UnaryFsm { .. } => "ufsm",
            CellKind::Divider { .. } => "divider",
            CellKind::Apc { .. } => "apc",
        }
    }

    /// Number of input ports.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        match self {
            CellKind::Source { .. }
            | CellKind::HalfSelect { .. }
            | CellKind::SelectOneHot { .. } => 0,
            CellKind::Inv
            | CellKind::Dff
            | CellKind::Counter { .. }
            | CellKind::UnaryFsm { .. } => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::Fsm { .. }
            | CellKind::CaAdd
            | CellKind::CaMax
            | CellKind::CaMin
            | CellKind::Divider { .. } => 2,
            CellKind::Mux2 | CellKind::FullAdder => 3,
            CellKind::Apc { lanes, .. } => *lanes,
        }
    }

    /// Number of output ports.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        match self {
            CellKind::FullAdder | CellKind::Fsm { .. } => 2,
            CellKind::Counter { bits } | CellKind::Apc { bits, .. } => *bits as usize,
            CellKind::SelectOneHot { weights, .. } => weights.len(),
            _ => 1,
        }
    }

    /// The `sc_hwcost` primitive content of this cell, at the given
    /// converter precision (used for comparator/register/counter widths of
    /// the *modelled* blocks, mirroring the table-driven bridge's
    /// convention; gate-level cells count as themselves).
    #[must_use]
    pub fn primitives(&self, converter_bits: u32) -> Netlist {
        match self {
            CellKind::And2 => Netlist::new("and2").with(Primitive::And2, 1),
            CellKind::Or2 => Netlist::new("or2").with(Primitive::Or2, 1),
            CellKind::Xor2 => Netlist::new("xor2").with(Primitive::Xor2, 1),
            CellKind::Xnor2 => Netlist::new("xnor2").with(Primitive::Xnor2, 1),
            CellKind::Inv => Netlist::new("inv").with(Primitive::Inverter, 1),
            CellKind::Mux2 => Netlist::new("mux2").with(Primitive::Mux2, 1),
            CellKind::Dff => Netlist::new("dff").with(Primitive::DFlipFlop, 1),
            CellKind::FullAdder => Netlist::new("fa").with(Primitive::FullAdder, 1),
            CellKind::Counter { bits } => {
                Netlist::new("counter").with(Primitive::Counter(*bits), 1)
            }
            CellKind::Source { spec, .. } => {
                // Comparator + value register (the D/S converter) plus the
                // generator itself — exactly the table bridge's composition.
                let mut n = Netlist::new("source")
                    .with(Primitive::Comparator(converter_bits), 1)
                    .with(Primitive::Register(converter_bits), 1);
                n.merge(&graph_cost::source_netlist(spec, converter_bits));
                n
            }
            CellKind::HalfSelect { spec, .. } => graph_cost::source_netlist(spec, converter_bits),
            CellKind::SelectOneHot { spec, .. } => graph_cost::source_netlist(spec, converter_bits),
            CellKind::Fsm { kind } => graph_cost::manipulator_netlist(kind),
            // The structural CA adder refines the table model: the majority /
            // sum pair is literally one full adder plus the residue flip-flop.
            CellKind::CaAdd => Netlist::new("ca-add")
                .with(Primitive::FullAdder, 1)
                .with(Primitive::DFlipFlop, 1),
            CellKind::CaMax | CellKind::CaMin => {
                sc_hwcost::characterize::correlation_agnostic_max_netlist()
            }
            CellKind::UnaryFsm { op } => graph_cost::unary_fsm_netlist(*op),
            CellKind::Divider {
                spec, counter_bits, ..
            } => {
                let mut n = graph_cost::divider_netlist(*counter_bits);
                n.merge(&graph_cost::source_netlist(spec, converter_bits));
                n
            }
            // A k-lane APC: full-adder reduction tree into a wider
            // accumulator, costed at the table's converter-relative width.
            CellKind::Apc { lanes, .. } => Netlist::new("apc")
                .with(Primitive::Counter(converter_bits + 2), 1)
                .with(Primitive::FullAdder, lanes.saturating_sub(1) as u64),
        }
    }
}

/// One instantiated hardware block.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// What the cell is.
    pub kind: CellKind,
    /// Input nets, in port order.
    pub inputs: Vec<NetRef>,
    /// Output nets, in port order.
    pub outputs: Vec<NetRef>,
}

/// How a plan sink is read back out of the lowered circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SinkPlan {
    /// `SinkStream`: the stream on `net` is the named result.
    Stream {
        /// Sink name.
        name: String,
        /// The observed net.
        net: NetRef,
    },
    /// `SinkValue`: S/D conversion of the stream on `net`; `count_bus` is the
    /// elaborated counter's read bus (LSB first).
    Value {
        /// Sink name.
        name: String,
        /// The counted net.
        net: NetRef,
        /// Counter read bus.
        count_bus: Vec<NetRef>,
    },
    /// `SinkCount`: like `Value` but exposing the raw count.
    Count {
        /// Sink name.
        name: String,
        /// The counted net.
        net: NetRef,
        /// Counter read bus.
        count_bus: Vec<NetRef>,
    },
    /// `SinkSum`: APC accumulator bus over the input lanes.
    Sum {
        /// Sink name.
        name: String,
        /// Accumulator read bus (running total, LSB first).
        total_bus: Vec<NetRef>,
    },
    /// `SccProbe`: joint counters over the pair `(x, y)`.
    Scc {
        /// Sink name.
        name: String,
        /// Probed X net.
        x: NetRef,
        /// Probed Y net.
        y: NetRef,
        /// Counter bus of the AND (joint-1) count.
        a_bus: Vec<NetRef>,
        /// Counter bus of the X count.
        x_bus: Vec<NetRef>,
        /// Counter bus of the Y count.
        y_bus: Vec<NetRef>,
    },
}

/// A fully elaborated gate-level design: nets, cells, primary I/O, and the
/// sink read-back plan. Produced by [`crate::elaborate()`]; consumed by the
/// co-simulation harness ([`Design::cosimulate`]), the Verilog emitter
/// ([`crate::to_verilog`]), and the structural cost bridge
/// ([`Design::netlist`]).
#[derive(Debug, Clone)]
pub struct Design {
    pub(crate) name: String,
    pub(crate) net_count: usize,
    pub(crate) cells: Vec<Cell>,
    /// Primary inputs: `(name, net, batch stream slot)`.
    pub(crate) inputs: Vec<(String, NetRef, usize)>,
    pub(crate) sinks: Vec<SinkPlan>,
    pub(crate) stream_length: usize,
}

impl Design {
    pub(crate) fn new(name: impl Into<String>, stream_length: usize) -> Self {
        Design {
            name: name.into(),
            net_count: 0,
            cells: Vec::new(),
            inputs: Vec::new(),
            sinks: Vec::new(),
            stream_length,
        }
    }

    pub(crate) fn add_net(&mut self) -> NetRef {
        let id = NetRef(self.net_count);
        self.net_count += 1;
        id
    }

    /// Instantiates a cell over the given input nets, allocating and
    /// returning its output nets.
    pub(crate) fn cell(&mut self, kind: CellKind, inputs: &[NetRef]) -> Vec<NetRef> {
        debug_assert_eq!(inputs.len(), kind.num_inputs(), "{kind:?}");
        let outputs: Vec<NetRef> = (0..kind.num_outputs()).map(|_| self.add_net()).collect();
        self.cells.push(Cell {
            kind,
            inputs: inputs.to_vec(),
            outputs: outputs.clone(),
        });
        outputs
    }

    /// The design name (taken from the elaboration call).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of single-bit nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of instantiated cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The stream length (clock cycles per run) the design was elaborated for.
    #[must_use]
    pub fn stream_length(&self) -> usize {
        self.stream_length
    }

    /// The instantiated cells, in elaboration (topological) order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The sink read-back plan.
    #[must_use]
    pub fn sinks(&self) -> &[SinkPlan] {
        &self.sinks
    }

    /// Primary input names with their batch stream slots.
    pub fn inputs(&self) -> impl Iterator<Item = (&str, usize)> {
        self.inputs.iter().map(|(n, _, slot)| (n.as_str(), *slot))
    }

    /// Per-cell-kind instance counts (by name stem), for reports and benches.
    #[must_use]
    pub fn kind_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut histogram = BTreeMap::new();
        for cell in &self.cells {
            *histogram.entry(cell.kind.stem()).or_insert(0) += 1;
        }
        histogram
    }

    /// The structural `sc_hwcost` netlist of the design: the sum of every
    /// instantiated cell's primitive content. Unlike the table-driven
    /// [`sc_graph::cost::compiled_netlist`], which costs each plan *op* from
    /// a lookup, this counts what the elaborator actually built — the two
    /// agree exactly for every block whose elaboration matches the table's
    /// model (sources, manipulators, muxes, counters, single-gate
    /// arithmetic), and the structural count is authoritative where the
    /// elaboration is finer (e.g. the CA adder's full-adder + flip-flop
    /// decomposition).
    #[must_use]
    pub fn netlist(&self, name: impl Into<String>, converter_bits: u32) -> Netlist {
        let mut total = Netlist::new(name);
        for cell in &self.cells {
            total.merge(&cell.kind.primitives(converter_bits));
        }
        total
    }
}
