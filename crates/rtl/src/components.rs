//! Cycle-level [`sc_sim::Component`] implementations of the behavioural
//! cells in the lowered-design IR.
//!
//! Each component replicates, bit for bit, the computation the word-parallel
//! [`sc_graph::Executor`] performs for the same plan step — same sample
//! order, same floating-point comparisons — so a lowered circuit
//! co-simulates bit-identically to the executor (the property pinned by the
//! workspace `rtl_cosim` suite).

use sc_bitstream::Probability;
use sc_core::CorrelationManipulator;
use sc_rng::{RandomSource, SourceSpec};
use sc_sim::Component;

/// D/S source comparator: emits `threshold > sample` each cycle (Fig. 2g).
pub struct SourceBit {
    source: Box<dyn RandomSource>,
    spec: SourceSpec,
    skip: u64,
    threshold: f64,
}

impl SourceBit {
    /// Builds the source positioned `skip` samples into its sequence.
    #[must_use]
    pub fn new(spec: &SourceSpec, skip: u64, threshold: f64) -> Self {
        SourceBit {
            source: spec.build_skipped(skip),
            spec: spec.clone(),
            skip,
            threshold: Probability::saturating(threshold).get(),
        }
    }
}

impl Component for SourceBit {
    fn name(&self) -> &str {
        "source"
    }

    fn num_inputs(&self) -> usize {
        0
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn evaluate(&mut self, _inputs: &[bool], outputs: &mut [bool]) {
        outputs[0] = self.threshold > self.source.next_unit();
    }

    fn reset(&mut self) {
        self.source = self.spec.build_skipped(self.skip);
    }
}

/// 0.5-threshold select-bit source for MUX scaled adders: `sample < 0.5`.
pub struct HalfSelectBit {
    source: Box<dyn RandomSource>,
    spec: SourceSpec,
    skip: u64,
}

impl HalfSelectBit {
    /// Builds the source positioned `skip` samples into its sequence.
    #[must_use]
    pub fn new(spec: &SourceSpec, skip: u64) -> Self {
        HalfSelectBit {
            source: spec.build_skipped(skip),
            spec: spec.clone(),
            skip,
        }
    }
}

impl Component for HalfSelectBit {
    fn name(&self) -> &str {
        "halfsel"
    }

    fn num_inputs(&self) -> usize {
        0
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn evaluate(&mut self, _inputs: &[bool], outputs: &mut [bool]) {
        outputs[0] = self.source.next_unit() < Probability::HALF.get();
    }

    fn reset(&mut self) {
        self.source = self.spec.build_skipped(self.skip);
    }
}

/// Weighted one-hot selection: each cycle a cumulative walk over the weights
/// against one fresh sample raises exactly one of the outputs — the select
/// network of the weighted multiplexer tree, with leftover probability mass
/// falling to the last output (identical to the executor's selection rule).
pub struct SelectOneHot {
    source: Box<dyn RandomSource>,
    spec: SourceSpec,
    skip: u64,
    weights: Vec<f64>,
}

impl SelectOneHot {
    /// Builds the selection source positioned `skip` samples in.
    #[must_use]
    pub fn new(spec: &SourceSpec, skip: u64, weights: &[f64]) -> Self {
        SelectOneHot {
            source: spec.build_skipped(skip),
            spec: spec.clone(),
            skip,
            weights: weights.to_vec(),
        }
    }
}

impl Component for SelectOneHot {
    fn name(&self) -> &str {
        "wsel"
    }

    fn num_inputs(&self) -> usize {
        0
    }

    fn num_outputs(&self) -> usize {
        self.weights.len()
    }

    fn evaluate(&mut self, _inputs: &[bool], outputs: &mut [bool]) {
        let mut u = self.source.next_unit();
        let mut selected = self.weights.len() - 1;
        for (idx, weight) in self.weights.iter().enumerate() {
            if u < *weight {
                selected = idx;
                break;
            }
            u -= weight;
        }
        for (i, out) in outputs.iter_mut().enumerate() {
            *out = i == selected;
        }
    }

    fn reset(&mut self) {
        self.source = self.spec.build_skipped(self.skip);
    }
}

/// A correlation-manipulating FSM as one two-in / two-out Mealy block.
pub struct FsmPair {
    inner: Box<dyn CorrelationManipulator>,
    name: String,
}

impl FsmPair {
    /// Wraps a freshly built manipulator.
    #[must_use]
    pub fn new(inner: Box<dyn CorrelationManipulator>) -> Self {
        let name = inner.name();
        FsmPair { inner, name }
    }
}

impl Component for FsmPair {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        2
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        let (ox, oy) = self.inner.step(inputs[0], inputs[1]);
        outputs[0] = ox;
        outputs[1] = oy;
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// The correlation-agnostic adder: full adder over `(x, y, residue)` whose
/// carry (majority) is the output and whose sum becomes the next residue.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaAddCell {
    residue: bool,
}

impl CaAddCell {
    /// Creates the adder with a zero residue.
    #[must_use]
    pub fn new() -> Self {
        CaAddCell::default()
    }
}

impl Component for CaAddCell {
    fn name(&self) -> &str {
        "caadd"
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        let (x, y) = (inputs[0], inputs[1]);
        let ones = usize::from(x) + usize::from(y) + usize::from(self.residue);
        outputs[0] = ones >= 2; // majority = carry
        self.residue = ones & 1 == 1; // sum = next residue
    }

    fn reset(&mut self) {
        self.residue = false;
    }
}

/// Correlation-agnostic max/min: two activity counters and an output that
/// pulses whenever the running max (respectively min) advances.
#[derive(Debug, Clone, Copy)]
pub struct CaMaxMinCell {
    max: bool,
    count_x: u64,
    count_y: u64,
    count_out: u64,
}

impl CaMaxMinCell {
    /// Creates the block; `max` selects maximum (else minimum).
    #[must_use]
    pub fn new(max: bool) -> Self {
        CaMaxMinCell {
            max,
            count_x: 0,
            count_y: 0,
            count_out: 0,
        }
    }
}

impl Component for CaMaxMinCell {
    fn name(&self) -> &str {
        if self.max {
            "camax"
        } else {
            "camin"
        }
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        self.count_x += u64::from(inputs[0]);
        self.count_y += u64::from(inputs[1]);
        let target = if self.max {
            self.count_x.max(self.count_y)
        } else {
            self.count_x.min(self.count_y)
        };
        outputs[0] = target > self.count_out;
        self.count_out = target;
    }

    fn reset(&mut self) {
        self.count_x = 0;
        self.count_y = 0;
        self.count_out = 0;
    }
}

/// Saturating-counter FSM activations (`stanh` / `slinear`), bit-stepped with
/// exactly the state rules of `sc_arith::fsm_ops`.
#[derive(Debug, Clone, Copy)]
pub struct UnaryFsmCell {
    op: sc_graph::UnaryFsmOp,
    state: i64,
    toggle: bool,
}

impl UnaryFsmCell {
    /// Creates the FSM in its power-on state.
    #[must_use]
    pub fn new(op: sc_graph::UnaryFsmOp) -> Self {
        let mut cell = UnaryFsmCell {
            op,
            state: 0,
            toggle: false,
        };
        cell.reset();
        cell
    }
}

impl Component for UnaryFsmCell {
    fn name(&self) -> &str {
        match self.op {
            sc_graph::UnaryFsmOp::Stanh { .. } => "stanh",
            sc_graph::UnaryFsmOp::Slinear { .. } => "slinear",
        }
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        match self.op {
            sc_graph::UnaryFsmOp::Stanh { half_states } => {
                let max = i64::from(2 * half_states - 1);
                outputs[0] = self.state >= i64::from(half_states);
                self.state += if inputs[0] { 1 } else { -1 };
                self.state = self.state.clamp(0, max);
            }
            sc_graph::UnaryFsmOp::Slinear { states } => {
                let max = i64::from(states - 1);
                let mid_low = max / 2;
                let mid_high = mid_low + 1;
                outputs[0] = if self.state > mid_high {
                    true
                } else if self.state < mid_low {
                    false
                } else {
                    self.toggle = !self.toggle;
                    self.toggle
                };
                self.state += if inputs[0] { 1 } else { -1 };
                self.state = self.state.clamp(0, max);
            }
        }
    }

    fn reset(&mut self) {
        match self.op {
            sc_graph::UnaryFsmOp::Stanh { half_states } => {
                self.state = i64::from(half_states);
            }
            sc_graph::UnaryFsmOp::Slinear { states } => {
                self.state = i64::from(states - 1) / 2;
            }
        }
        self.toggle = false;
    }
}

/// The feedback SC divider: integration counter + threshold comparison
/// against a fresh sample each cycle (`sc_arith::divide::Divider` semantics).
pub struct DividerCell {
    source: Box<dyn RandomSource>,
    spec: SourceSpec,
    skip: u64,
    counter_bits: u32,
    state: i64,
}

impl DividerCell {
    /// Builds the divider with its comparison source positioned `skip`
    /// samples in.
    #[must_use]
    pub fn new(spec: &SourceSpec, skip: u64, counter_bits: u32) -> Self {
        DividerCell {
            source: spec.build_skipped(skip),
            spec: spec.clone(),
            skip,
            counter_bits,
            state: 0,
        }
    }
}

impl Component for DividerCell {
    fn name(&self) -> &str {
        "divider"
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        let max = (1i64 << self.counter_bits) - 1;
        let threshold = self.source.next_unit();
        let z = (self.state as f64 / max as f64) > threshold;
        outputs[0] = z;
        let delta = i64::from(inputs[0]) - i64::from(z && inputs[1]);
        self.state = (self.state + delta).clamp(0, max);
    }

    fn reset(&mut self) {
        self.state = 0;
        self.source = self.spec.build_skipped(self.skip);
    }
}

/// Accumulative parallel counter: the output bus carries the running total of
/// 1s across all lanes *including* the current cycle, so the final-cycle bus
/// value is the APC total.
#[derive(Debug, Clone)]
pub struct ApcCell {
    lanes: usize,
    bits: u32,
    total: u64,
}

impl ApcCell {
    /// Creates a zeroed APC over `lanes` inputs with a `bits`-wide read bus.
    #[must_use]
    pub fn new(lanes: usize, bits: u32) -> Self {
        ApcCell {
            lanes,
            bits,
            total: 0,
        }
    }
}

impl Component for ApcCell {
    fn name(&self) -> &str {
        "apc"
    }

    fn num_inputs(&self) -> usize {
        self.lanes
    }

    fn num_outputs(&self) -> usize {
        self.bits as usize
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        let value = self.total + inputs.iter().filter(|&&b| b).count() as u64;
        for (i, out) in outputs.iter_mut().enumerate() {
            *out = (value >> i) & 1 == 1;
        }
    }

    fn commit(&mut self, inputs: &[bool]) {
        self.total += inputs.iter().filter(|&&b| b).count() as u64;
    }

    fn reset(&mut self) {
        self.total = 0;
    }
}
