//! Structural lowering: [`sc_graph::CompiledGraph`] → [`Design`], and the
//! cycle-level co-simulation harness that runs the lowered circuit against
//! the same batch input the word-parallel executor consumes.

use crate::components::{
    ApcCell, CaAddCell, CaMaxMinCell, DividerCell, FsmPair, HalfSelectBit, SelectOneHot, SourceBit,
    UnaryFsmCell,
};
use crate::design::{Cell, CellKind, Design, NetRef, SinkPlan};
use sc_bitstream::Bitstream;
use sc_graph::{BatchInput, BinaryOp, CompiledGraph, ManipulatorKind, Step};
use sc_sim::components::{
    AndGate, DFlipFlop, FullAdder, Mux2, NotGate, OrGate, UpCounter, XnorGate, XorGate,
};
use sc_sim::{Circuit, NetId, SimError};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised while lowering or co-simulating a plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RtlError {
    /// A `Generate` step reads a value slot the batch item does not provide.
    ValueSlotOutOfRange {
        /// Requested slot.
        slot: usize,
        /// Values provided.
        provided: usize,
    },
    /// An `Input` step reads a stream slot the batch item does not provide.
    StreamSlotOutOfRange {
        /// Requested slot.
        slot: usize,
        /// Streams provided.
        provided: usize,
    },
    /// The plan contains a step with no single-pass gate-level equivalent.
    ///
    /// Regeneration is the only current case: its S/D → D/S round trip needs
    /// the *complete* input stream before the first output bit exists, i.e. a
    /// full extra stream period of latency that the functional executor
    /// elides. A lowered circuit cannot reproduce that timeline in one pass.
    Unsupported(
        /// Human-readable description of the offending step.
        String,
    ),
    /// The cycle-level simulation itself failed.
    Sim(
        /// The underlying simulator error.
        SimError,
    ),
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::ValueSlotOutOfRange { slot, provided } => write!(
                f,
                "generate step reads value slot {slot} but the batch item has {provided} values"
            ),
            RtlError::StreamSlotOutOfRange { slot, provided } => write!(
                f,
                "input step reads stream slot {slot} but the batch item has {provided} streams"
            ),
            RtlError::Unsupported(what) => write!(f, "no gate-level lowering for {what}"),
            RtlError::Sim(e) => write!(f, "co-simulation failed: {e}"),
        }
    }
}

impl std::error::Error for RtlError {}

impl From<SimError> for RtlError {
    fn from(e: SimError) -> Self {
        RtlError::Sim(e)
    }
}

/// Width in bits of a counter that must represent values up to `max`.
fn counter_bits(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

/// The width of the sink counters [`elaborate()`] builds for a given stream
/// length (lossless: the count can reach `stream_length` inclusive).
///
/// Exposed so cost cross-checks size the table-driven
/// [`sc_graph::cost::compiled_netlist`] bridge to the same precision the
/// elaborated hardware actually uses, instead of re-deriving the rule.
#[must_use]
pub fn sink_counter_bits(stream_length: usize) -> u32 {
    counter_bits(stream_length as u64)
}

/// Lowers a compiled plan into a flat gate-level [`Design`].
///
/// `input` supplies the digital values consumed by `Generate` steps — in
/// hardware those are the D/S converters' value registers, so they are part
/// of the elaborated configuration, while `InputStream` slots stay dynamic
/// (they become primary inputs driven at co-simulation time).
/// `stream_length` sizes the sink counters (and is the cycle count the
/// lowered circuit is meant to run for).
///
/// # Errors
///
/// Returns [`RtlError::ValueSlotOutOfRange`] when `input` is narrower than
/// the plan requires, and [`RtlError::Unsupported`] for plan steps with no
/// single-pass gate-level equivalent (see the error's documentation).
pub fn elaborate(
    plan: &CompiledGraph,
    input: &BatchInput,
    stream_length: usize,
) -> Result<Design, RtlError> {
    let mut design = Design::new("plan", stream_length);
    let mut slots: Vec<Option<NetRef>> = vec![None; plan.slot_count()];
    let slot = |slots: &[Option<NetRef>], idx: usize| -> NetRef {
        slots[idx].expect("topological step order guarantees producers are lowered first")
    };
    let sink_counter_bits = counter_bits(stream_length as u64);

    // Span fusion is a scheduling construct, not a hardware one: a fused
    // span's sub-steps sit in dataflow order over the same dense slots, so
    // the gate-level lowering of a fused plan is the lowering of its
    // flattened step sequence — identical netlist, identical co-simulation.
    fn flatten<'a>(steps: &'a [Step], out: &mut Vec<&'a Step>) {
        for step in steps {
            if let Step::Fused { steps } = step {
                flatten(steps, out);
            } else {
                out.push(step);
            }
        }
    }
    let mut flat = Vec::with_capacity(plan.steps().len());
    flatten(plan.steps(), &mut flat);

    for step in flat {
        match step {
            Step::Input { slot: s, dst } => {
                // Stream slots stay dynamic: they become primary inputs and
                // are only resolved (and validated) at co-simulation time.
                let net = design.add_net();
                design.inputs.push((format!("in{s}"), net, *s));
                slots[*dst] = Some(net);
            }
            Step::Generate {
                slot: s,
                source,
                skip,
                dst,
            } => {
                let value = *input.values.get(*s).ok_or(RtlError::ValueSlotOutOfRange {
                    slot: *s,
                    provided: input.values.len(),
                })?;
                let out = design.cell(
                    CellKind::Source {
                        spec: source.clone(),
                        skip: *skip,
                        threshold: value,
                    },
                    &[],
                );
                slots[*dst] = Some(out[0]);
            }
            Step::Constant {
                probability,
                source,
                skip,
                dst,
            } => {
                let out = design.cell(
                    CellKind::Source {
                        spec: source.clone(),
                        skip: *skip,
                        threshold: *probability,
                    },
                    &[],
                );
                slots[*dst] = Some(out[0]);
            }
            Step::Manipulate {
                kinds,
                x,
                y,
                dst_x,
                dst_y,
            } => {
                let (mut nx, mut ny) = (slot(&slots, *x), slot(&slots, *y));
                for kind in kinds {
                    match kind {
                        ManipulatorKind::Identity => {}
                        ManipulatorKind::Isolator { delay } => {
                            // A k-stage isolator is literally k flip-flops in
                            // the X path; Y passes through untouched.
                            for _ in 0..*delay {
                                nx = design.cell(CellKind::Dff, &[nx])[0];
                            }
                        }
                        _ => {
                            let outs = design.cell(CellKind::Fsm { kind: *kind }, &[nx, ny]);
                            nx = outs[0];
                            ny = outs[1];
                        }
                    }
                }
                slots[*dst_x] = Some(nx);
                slots[*dst_y] = Some(ny);
            }
            Step::Regenerate { source, .. } => {
                return Err(RtlError::Unsupported(format!(
                    "regenerate({source}): S/D → D/S regeneration needs a full extra stream \
                     period of latency and has no single-pass cycle-level equivalent"
                )));
            }
            Step::Not { src, dst } => {
                let out = design.cell(CellKind::Inv, &[slot(&slots, *src)]);
                slots[*dst] = Some(out[0]);
            }
            Step::Binary { op, x, y, dst } => {
                let (nx, ny) = (slot(&slots, *x), slot(&slots, *y));
                let out = match op {
                    BinaryOp::AndMultiply | BinaryOp::AndMin => {
                        design.cell(CellKind::And2, &[nx, ny])
                    }
                    BinaryOp::OrMax | BinaryOp::SaturatingAdd => {
                        design.cell(CellKind::Or2, &[nx, ny])
                    }
                    BinaryOp::XnorMultiply => design.cell(CellKind::Xnor2, &[nx, ny]),
                    BinaryOp::XorSubtract => design.cell(CellKind::Xor2, &[nx, ny]),
                    BinaryOp::CaAdd => design.cell(CellKind::CaAdd, &[nx, ny]),
                    BinaryOp::CaMax => design.cell(CellKind::CaMax, &[nx, ny]),
                    BinaryOp::CaMin => design.cell(CellKind::CaMin, &[nx, ny]),
                    other => return Err(RtlError::Unsupported(format!("binary operator {other}"))),
                };
                slots[*dst] = Some(out[0]);
            }
            Step::UnaryFsm { op, src, dst } => {
                let out = design.cell(CellKind::UnaryFsm { op: *op }, &[slot(&slots, *src)]);
                slots[*dst] = Some(out[0]);
            }
            Step::Divide {
                source,
                skip,
                counter_bits: cb,
                x,
                y,
                dst,
            } => {
                let (nx, ny) = (slot(&slots, *x), slot(&slots, *y));
                let out = design.cell(
                    CellKind::Divider {
                        spec: source.clone(),
                        skip: *skip,
                        counter_bits: *cb,
                    },
                    &[nx, ny],
                );
                slots[*dst] = Some(out[0]);
            }
            Step::MuxAdd {
                select,
                skip,
                x,
                y,
                dst,
            } => {
                let sel = design.cell(
                    CellKind::HalfSelect {
                        spec: select.clone(),
                        skip: *skip,
                    },
                    &[],
                )[0];
                // Select = 1 picks X, matching the executor's mux_add.
                let (nx, ny) = (slot(&slots, *x), slot(&slots, *y));
                let out = design.cell(CellKind::Mux2, &[ny, nx, sel]);
                slots[*dst] = Some(out[0]);
            }
            Step::WeightedMux {
                weights,
                select,
                skip,
                srcs,
                dst,
            } => {
                let sels = design.cell(
                    CellKind::SelectOneHot {
                        spec: select.clone(),
                        skip: *skip,
                        weights: weights.clone(),
                    },
                    &[],
                );
                // A priority chain of k − 1 two-way muxes over the one-hot
                // select lines (a degenerate 1-way tree still instantiates
                // one mux, matching the cost model's floor).
                let first = slot(&slots, srcs[0]);
                let mut acc = first;
                if srcs.len() == 1 {
                    acc = design.cell(CellKind::Mux2, &[first, first, sels[0]])[0];
                } else {
                    for (i, s) in srcs.iter().enumerate().skip(1) {
                        let input = slot(&slots, *s);
                        acc = design.cell(CellKind::Mux2, &[acc, input, sels[i]])[0];
                    }
                }
                slots[*dst] = Some(acc);
            }
            Step::SinkStream { name, src } => {
                design.sinks.push(SinkPlan::Stream {
                    name: name.clone(),
                    net: slot(&slots, *src),
                });
            }
            Step::SinkValue { name, src } => {
                let net = slot(&slots, *src);
                let bus = design.cell(
                    CellKind::Counter {
                        bits: sink_counter_bits,
                    },
                    &[net],
                );
                design.sinks.push(SinkPlan::Value {
                    name: name.clone(),
                    net,
                    count_bus: bus,
                });
            }
            Step::SinkCount { name, src } => {
                let net = slot(&slots, *src);
                let bus = design.cell(
                    CellKind::Counter {
                        bits: sink_counter_bits,
                    },
                    &[net],
                );
                design.sinks.push(SinkPlan::Count {
                    name: name.clone(),
                    net,
                    count_bus: bus,
                });
            }
            Step::SinkSum { name, srcs } => {
                let lanes: Vec<NetRef> = srcs.iter().map(|s| slot(&slots, *s)).collect();
                let bits = counter_bits(stream_length as u64 * srcs.len() as u64);
                let bus = design.cell(
                    CellKind::Apc {
                        lanes: lanes.len(),
                        bits,
                    },
                    &lanes,
                );
                design.sinks.push(SinkPlan::Sum {
                    name: name.clone(),
                    total_bus: bus,
                });
            }
            Step::SccProbe { name, x, y } => {
                let (nx, ny) = (slot(&slots, *x), slot(&slots, *y));
                let joint = design.cell(CellKind::And2, &[nx, ny])[0];
                let bits = sink_counter_bits;
                let a_bus = design.cell(CellKind::Counter { bits }, &[joint]);
                let x_bus = design.cell(CellKind::Counter { bits }, &[nx]);
                let y_bus = design.cell(CellKind::Counter { bits }, &[ny]);
                design.sinks.push(SinkPlan::Scc {
                    name: name.clone(),
                    x: nx,
                    y: ny,
                    a_bus,
                    x_bus,
                    y_bus,
                });
            }
            other => {
                return Err(RtlError::Unsupported(format!("plan step {other:?}")));
            }
        }
    }
    Ok(design)
}

/// The named results of co-simulating a lowered design, mirroring
/// [`sc_graph::ExecOutput`] so the two can be compared field by field.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RtlOutput {
    streams: BTreeMap<String, Bitstream>,
    values: BTreeMap<String, f64>,
}

impl RtlOutput {
    /// The stream captured by the `SinkStream` sink of that name.
    #[must_use]
    pub fn stream(&self, name: &str) -> Option<&Bitstream> {
        self.streams.get(name)
    }

    /// The value produced by the value-producing sink of that name.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates over `(name, stream)` results in name order.
    pub fn streams(&self) -> impl Iterator<Item = (&str, &Bitstream)> {
        self.streams.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over `(name, value)` results in name order.
    pub fn values(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Reads a counter bus's value at the final simulated cycle.
fn bus_final_value(
    outputs: &std::collections::HashMap<String, Bitstream>,
    prefix: &str,
    cycles: usize,
) -> u64 {
    if cycles == 0 {
        return 0;
    }
    let mut value = 0u64;
    let mut bit = 0usize;
    while let Some(stream) = outputs.get(&format!("{prefix}[{bit}]")) {
        if stream.bit(cycles - 1) {
            value |= 1u64 << bit;
        }
        bit += 1;
    }
    value
}

impl Design {
    /// Builds a fresh [`sc_sim::Circuit`] of the design, returning the
    /// circuit plus the mapping from design nets to circuit nets. Every sink
    /// observable (streams and counter buses) is marked as a primary output.
    ///
    /// # Panics
    ///
    /// Panics only on internal inconsistencies of the elaborated design
    /// (every cell input must already be driven), which would be a bug in
    /// [`elaborate`].
    #[must_use]
    pub fn to_circuit(&self) -> (Circuit, Vec<Option<NetId>>) {
        let mut circuit = Circuit::new();
        let mut map: Vec<Option<NetId>> = vec![None; self.net_count];
        for (name, net, _) in &self.inputs {
            map[net.index()] = Some(circuit.add_input(name.clone()));
        }
        for cell in &self.cells {
            let inputs: Vec<NetId> = cell
                .inputs
                .iter()
                .map(|n| map[n.index()].expect("cell inputs are driven in elaboration order"))
                .collect();
            let outputs = instantiate(&mut circuit, cell, &inputs);
            for (net, id) in cell.outputs.iter().zip(outputs) {
                map[net.index()] = Some(id);
            }
        }
        // Bus ports use the simulator's canonical `{prefix}[{i}]` naming
        // (Circuit::mark_output_bus), which `bus_final_value` reads back.
        let mark_bus =
            |circuit: &mut Circuit, map: &[Option<NetId>], prefix: &str, bus: &[NetRef]| {
                let ids: Vec<NetId> = bus
                    .iter()
                    .map(|net| map[net.index()].expect("bus nets are driven"))
                    .collect();
                circuit.mark_output_bus(prefix, &ids);
            };
        for sink in &self.sinks {
            match sink {
                SinkPlan::Stream { name, net } => {
                    circuit.mark_output(name.clone(), map[net.index()].expect("driven"));
                }
                SinkPlan::Value {
                    name,
                    net,
                    count_bus,
                }
                | SinkPlan::Count {
                    name,
                    net,
                    count_bus,
                } => {
                    circuit.mark_output(format!("{name}#s"), map[net.index()].expect("driven"));
                    mark_bus(&mut circuit, &map, &format!("{name}#cnt"), count_bus);
                }
                SinkPlan::Sum { name, total_bus } => {
                    mark_bus(&mut circuit, &map, &format!("{name}#sum"), total_bus);
                }
                SinkPlan::Scc {
                    name,
                    x,
                    y,
                    a_bus,
                    x_bus,
                    y_bus,
                } => {
                    circuit.mark_output(format!("{name}#x"), map[x.index()].expect("driven"));
                    circuit.mark_output(format!("{name}#y"), map[y.index()].expect("driven"));
                    mark_bus(&mut circuit, &map, &format!("{name}#a"), a_bus);
                    mark_bus(&mut circuit, &map, &format!("{name}#cx"), x_bus);
                    mark_bus(&mut circuit, &map, &format!("{name}#cy"), y_bus);
                }
            }
        }
        (circuit, map)
    }

    /// Clock-cycle co-simulates the design over the batch item's input
    /// streams and reconstructs the named sink results exactly as the
    /// word-parallel executor reports them (same conversions, same
    /// floating-point operations). Counter buses are additionally checked
    /// against the captured streams, so a divergence between the gate-level
    /// S/D hardware and the stream it counts is an error, not a silent skew.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::StreamSlotOutOfRange`] for missing input streams
    /// and [`RtlError::Sim`] for simulation failures (including counter /
    /// stream divergence, reported as an unsupported-step error).
    pub fn cosimulate(&self, input: &BatchInput) -> Result<RtlOutput, RtlError> {
        let n = self.stream_length;
        let (mut circuit, _) = self.to_circuit();
        let mut stimuli: Vec<(&str, Bitstream)> = Vec::with_capacity(self.inputs.len());
        for (name, _, slot) in &self.inputs {
            let stream = input
                .streams
                .get(*slot)
                .ok_or(RtlError::StreamSlotOutOfRange {
                    slot: *slot,
                    provided: input.streams.len(),
                })?;
            stimuli.push((name.as_str(), stream.clone()));
        }
        let outputs = circuit.run_cycles(&stimuli, n)?;

        let mut result = RtlOutput::default();
        let check = |captured: &Bitstream, counted: u64, what: &str| -> Result<(), RtlError> {
            if captured.count_ones() as u64 != counted {
                return Err(RtlError::Unsupported(format!(
                    "internal divergence: {what} counter holds {counted} but the stream carries \
                     {} ones",
                    captured.count_ones()
                )));
            }
            Ok(())
        };
        for sink in &self.sinks {
            match sink {
                SinkPlan::Stream { name, .. } => {
                    result.streams.insert(name.clone(), outputs[name].clone());
                }
                SinkPlan::Value { name, .. } => {
                    let stream = &outputs[&format!("{name}#s")];
                    let count = bus_final_value(&outputs, &format!("{name}#cnt"), n);
                    check(stream, count, name)?;
                    let value = sc_convert::StochasticToDigital::convert(stream).get();
                    result.values.insert(name.clone(), value);
                }
                SinkPlan::Count { name, .. } => {
                    let stream = &outputs[&format!("{name}#s")];
                    let count = bus_final_value(&outputs, &format!("{name}#cnt"), n);
                    check(stream, count, name)?;
                    result.values.insert(name.clone(), count as f64);
                }
                SinkPlan::Sum { name, .. } => {
                    let total = bus_final_value(&outputs, &format!("{name}#sum"), n);
                    let sum = if n == 0 { 0.0 } else { total as f64 / n as f64 };
                    result.values.insert(name.clone(), sum);
                }
                SinkPlan::Scc { name, .. } => {
                    let x = &outputs[&format!("{name}#x")];
                    let y = &outputs[&format!("{name}#y")];
                    let a = bus_final_value(&outputs, &format!("{name}#a"), n);
                    check(&x.and(y), a, name)?;
                    check(x, bus_final_value(&outputs, &format!("{name}#cx"), n), name)?;
                    check(y, bus_final_value(&outputs, &format!("{name}#cy"), n), name)?;
                    result.values.insert(name.clone(), sc_bitstream::scc(x, y));
                }
            }
        }
        Ok(result)
    }
}

/// Instantiates one IR cell as a simulator component.
#[allow(clippy::too_many_lines)]
fn instantiate(circuit: &mut Circuit, cell: &Cell, inputs: &[NetId]) -> Vec<NetId> {
    match &cell.kind {
        CellKind::And2 => circuit.add_component(AndGate::new(), inputs),
        CellKind::Or2 => circuit.add_component(OrGate::new(), inputs),
        CellKind::Xor2 => circuit.add_component(XorGate::new(), inputs),
        CellKind::Xnor2 => circuit.add_component(XnorGate::new(), inputs),
        CellKind::Inv => circuit.add_component(NotGate::new(), inputs),
        CellKind::Mux2 => circuit.add_component(Mux2::new(), inputs),
        CellKind::Dff => circuit.add_component(DFlipFlop::new(), inputs),
        CellKind::FullAdder => circuit.add_component(FullAdder::new(), inputs),
        CellKind::Counter { bits } => circuit.add_component(UpCounter::new(*bits), inputs),
        CellKind::Source {
            spec,
            skip,
            threshold,
        } => circuit.add_component(SourceBit::new(spec, *skip, *threshold), inputs),
        CellKind::HalfSelect { spec, skip } => {
            circuit.add_component(HalfSelectBit::new(spec, *skip), inputs)
        }
        CellKind::SelectOneHot {
            spec,
            skip,
            weights,
        } => circuit.add_component(SelectOneHot::new(spec, *skip, weights), inputs),
        CellKind::Fsm { kind } => circuit.add_component(FsmPair::new(kind.build()), inputs),
        CellKind::CaAdd => circuit.add_component(CaAddCell::new(), inputs),
        CellKind::CaMax => circuit.add_component(CaMaxMinCell::new(true), inputs),
        CellKind::CaMin => circuit.add_component(CaMaxMinCell::new(false), inputs),
        CellKind::UnaryFsm { op } => circuit.add_component(UnaryFsmCell::new(*op), inputs),
        CellKind::Divider {
            spec,
            skip,
            counter_bits,
        } => circuit.add_component(DividerCell::new(spec, *skip, *counter_bits), inputs),
        CellKind::Apc { lanes, bits } => circuit.add_component(ApcCell::new(*lanes, *bits), inputs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::{Executor, Graph, PlannerOptions};
    use sc_rng::SourceSpec;

    fn sobol(d: u32) -> SourceSpec {
        SourceSpec::Sobol { dimension: d }
    }

    #[test]
    fn regenerate_is_reported_unsupported() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let r = g.regenerate(SourceSpec::VanDerCorput { offset: 0 }, x);
        g.sink_value("v", r);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let err = elaborate(&plan, &BatchInput::with_values(vec![0.5]), 64).unwrap_err();
        assert!(matches!(err, RtlError::Unsupported(_)));
        assert!(err.to_string().contains("regenerate"));
    }

    #[test]
    fn missing_batch_slots_are_reported() {
        let mut g = Graph::new();
        let x = g.generate(1, sobol(1));
        g.sink_value("v", x);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert!(matches!(
            elaborate(&plan, &BatchInput::with_values(vec![0.5]), 64),
            Err(RtlError::ValueSlotOutOfRange {
                slot: 1,
                provided: 1
            })
        ));

        let mut g = Graph::new();
        let s = g.input_stream(0);
        g.sink_value("v", s);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let design = elaborate(&plan, &BatchInput::new(), 64).unwrap();
        assert!(matches!(
            design.cosimulate(&BatchInput::new()),
            Err(RtlError::StreamSlotOutOfRange { .. })
        ));
    }

    #[test]
    fn identity_and_isolator_lower_structurally() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let (i0, i1) = g.manipulate(sc_graph::ManipulatorKind::Identity, x, y);
        let (k0, k1) = g.manipulate(sc_graph::ManipulatorKind::Isolator { delay: 3 }, i0, i1);
        g.sink_stream("x", k0);
        g.sink_stream("y", k1);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let design = elaborate(&plan, &BatchInput::new(), 64).unwrap();
        // Identity is pure wiring; the isolator is exactly 3 flip-flops.
        assert_eq!(design.kind_histogram().get("dff"), Some(&3));
        assert_eq!(design.cell_count(), 3);
        let input = BatchInput::with_streams(vec![
            Bitstream::from_fn(64, |i| i % 3 == 0),
            Bitstream::from_fn(64, |i| i % 5 == 0),
        ]);
        let rtl = design.cosimulate(&input).unwrap();
        let exec = Executor::new(64).run(&plan, &input).unwrap();
        assert_eq!(rtl.stream("x").unwrap(), exec.stream("x").unwrap());
        assert_eq!(rtl.stream("y").unwrap(), exec.stream("y").unwrap());
    }

    #[test]
    fn counter_bits_sizes_hold_the_count() {
        assert_eq!(counter_bits(1), 1);
        assert_eq!(counter_bits(63), 6);
        assert_eq!(counter_bits(64), 7);
        assert_eq!(counter_bits(256), 9);
        assert_eq!(counter_bits(1000), 10);
    }

    #[test]
    fn output_accessors_round_trip() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        g.sink_value("v", x);
        g.sink_stream("s", x);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let input = BatchInput::with_values(vec![0.25]);
        let design = elaborate(&plan, &input, 128).unwrap();
        let out = design.cosimulate(&input).unwrap();
        assert_eq!(out.streams().count(), 1);
        assert_eq!(out.values().count(), 1);
        assert!((out.value("v").unwrap() - 0.25).abs() < 0.05);
        assert_eq!(out.stream("s").unwrap().len(), 128);
    }
}
