//! # sc-rtl
//!
//! The gate-level lowering backend of the workspace: structural elaboration
//! of compiled `sc_graph` dataflow plans into flat [`sc_sim`] circuits,
//! Verilog-2005 export of the same designs, and a *structural* cost bridge
//! that derives `sc_hwcost` netlists by counting the actually elaborated
//! primitives.
//!
//! The paper evaluates correlation-manipulating hardware with "a cycle-level
//! simulator which uses models that have been verified against RTL
//! simulation traces" (§IV.A). This crate closes that loop for the whole
//! repository: a [`sc_graph::CompiledGraph`] — sources, planner-inserted
//! repair FSMs, arithmetic, sinks, everything — lowers to one flat netlist
//! that can be
//!
//! 1. **co-simulated clock cycle by clock cycle** ([`Design::cosimulate`])
//!    and compared *bit for bit* against the word-parallel
//!    [`sc_graph::Executor`] (the workspace `rtl_cosim` suite pins this for
//!    every node kind and for the full Gaussian-blur → edge-detect tile
//!    pipeline),
//! 2. **emitted as synthesizable Verilog** ([`to_verilog`]), one leaf module
//!    per cell kind with a deterministic, snapshot-testable layout, and
//! 3. **costed structurally** ([`Design::netlist`]): the hardware estimate
//!    comes from the instantiated cells, cross-checked against the
//!    table-driven [`sc_graph::cost`] bridge so per-op estimates become
//!    per-design measurements.
//!
//! Lowering is *total* over plan steps except S/D → D/S regeneration, which
//! needs a full extra stream period of latency and therefore has no
//! single-pass cycle-level equivalent (see [`RtlError::Unsupported`]).
//!
//! # Example
//!
//! ```
//! use sc_graph::{BatchInput, BinaryOp, Executor, Graph, PlannerOptions};
//! use sc_rng::SourceSpec;
//!
//! // |pX − pY| with planner-inserted synchronizer repair...
//! let mut g = Graph::new();
//! let x = g.generate(0, SourceSpec::Sobol { dimension: 1 });
//! let y = g.generate(1, SourceSpec::Sobol { dimension: 2 });
//! let z = g.binary(BinaryOp::XorSubtract, x, y);
//! g.sink_value("diff", z);
//! let plan = g.compile(&PlannerOptions::default())?;
//!
//! // ...lowers to one gate-level circuit that co-simulates bit-identically.
//! let input = BatchInput::with_values(vec![0.8, 0.25]);
//! let lowered = sc_rtl::elaborate(&plan, &input, 256).expect("supported plan");
//! let gate_level = lowered.cosimulate(&input).expect("co-simulation runs");
//! let word_parallel = Executor::new(256).run(&plan, &input)?;
//! assert_eq!(gate_level.value("diff"), word_parallel.value("diff"));
//!
//! // The same design exports as Verilog and costs itself structurally.
//! let verilog = sc_rtl::to_verilog(&lowered, "diff_top");
//! assert!(verilog.contains("module sc_synchronizer"));
//! assert!(lowered.netlist("diff", 8).area_um2() > 0.0);
//! # Ok::<(), sc_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod design;
pub mod elaborate;
pub mod verilog;

pub use design::{Cell, CellKind, Design, NetRef, SinkPlan};
pub use elaborate::{elaborate, sink_counter_bits, RtlError, RtlOutput};
pub use verilog::to_verilog;
