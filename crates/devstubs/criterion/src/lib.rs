//! Minimal, offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! in-tree shim implements the slice of the criterion API the workspace's
//! benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurements are real: each benchmark is warmed up, then timed over
//! `sample_size` samples and reported as the median ns/iteration on stdout.
//! When the `SC_BENCH_JSON` environment variable names a file, one JSON line
//! per benchmark (`{"group", "bench", "ns_per_iter", "elements_per_sec"}`) is
//! appended to it so scripts can collect machine-readable results.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sync", 64)` renders as `sync/64`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter(64)` renders as `64`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times and records the elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for elements/sec reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Benchmarks `f` with an input value under a parameterized id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut adapted = |b: &mut Bencher| f(b, input);
        self.run(&id.id, &mut adapted);
        self
    }

    /// Finishes the group (printing happens eagerly, so this is a no-op).
    pub fn finish(self) {}

    fn run(&mut self, bench_name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: find an iteration count that takes roughly one sample's
        // worth of time, starting from a single iteration.
        let per_sample = self.criterion.measurement_time.as_nanos() as u64
            / self.criterion.sample_size.max(1) as u64;
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let ns = b.elapsed.as_nanos() as u64;
            if ns >= per_sample.min(2_000_000) || iters >= 1 << 24 {
                break;
            }
            iters = if ns == 0 {
                iters * 16
            } else {
                (iters * per_sample.max(1) / ns.max(1)).clamp(iters + 1, iters * 16)
            };
        }

        // Measure.
        let mut samples: Vec<f64> = Vec::with_capacity(self.criterion.sample_size);
        for _ in 0..self.criterion.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
        let median = samples[samples.len() / 2];

        let elements_per_sec = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => Some(n as f64 * 1e9 / median),
            _ => None,
        };
        match elements_per_sec {
            Some(eps) => println!(
                "bench {:<56} {:>12.1} ns/iter {:>14.3} Melem/s",
                format!("{}/{}", self.name, bench_name),
                median,
                eps / 1e6
            ),
            None => println!(
                "bench {:<56} {:>12.1} ns/iter",
                format!("{}/{}", self.name, bench_name),
                median
            ),
        }

        if let Ok(path) = std::env::var("SC_BENCH_JSON") {
            if !path.is_empty() {
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let eps = elements_per_sec.map_or("null".to_string(), |e| format!("{e:.1}"));
                    let _ = writeln!(
                        file,
                        "{{\"group\":\"{}\",\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"elements_per_sec\":{}}}",
                        self.name, bench_name, median, eps
                    );
                }
            }
        }
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(8));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
