//! Minimal, offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so this in-tree shim provides the slice of the proptest API the
//! workspace's tests actually use:
//!
//! * the [`proptest!`] macro with optional `#![proptest_config(...)]`,
//! * range strategies (`0u64..=64`, `1usize..300`, `0.0f64..=1.0`, ...),
//! * [`any::<bool>()`](any) and friends,
//! * [`collection::vec`],
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Unlike the real crate there is no shrinking and no persistence: inputs are
//! drawn from a deterministic SplitMix64 stream seeded from the test name, so
//! failures are reproducible across runs and machines.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator deterministically seeded from a test name.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(b));
        }
        TestRng(seed)
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next sample in `[0, n)`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Failure or rejection raised inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reject: bool,
    message: String,
}

impl TestCaseError {
    /// A genuine assertion failure.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError {
            reject: false,
            message,
        }
    }

    /// A rejected input (`prop_assume!` miss): the case is skipped, not failed.
    #[must_use]
    pub fn reject() -> Self {
        TestCaseError {
            reject: true,
            message: String::new(),
        }
    }

    /// Whether this is a rejection rather than a failure.
    #[must_use]
    pub fn is_reject(&self) -> bool {
        self.reject
    }

    /// Failure message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test inputs.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for a type (`any::<bool>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.sample(rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.sample(rng)
        }
    }

    /// Strategy for vectors with element strategy `S` and size range `R`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `vec(element_strategy, size_range)` draws vectors of sampled elements.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration (`cases` is the number of accepted inputs per test).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` accepted inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                let max_attempts = config.cases.saturating_mul(20).max(64);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let __inputs = format!(concat!($(stringify!($arg), " = {:?}  ",)*), $(&$arg),*);
                    let result: $crate::TestCaseResult = (move || {
                        { $body }
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match result {
                        Ok(()) => accepted += 1,
                        Err(e) if e.is_reject() => continue,
                        Err(e) => panic!(
                            "property `{}` failed after {} cases: {}\ninputs: {}",
                            stringify!($name),
                            accepted,
                            e.message(),
                            __inputs
                        ),
                    }
                }
                // Mirror real proptest's "too many global rejects" failure:
                // a property that exhausts its attempt budget on rejections
                // has verified nothing and must not pass vacuously.
                assert!(
                    accepted >= config.cases,
                    "property `{}` rejected too many inputs: only {} of {} cases ran \
                     in {} attempts (unsatisfiable prop_assume?)",
                    stringify!($name),
                    accepted,
                    config.cases,
                    attempts
                );
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current input (skips the case without failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(k in 3u64..=9, f in 0.0f64..=1.0, v in collection::vec(any::<bool>(), 1..5)) {
            prop_assert!((3..=9).contains(&k));
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn assume_skips(k in 0u64..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
        }
    }
}
