//! # sc-arith
//!
//! Stochastic-computing arithmetic circuits: the correlation-*sensitive*
//! operation set of Fig. 2 of the paper plus the correlation-*agnostic*
//! baselines the paper compares against.
//!
//! | module | operation | circuit | required input correlation |
//! |--------|-----------|---------|----------------------------|
//! | [`multiply`] | `pX · pY` (unipolar), `x · y` (bipolar) | AND / XNOR | uncorrelated |
//! | [`add`] | `0.5(pX + pY)` scaled add | MUX | uncorrelated with select |
//! | [`add`] | `min(1, pX + pY)` saturating add | OR | negative |
//! | [`subtract`] | `\|pX − pY\|` | XOR | positive |
//! | [`divide`] | `pX / pY` | counter + feedback | positive |
//! | [`maxmin`] | `max(pX, pY)`, `min(pX, pY)` | OR / AND | positive |
//! | [`maxmin`] | correlation-agnostic max (SC-DCNN \[12\]) | counter + mux | agnostic |
//! | [`add`] | correlation-agnostic add (\[9\]) | parallel counter | agnostic |
//!
//! The correlation-manipulating circuits that *create* the required
//! correlations live in the `sc-core` crate; this crate only assumes its
//! inputs already have whatever correlation each operator needs, which is why
//! several accuracy tests here deliberately show the operators failing on
//! wrongly-correlated inputs (that failure is Table I of the paper).
//!
//! # Example
//!
//! ```
//! use sc_arith::multiply::and_multiply;
//! use sc_bitstream::Bitstream;
//!
//! let x = Bitstream::parse("01010101")?; // 0.5
//! let y = Bitstream::parse("11111100")?; // 0.75, uncorrelated with x
//! assert_eq!(and_multiply(&x, &y)?.value(), 0.375);
//! # Ok::<(), sc_bitstream::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod add;
pub mod divide;
pub mod fsm_ops;
pub mod maxmin;
pub mod multiply;
pub mod reference;
pub mod subtract;

pub use add::{ca_add, mux_add, saturating_add, MuxAdder};
pub use divide::Divider;
pub use fsm_ops::{slinear, stanh};
pub use maxmin::{and_min, ca_max, ca_min, or_max};
pub use multiply::{and_multiply, xnor_multiply};
pub use subtract::xor_subtract;
