//! SC addition: the scaled MUX adder, the saturating OR adder, and the
//! correlation-agnostic adder baseline.

use sc_bitstream::{Bitstream, Error, Probability, Result};
use sc_rng::RandomSource;

/// Scaled SC addition with an explicit select stream:
/// `pZ = 0.5(pX + pY)` when the select stream has value 0.5 and is
/// uncorrelated with both inputs (Fig. 1b / 2a).
///
/// # Errors
///
/// Returns a length-mismatch error if the three streams differ in length.
///
/// # Example
///
/// ```
/// use sc_arith::add::mux_add;
/// use sc_bitstream::Bitstream;
///
/// let x = Bitstream::parse("01110111")?; // 0.75
/// let y = Bitstream::parse("11000000")?; // 0.25
/// let r = Bitstream::parse("10100110")?; // 0.5
/// assert_eq!(mux_add(&x, &y, &r)?.value(), 0.5);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
pub fn mux_add(x: &Bitstream, y: &Bitstream, select: &Bitstream) -> Result<Bitstream> {
    // select = 1 picks x, select = 0 picks y.
    Bitstream::mux(y, x, select)
}

/// Saturating SC addition: bitwise OR, computing `min(1, pX + pY)` when the
/// inputs are *negatively* correlated (Fig. 2b). With positively correlated
/// inputs the same gate computes the maximum instead.
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn saturating_add(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    // Word-parallel: one OR per 64 stream bits via the bulk combinators.
    x.try_or(y)
}

/// A scaled SC adder owning its select-stream source.
///
/// Each call to [`MuxAdder::add`] draws fresh select bits from the wrapped
/// source, mirroring a hardware MUX adder fed by a dedicated RNG.
#[derive(Debug, Clone)]
pub struct MuxAdder<S> {
    select_source: S,
}

impl<S: RandomSource> MuxAdder<S> {
    /// Creates an adder whose select bits come from `select_source`.
    #[must_use]
    pub fn new(select_source: S) -> Self {
        MuxAdder { select_source }
    }

    /// Adds two streams: `pZ = 0.5(pX + pY)`.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error if the streams differ in length.
    pub fn add(&mut self, x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
        let select = half_select_stream(&mut self.select_source, x.len());
        mux_add(x, y, &select)
    }

    /// Resets the select source.
    pub fn reset(&mut self) {
        self.select_source.reset();
    }
}

/// Correlation-agnostic scaled addition (reference \[9\] of the paper).
///
/// A parallel counter accumulates `X(t) + Y(t)` each cycle and emits a 1
/// whenever two units of weight have accumulated, so the output stream encodes
/// exactly `0.5(pX + pY)` (up to the final residual bit) regardless of input
/// correlation. The accuracy comes at a hardware price: the paper measures
/// this design as 5.6× larger and 10.7× higher power than the MUX adder.
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
///
/// # Example
///
/// ```
/// use sc_arith::add::ca_add;
/// use sc_bitstream::Bitstream;
///
/// // Works even on maximally correlated inputs.
/// let x = Bitstream::parse("11110000")?;
/// let y = Bitstream::parse("11000000")?;
/// assert_eq!(ca_add(&x, &y)?.value(), 0.375); // (0.5 + 0.25) / 2
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
pub fn ca_add(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    // The parallel counter is a mod-2 accumulator: with residue `acc` the
    // per-cycle rules are `out = majority(x, y, acc)` and
    // `acc' = x ^ y ^ acc`. The accumulator sequence is therefore a running
    // XOR prefix of `x ^ y`, which vectorises: a log-step prefix-XOR inside
    // each word yields all 64 accumulator states at once, and the output word
    // is a couple of bitwise ops — no per-bit loop at all.
    let mut acc = 0u64; // current residue, 0 or 1
    let out = Bitstream::from_word_fn(x.len(), |w| {
        let (xw, yw) = (x.as_words()[w], y.as_words()[w]);
        let t = xw ^ yw;
        let mut prefix = t;
        prefix ^= prefix << 1;
        prefix ^= prefix << 2;
        prefix ^= prefix << 4;
        prefix ^= prefix << 8;
        prefix ^= prefix << 16;
        prefix ^= prefix << 32;
        // Bit i holds the residue *entering* cycle i.
        let acc_states = (prefix << 1) ^ acc.wrapping_neg();
        let out = (xw & yw) | (acc_states & t);
        acc ^= u64::from(t.count_ones() & 1);
        out
    });
    Ok(out)
}

/// Convenience: builds a 0.5-valued select stream of length `n` from a
/// source (`Bitstream::from_fn` packs the bits a word at a time).
#[must_use]
pub fn half_select_stream<S: RandomSource>(source: &mut S, n: usize) -> Bitstream {
    let half = Probability::HALF.get();
    Bitstream::from_fn(n, |_| source.next_unit() < half)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sc_bitstream::{scc, Probability};
    use sc_convert::DigitalToStochastic;
    use sc_rng::{Halton, Lfsr, Sobol, VanDerCorput};

    const N: usize = 256;

    fn gen(px: f64, source_sel: usize) -> Bitstream {
        let p = Probability::new(px).unwrap();
        match source_sel {
            0 => DigitalToStochastic::new(VanDerCorput::new()).generate(p, N),
            1 => DigitalToStochastic::new(Halton::new(3)).generate(p, N),
            _ => DigitalToStochastic::new(Sobol::new(3)).generate(p, N),
        }
    }

    #[test]
    fn paper_fig1b_example() {
        let x = Bitstream::parse("01110111").unwrap();
        let y = Bitstream::parse("11000000").unwrap();
        let r = Bitstream::parse("10100110").unwrap();
        let z = mux_add(&x, &y, &r).unwrap();
        assert_eq!(z.value(), 0.5);
    }

    #[test]
    fn mux_adder_accuracy_with_uncorrelated_select() {
        let x = gen(0.7, 0);
        let y = gen(0.2, 1);
        let mut adder = MuxAdder::new(Lfsr::new(16, 0xACE1));
        let z = adder.add(&x, &y).unwrap();
        assert!((z.value() - 0.45).abs() < 0.05, "got {}", z.value());
        adder.reset();
    }

    #[test]
    fn saturating_add_requires_negative_correlation() {
        // Negatively correlated inputs: 1s placed at opposite ends.
        let x = Bitstream::from_fn(N, |i| i < 96); // 0.375
        let y = Bitstream::from_fn(N, |i| i >= N - 64); // 0.25
        assert_eq!(scc(&x, &y), -1.0);
        let z = saturating_add(&x, &y).unwrap();
        assert!((z.value() - 0.625).abs() < 1e-12);

        // Positively correlated inputs: the same gate computes max instead.
        let y_pos = Bitstream::from_fn(N, |i| i < 64);
        assert_eq!(scc(&x, &y_pos), 1.0);
        let z_pos = saturating_add(&x, &y_pos).unwrap();
        assert!((z_pos.value() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn saturating_add_saturates_at_one() {
        let x = Bitstream::from_fn(N, |i| i < 192); // 0.75
        let y = Bitstream::from_fn(N, |i| i >= 64); // 0.75, negatively correlated
        let z = saturating_add(&x, &y).unwrap();
        assert_eq!(z.value(), 1.0);
    }

    #[test]
    fn ca_add_is_exact_regardless_of_correlation() {
        for &(px, py) in &[(0.5, 0.75), (0.25, 0.25), (1.0, 1.0), (0.0, 0.5)] {
            // Maximally correlated inputs.
            let x = Bitstream::from_fn(N, |i| (i as f64) < px * N as f64);
            let y = Bitstream::from_fn(N, |i| (i as f64) < py * N as f64);
            let z = ca_add(&x, &y).unwrap();
            assert!(
                (z.value() - 0.5 * (px + py)).abs() <= 1.0 / N as f64,
                "px={px} py={py} got {}",
                z.value()
            );
        }
    }

    #[test]
    fn ca_add_length_mismatch() {
        assert!(ca_add(&Bitstream::zeros(8), &Bitstream::zeros(9)).is_err());
    }

    #[test]
    fn half_select_stream_is_balanced() {
        let mut src = VanDerCorput::new();
        let s = half_select_stream(&mut src, 256);
        assert!((s.value() - 0.5).abs() < 0.02);
    }

    proptest! {
        #[test]
        fn prop_ca_add_exact_for_any_inputs(bits_x in proptest::collection::vec(any::<bool>(), 32..300),
                                            bits_y in proptest::collection::vec(any::<bool>(), 32..300)) {
            let n = bits_x.len().min(bits_y.len());
            let x = Bitstream::from_bools(bits_x.into_iter().take(n));
            let y = Bitstream::from_bools(bits_y.into_iter().take(n));
            let z = ca_add(&x, &y).unwrap();
            let expected = 0.5 * (x.value() + y.value());
            prop_assert!((z.value() - expected).abs() <= 1.0 / n as f64);
        }

        #[test]
        fn prop_mux_add_error_bounded(kx in 0u64..=32, ky in 0u64..=32) {
            let x = gen(kx as f64 / 32.0, 0);
            let y = gen(ky as f64 / 32.0, 1);
            let mut adder = MuxAdder::new(Sobol::new(5));
            let z = adder.add(&x, &y).unwrap();
            let expected = 0.5 * (kx + ky) as f64 / 32.0;
            prop_assert!((z.value() - expected).abs() < 0.08);
        }
    }
}
