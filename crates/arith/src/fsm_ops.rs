//! FSM-based stochastic functions (saturating up/down counter designs).
//!
//! Beyond the single-gate operations of Fig. 2, classical stochastic
//! computing realises non-linear functions with small saturating counters
//! (Brown & Card): the counter integrates `+1` for input 1s and `−1` for
//! input 0s, and the output bit is taken from the counter's upper half. The
//! resulting transfer functions — approximately `tanh` and a clamped linear
//! gain — are the standard activation functions of stochastic neural
//! networks, and are included here because they are downstream consumers of
//! exactly the correlation guarantees the paper's circuits provide (the FSM
//! state sequence, and therefore the output, is only meaningful when its
//! input stream is not pathologically bunched).
//!
//! Both operate on **bipolar** streams.

use sc_bitstream::{Bitstream, WORD_BITS};

/// Number of independent streams the `*_lanes` kernels process per call;
/// matches `sc_core::LANES` so executor lane groups map onto one call.
const LANES: usize = 4;

/// Stochastic `tanh`-like activation (Brown & Card `Stanh`): a saturating
/// counter with `2·half_states` states whose output is 1 while the counter is
/// in its upper half. Approximates `tanh(half_states · x / 2)` for a bipolar
/// input value `x`.
///
/// # Panics
///
/// Panics if `half_states` is 0 or greater than 2048.
///
/// # Example
///
/// ```
/// use sc_arith::fsm_ops::stanh;
/// use sc_bitstream::Bitstream;
///
/// // A strongly positive bipolar input saturates toward +1.
/// let x = Bitstream::from_fn(256, |i| i % 8 != 0); // value ~ +0.75 bipolar
/// let y = stanh(&x, 4);
/// assert!(y.bipolar_value() > 0.8);
/// ```
#[must_use]
pub fn stanh(input: &Bitstream, half_states: u32) -> Bitstream {
    assert!(
        (1..=2048).contains(&half_states),
        "stanh state count {half_states} outside supported range 1..=2048"
    );
    let max = i64::from(2 * half_states - 1);
    let mut state = i64::from(half_states); // start just above the midpoint
                                            // Data-dependent saturating counter: bit-stepped, but staged through
                                            // register-resident words instead of per-bit stream indexing.
    Bitstream::from_word_fn(input.len(), |w| {
        let word = input.as_words()[w];
        let valid = input.word_len(w);
        let mut out = 0u64;
        for i in 0..valid {
            out |= u64::from(state >= i64::from(half_states)) << i;
            state += if (word >> i) & 1 == 1 { 1 } else { -1 };
            state = state.clamp(0, max);
        }
        out
    })
}

/// Stochastic clamped linear gain (Brown & Card `Slinear`-style): a wider
/// saturating counter whose output is a re-randomised copy of the counter's
/// sign region, approximating `clamp(gain · x, -1, 1)` with `gain ≈ 1` for
/// small states. Implemented here in its simplest exponential-smoothing form:
/// the counter output is taken from a comparison against the mid-scale value,
/// so the transfer function is a steeper, clipped version of the identity.
///
/// # Panics
///
/// Panics if `states` is smaller than 2 or greater than 4096.
#[must_use]
pub fn slinear(input: &Bitstream, states: u32) -> Bitstream {
    assert!(
        (2..=4096).contains(&states),
        "slinear state count {states} outside supported range 2..=4096"
    );
    let max = i64::from(states - 1);
    let mut state = max / 2;
    let mut toggle = false;
    Bitstream::from_word_fn(input.len(), |w| {
        let word = input.as_words()[w];
        let valid = input.word_len(w);
        let mut out = 0u64;
        for i in 0..valid {
            // Output: upper half produces 1s, lower half 0s, with the middle
            // two states alternating to represent one half.
            let mid_low = max / 2;
            let mid_high = mid_low + 1;
            let bit = if state > mid_high {
                true
            } else if state < mid_low {
                false
            } else {
                toggle = !toggle;
                toggle
            };
            out |= u64::from(bit) << i;
            state += if (word >> i) & 1 == 1 { 1 } else { -1 };
            state = state.clamp(0, max);
        }
        out
    })
}

/// Lane-batched [`stanh`]: up to four *independent* input streams through
/// four independent saturating counters in one pass, bit-identical per lane
/// to the solo function. Interleaving the four counter chains hides the
/// per-bit state-update latency that caps single-stream throughput. Streams
/// may have unequal lengths.
///
/// # Panics
///
/// Panics if `inputs` is empty or holds more than four streams, or if
/// `half_states` is outside the range [`stanh`] supports.
#[must_use]
pub fn stanh_lanes(inputs: &[&Bitstream], half_states: u32) -> Vec<Bitstream> {
    assert!(
        (1..=2048).contains(&half_states),
        "stanh state count {half_states} outside supported range 1..=2048"
    );
    let max = i64::from(2 * half_states - 1);
    let threshold = i64::from(half_states);
    counter_lane_walk(inputs, threshold, max, false)
}

/// Lane-batched [`slinear`] (see [`stanh_lanes`] for the lane semantics).
///
/// # Panics
///
/// Panics if `inputs` is empty or holds more than four streams, or if
/// `states` is outside the range [`slinear`] supports.
#[must_use]
pub fn slinear_lanes(inputs: &[&Bitstream], states: u32) -> Vec<Bitstream> {
    assert!(
        (2..=4096).contains(&states),
        "slinear state count {states} outside supported range 2..=4096"
    );
    let max = i64::from(states - 1);
    counter_lane_walk(inputs, 0, max, true)
}

/// Shared saturating-counter lane walk. `linear` selects the slinear output
/// rule (mid-band toggle) over the stanh rule (`state >= threshold`); both
/// share the identical `±1` clamp update, so one walk serves both ops.
fn counter_lane_walk(
    inputs: &[&Bitstream],
    threshold: i64,
    max: i64,
    linear: bool,
) -> Vec<Bitstream> {
    assert!(
        (1..=LANES).contains(&inputs.len()),
        "lane group size {} outside 1..={LANES}",
        inputs.len()
    );
    match inputs.len() {
        1 => counter_walk::<1>(inputs, threshold, max, linear),
        2 => counter_walk::<2>(inputs, threshold, max, linear),
        3 => counter_walk::<3>(inputs, threshold, max, linear),
        _ => counter_walk::<4>(inputs, threshold, max, linear),
    }
}

fn counter_walk<const L: usize>(
    inputs: &[&Bitstream],
    threshold: i64,
    max: i64,
    linear: bool,
) -> Vec<Bitstream> {
    let start = if linear { max / 2 } else { threshold };
    let mut state = [start; L];
    let mut toggle = [false; L];
    let (mid_low, mid_high) = (max / 2, max / 2 + 1);
    let mut words: [Vec<u64>; L] =
        std::array::from_fn(|l| Vec::with_capacity(inputs[l].as_words().len()));
    let max_words = inputs.iter().map(|x| x.as_words().len()).max().unwrap_or(0);
    for w in 0..max_words {
        let (mut xw, mut valid) = ([0u64; L], [0usize; L]);
        for l in 0..L {
            if w * WORD_BITS < inputs[l].len() {
                valid[l] = (inputs[l].len() - w * WORD_BITS).min(WORD_BITS);
                xw[l] = inputs[l].as_words()[w];
            }
        }
        let emit = |state: &mut [i64; L], toggle: &mut [bool; L], l: usize| {
            if linear {
                if state[l] > mid_high {
                    true
                } else if state[l] < mid_low {
                    false
                } else {
                    toggle[l] = !toggle[l];
                    toggle[l]
                }
            } else {
                state[l] >= threshold
            }
        };
        if valid.iter().all(|&v| v == WORD_BITS) {
            let mut out = [0u64; L];
            for i in 0..WORD_BITS as u32 {
                for l in 0..L {
                    out[l] |= u64::from(emit(&mut state, &mut toggle, l)) << i;
                    state[l] += if (xw[l] >> i) & 1 == 1 { 1 } else { -1 };
                    state[l] = state[l].clamp(0, max);
                }
            }
            for l in 0..L {
                words[l].push(out[l]);
            }
        } else {
            for l in 0..L {
                if valid[l] == 0 {
                    continue;
                }
                let mut out = 0u64;
                for i in 0..valid[l] as u32 {
                    out |= u64::from(emit(&mut state, &mut toggle, l)) << i;
                    state[l] += if (xw[l] >> i) & 1 == 1 { 1 } else { -1 };
                    state[l] = state[l].clamp(0, max);
                }
                words[l].push(out);
            }
        }
    }
    words
        .into_iter()
        .zip(inputs)
        .map(|(w, x)| Bitstream::from_words(w, x.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sc_bitstream::Probability;
    use sc_convert::DigitalToStochastic;
    use sc_rng::{Lfsr, VanDerCorput};

    const N: usize = 4096;

    fn bipolar_stream(value: f64) -> Bitstream {
        // Bipolar value v corresponds to unipolar probability (v + 1) / 2;
        // use an LFSR so the stream is well mixed (FSM ops need mixing).
        let p = Probability::saturating((value + 1.0) / 2.0);
        DigitalToStochastic::new(Lfsr::new(16, 0xACE1)).generate(p, N)
    }

    #[test]
    fn stanh_saturates_at_the_extremes() {
        let hi = stanh(&bipolar_stream(0.9), 4);
        let lo = stanh(&bipolar_stream(-0.9), 4);
        assert!(hi.bipolar_value() > 0.9, "got {}", hi.bipolar_value());
        assert!(lo.bipolar_value() < -0.9, "got {}", lo.bipolar_value());
    }

    #[test]
    fn stanh_is_near_zero_at_zero() {
        let mid = stanh(&bipolar_stream(0.0), 4);
        assert!(
            mid.bipolar_value().abs() < 0.15,
            "got {}",
            mid.bipolar_value()
        );
    }

    #[test]
    fn stanh_tracks_tanh_shape() {
        // Compare against tanh(k/2 * x) at a few points; the approximation is
        // coarse but must be monotone and within ~0.2 of the analytic curve.
        let k = 4u32;
        let mut last = -1.1;
        for &v in &[-0.8, -0.4, 0.0, 0.4, 0.8] {
            let out = stanh(&bipolar_stream(v), k).bipolar_value();
            let analytic = (f64::from(k) / 2.0 * v).tanh();
            assert!(
                (out - analytic).abs() < 0.2,
                "x={v}: {out} vs tanh {analytic}"
            );
            assert!(out > last, "monotonicity violated at x={v}");
            last = out;
        }
    }

    #[test]
    fn stanh_steepness_grows_with_state_count() {
        let shallow = stanh(&bipolar_stream(0.3), 2).bipolar_value();
        let steep = stanh(&bipolar_stream(0.3), 16).bipolar_value();
        assert!(
            steep >= shallow - 0.05,
            "steep {steep} vs shallow {shallow}"
        );
        assert!(steep > 0.7, "a 32-state FSM saturates quickly, got {steep}");
    }

    #[test]
    fn slinear_passes_sign_and_clamps() {
        let pos = slinear(&bipolar_stream(0.5), 32).bipolar_value();
        let neg = slinear(&bipolar_stream(-0.5), 32).bipolar_value();
        let sat = slinear(&bipolar_stream(0.95), 8).bipolar_value();
        assert!(pos > 0.2, "got {pos}");
        assert!(neg < -0.2, "got {neg}");
        assert!(sat > 0.85, "got {sat}");
    }

    #[test]
    fn fsm_ops_depend_on_bit_order_not_just_value() {
        // The same value presented as one long run behaves differently from a
        // well-mixed stream — the reason FSM-based SC needs decorrelated,
        // well-mixed inputs (and thus the paper's manipulating circuits).
        // Bipolar +0.5: a mixed stream saturates toward tanh(2·0.5) ≈ 0.76,
        // while a fully bunched stream degenerates toward the identity (0.5).
        let ones = 3 * N / 4;
        let bunched = Bitstream::from_fn(N, |i| i < ones);
        let mixed = bipolar_stream(0.5);
        let out_bunched = stanh(&bunched, 4).bipolar_value();
        let out_mixed = stanh(&mixed, 4).bipolar_value();
        assert!(
            out_mixed > 0.65,
            "mixed stream should saturate, got {out_mixed}"
        );
        assert!(
            out_mixed > out_bunched + 0.15,
            "bit order must matter: mixed {out_mixed} vs bunched {out_bunched}"
        );
    }

    #[test]
    fn lane_kernels_match_solo_across_lengths_and_fills() {
        let lengths = [1usize, 63, 64, 65, 1000];
        for fill in 1..=4usize {
            for rot in 0..lengths.len() {
                let streams: Vec<Bitstream> = (0..fill)
                    .map(|l| {
                        let n = lengths[(rot + l) % lengths.len()];
                        Bitstream::from_fn(n, move |i| (i * 7 + l * 5 + 1) % 3 != 0)
                    })
                    .collect();
                let inputs: Vec<&Bitstream> = streams.iter().collect();
                let tanh_lanes = stanh_lanes(&inputs, 4);
                let lin_lanes = slinear_lanes(&inputs, 16);
                for (l, x) in inputs.iter().enumerate() {
                    assert_eq!(tanh_lanes[l], stanh(x, 4), "stanh lane {l} rot {rot}");
                    assert_eq!(lin_lanes[l], slinear(x, 16), "slinear lane {l} rot {rot}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn oversized_lane_group_panics() {
        let a = Bitstream::zeros(8);
        let _ = stanh_lanes(&[&a; 5], 4);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn stanh_zero_states_panics() {
        let _ = stanh(&Bitstream::zeros(8), 0);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn slinear_one_state_panics() {
        let _ = slinear(&Bitstream::zeros(8), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_stanh_output_in_range_and_sign_consistent(k in 0u64..=32) {
            let v = k as f64 / 16.0 - 1.0;
            let p = Probability::saturating((v + 1.0) / 2.0);
            let stream = DigitalToStochastic::new(VanDerCorput::new()).generate(p, 2048);
            let out = stanh(&stream, 3).bipolar_value();
            prop_assert!((-1.0..=1.0).contains(&out));
            if v > 0.4 {
                prop_assert!(out > 0.0);
            }
            if v < -0.4 {
                prop_assert!(out < 0.0);
            }
        }
    }
}
