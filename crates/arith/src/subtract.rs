//! SC subtraction (absolute difference).
//!
//! A single XOR gate computes `pZ = |pX − pY|` when the inputs are
//! *positively* correlated (Fig. 2c): with the 1s of both streams aligned,
//! the XOR output is 1 exactly at the positions where the longer run of 1s
//! extends past the shorter one. With uncorrelated inputs the same gate
//! computes `pX(1 − pY) + pY(1 − pX)` instead, which is why the edge-detector
//! kernel in §IV needs positively correlated inputs.

use sc_bitstream::{Bitstream, Result};

/// SC absolute difference: bitwise XOR of two positively correlated streams.
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
///
/// # Example
///
/// ```
/// use sc_arith::subtract::xor_subtract;
/// use sc_bitstream::Bitstream;
///
/// // Maximally positively correlated: 1s at the front.
/// let x = Bitstream::parse("11110000")?; // 0.5
/// let y = Bitstream::parse("11000000")?; // 0.25
/// assert_eq!(xor_subtract(&x, &y)?.value(), 0.25);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
pub fn xor_subtract(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    // Word-parallel: one XOR per 64 stream bits via the bulk combinators.
    x.try_xor(y)
}

/// The value an XOR gate produces for *uncorrelated* inputs with the given
/// values: `pX(1 − pY) + pY(1 − pX)`. Exposed so experiments can quantify the
/// error made when the correlation requirement is violated.
#[must_use]
pub fn xor_uncorrelated_expectation(px: f64, py: f64) -> f64 {
    px * (1.0 - py) + py * (1.0 - px)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sc_bitstream::{scc, Probability};
    use sc_convert::DigitalToStochastic;
    use sc_rng::{Halton, VanDerCorput};

    const N: usize = 256;

    #[test]
    fn correlated_subtraction_is_exact() {
        for &(px, py) in &[(0.5, 0.25), (0.75, 0.75), (1.0, 0.0), (0.125, 0.625)] {
            let mut g = DigitalToStochastic::new(VanDerCorput::new());
            let (x, y) = g.generate_correlated_pair(
                Probability::new(px).unwrap(),
                Probability::new(py).unwrap(),
                N,
            );
            let z = xor_subtract(&x, &y).unwrap();
            assert!(
                (z.value() - (px - py).abs()) < 0.02,
                "px={px} py={py}: got {}",
                z.value()
            );
        }
    }

    #[test]
    fn uncorrelated_subtraction_is_wrong() {
        // With uncorrelated inputs the XOR value follows the closed form, not |pX - pY|.
        let px = 0.5;
        let py = 0.5;
        let mut gx = DigitalToStochastic::new(VanDerCorput::new());
        let mut gy = DigitalToStochastic::new(Halton::new(3));
        let x = gx.generate(Probability::new(px).unwrap(), N);
        let y = gy.generate(Probability::new(py).unwrap(), N);
        assert!(scc(&x, &y).abs() < 0.2);
        let z = xor_subtract(&x, &y).unwrap();
        let wrong_expected = xor_uncorrelated_expectation(px, py); // 0.5
        assert!((z.value() - wrong_expected).abs() < 0.1);
        assert!(
            (z.value() - 0.0).abs() > 0.3,
            "must differ from the true |pX - pY| = 0"
        );
    }

    #[test]
    fn length_mismatch_errors() {
        assert!(xor_subtract(&Bitstream::zeros(4), &Bitstream::zeros(5)).is_err());
    }

    #[test]
    fn closed_form_examples() {
        assert_eq!(xor_uncorrelated_expectation(0.5, 0.5), 0.5);
        assert_eq!(xor_uncorrelated_expectation(1.0, 0.0), 1.0);
        assert_eq!(xor_uncorrelated_expectation(0.0, 0.0), 0.0);
    }

    proptest! {
        #[test]
        fn prop_correlated_xor_matches_abs_difference(kx in 0u64..=64, ky in 0u64..=64) {
            let px = kx as f64 / 64.0;
            let py = ky as f64 / 64.0;
            let mut g = DigitalToStochastic::new(VanDerCorput::new());
            let (x, y) = g.generate_correlated_pair(
                Probability::new(px).unwrap(),
                Probability::new(py).unwrap(),
                N,
            );
            let z = xor_subtract(&x, &y).unwrap();
            prop_assert!((z.value() - (px - py).abs()).abs() < 0.03);
        }
    }
}
