//! SC division.
//!
//! Division is implemented with the classic stochastic feedback integrator
//! (Gaines; refined by Chen & Hayes, ISVLSI 2016 — reference \[6\] of the
//! paper): a counter integrates the error between the numerator stream and
//! the gated output, and the output bit is produced by comparing the counter
//! against a random value. In steady state the output rate `pZ` satisfies
//! `pX = pZ · pY`, i.e. `pZ = pX / pY` (clamped to 1).
//!
//! Like Fig. 2e notes, the divider prefers *positively correlated* inputs;
//! feeding it uncorrelated inputs increases convergence noise.

use sc_bitstream::{Bitstream, Error, Result};
use sc_rng::RandomSource;

/// A feedback SC divider computing `pZ = min(1, pX / pY)`.
#[derive(Debug, Clone)]
pub struct Divider<S> {
    source: S,
    counter_bits: u32,
    state: i64,
}

impl<S: RandomSource> Divider<S> {
    /// Creates a divider with the default 6-bit integration counter.
    #[must_use]
    pub fn new(source: S) -> Self {
        Self::with_counter_bits(source, 6)
    }

    /// Creates a divider with a `counter_bits`-bit saturating integration
    /// counter. Larger counters integrate longer (more accurate, slower to
    /// converge).
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or greater than 20.
    #[must_use]
    pub fn with_counter_bits(source: S, counter_bits: u32) -> Self {
        assert!(
            (1..=20).contains(&counter_bits),
            "counter width {counter_bits} outside supported range 1..=20"
        );
        Divider {
            source,
            counter_bits,
            state: 0,
        }
    }

    /// Maximum counter value.
    fn max_count(&self) -> i64 {
        (1i64 << self.counter_bits) - 1
    }

    /// Divides two equal-length streams, producing `pZ ≈ min(1, pX / pY)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the lengths differ and
    /// [`Error::EmptyStream`] if the streams are empty.
    pub fn divide(&mut self, x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
        if x.len() != y.len() {
            return Err(Error::LengthMismatch {
                left: x.len(),
                right: y.len(),
            });
        }
        if x.is_empty() {
            return Err(Error::EmptyStream);
        }
        let max = self.max_count();
        // The feedback loop is data-dependent; the stream bits are staged
        // through register-resident words.
        let out = Bitstream::from_word_fn(x.len(), |w| {
            let (xw, yw) = (x.as_words()[w], y.as_words()[w]);
            let valid = x.word_len(w);
            let mut out = 0u64;
            for i in 0..valid {
                // Output bit: compare the scaled counter against a random value.
                let threshold = self.source.next_unit();
                let z = (self.state as f64 / max as f64) > threshold;
                out |= u64::from(z) << i;
                // Integrate the error pX - pZ·pY.
                let delta = i64::from((xw >> i) & 1 == 1) - i64::from(z && (yw >> i) & 1 == 1);
                self.state = (self.state + delta).clamp(0, max);
            }
            out
        });
        Ok(out)
    }

    /// Resets the integrator and the comparison source.
    pub fn reset(&mut self) {
        self.state = 0;
        self.source.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sc_bitstream::Probability;
    use sc_convert::DigitalToStochastic;
    use sc_rng::{Lfsr, VanDerCorput};

    const N: usize = 2048;

    fn correlated_pair(px: f64, py: f64) -> (Bitstream, Bitstream) {
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        g.generate_correlated_pair(
            Probability::new(px).unwrap(),
            Probability::new(py).unwrap(),
            N,
        )
    }

    #[test]
    fn division_converges_to_quotient() {
        for &(px, py) in &[(0.25, 0.5), (0.3, 0.6), (0.1, 0.8), (0.4, 0.5)] {
            let (x, y) = correlated_pair(px, py);
            let mut div = Divider::new(Lfsr::new(16, 0x1D0D));
            let z = div.divide(&x, &y).unwrap();
            let expected = px / py;
            assert!(
                (z.value() - expected).abs() < 0.08,
                "px={px} py={py}: got {} expected {expected}",
                z.value()
            );
        }
    }

    #[test]
    fn division_saturates_at_one() {
        let (x, y) = correlated_pair(0.8, 0.4);
        let mut div = Divider::new(Lfsr::new(16, 0x1D0D));
        let z = div.divide(&x, &y).unwrap();
        assert!(z.value() > 0.9, "got {}", z.value());
    }

    #[test]
    fn zero_numerator_gives_near_zero() {
        let (x, y) = correlated_pair(0.0, 0.5);
        let mut div = Divider::new(Lfsr::new(16, 0x1D0D));
        let z = div.divide(&x, &y).unwrap();
        assert!(z.value() < 0.1, "got {}", z.value());
    }

    #[test]
    fn reset_restores_behaviour() {
        let (x, y) = correlated_pair(0.25, 0.5);
        let mut div = Divider::new(Lfsr::new(16, 0x1D0D));
        let a = div.divide(&x, &y).unwrap();
        div.reset();
        let b = div.divide(&x, &y).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let mut div = Divider::new(Lfsr::new(16, 1));
        assert!(div
            .divide(&Bitstream::zeros(4), &Bitstream::zeros(5))
            .is_err());
        assert!(div.divide(&Bitstream::new(), &Bitstream::new()).is_err());
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn zero_counter_bits_panics() {
        let _ = Divider::with_counter_bits(Lfsr::new(16, 1), 0);
    }

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_quotient_error_bounded(kx in 1u64..=8, ky_extra in 0u64..=7) {
            // Ensure py >= px (quotient in [0, 1]) and py >= 0.25: feedback
            // dividers converge with a time constant proportional to 1/pY, so
            // very small denominators need longer streams than N = 2048.
            let ky = (kx + ky_extra).clamp(4, 16);
            let kx = kx.min(ky);
            let px = kx as f64 / 16.0;
            let py = ky as f64 / 16.0;
            let (x, y) = correlated_pair(px, py);
            let mut div = Divider::new(Lfsr::new(16, 0x7331));
            let z = div.divide(&x, &y).unwrap();
            prop_assert!((z.value() - px / py).abs() < 0.12, "got {} expected {}", z.value(), px / py);
        }
    }
}
