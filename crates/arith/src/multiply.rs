//! SC multiplication.
//!
//! * Unipolar: a single AND gate computes `pZ = pX · pY` when the inputs are
//!   uncorrelated (Fig. 1a / 2d).
//! * Bipolar: a single XNOR gate computes `z = x · y` when the inputs are
//!   uncorrelated.
//!
//! With correlated inputs the same gates compute different functions
//! (Table I), which is exactly the failure mode the paper's decorrelator
//! repairs.

use sc_bitstream::{Bitstream, Result};

/// Unipolar SC multiplication: bitwise AND of two uncorrelated streams.
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
///
/// # Example
///
/// ```
/// use sc_arith::multiply::and_multiply;
/// use sc_bitstream::Bitstream;
///
/// let x = Bitstream::parse("01010101")?;
/// let y = Bitstream::parse("11111100")?;
/// assert_eq!(and_multiply(&x, &y)?.value(), 0.375);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
pub fn and_multiply(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    // Word-parallel: one AND per 64 stream bits via the bulk combinators.
    x.try_and(y)
}

/// Bipolar SC multiplication: bitwise XNOR of two uncorrelated streams.
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn xnor_multiply(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    x.try_xnor(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sc_bitstream::Probability;
    use sc_convert::DigitalToStochastic;
    use sc_rng::{Halton, VanDerCorput};

    const N: usize = 256;

    fn uncorrelated_pair(px: f64, py: f64) -> (Bitstream, Bitstream) {
        let mut gx = DigitalToStochastic::new(VanDerCorput::new());
        let mut gy = DigitalToStochastic::new(Halton::new(3));
        (
            gx.generate(Probability::new(px).unwrap(), N),
            gy.generate(Probability::new(py).unwrap(), N),
        )
    }

    #[test]
    fn paper_example_multiplication() {
        let x = Bitstream::parse("01010101").unwrap();
        let y = Bitstream::parse("11111100").unwrap();
        let z = and_multiply(&x, &y).unwrap();
        assert_eq!(z.to_bit_string(), "01010100");
        assert_eq!(z.value(), 0.375);
    }

    #[test]
    fn uncorrelated_multiplication_is_accurate() {
        for &(px, py) in &[
            (0.5, 0.75),
            (0.25, 0.25),
            (0.9, 0.1),
            (1.0, 0.5),
            (0.0, 0.7),
        ] {
            let (x, y) = uncorrelated_pair(px, py);
            let z = and_multiply(&x, &y).unwrap();
            assert!(
                (z.value() - px * py).abs() < 0.03,
                "px={px} py={py}: got {} expected {}",
                z.value(),
                px * py
            );
        }
    }

    #[test]
    fn positively_correlated_multiplication_computes_min_instead() {
        // Table I: shared-source generation gives min(pX, pY), not the product.
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        let (x, y) = g.generate_correlated_pair(
            Probability::new(0.5).unwrap(),
            Probability::new(0.75).unwrap(),
            N,
        );
        let z = and_multiply(&x, &y).unwrap();
        assert!((z.value() - 0.5).abs() < 0.02, "got {}", z.value());
        assert!(
            (z.value() - 0.375).abs() > 0.05,
            "should NOT equal the product"
        );
    }

    #[test]
    fn bipolar_multiplication_is_accurate() {
        // x = 0.5 (bipolar) -> p = 0.75; y = -0.5 -> p = 0.25.
        let (sx, sy) = uncorrelated_pair(0.75, 0.25);
        let z = xnor_multiply(&sx, &sy).unwrap();
        let expected = 0.5 * -0.5;
        assert!(
            (z.bipolar_value() - expected).abs() < 0.06,
            "got {} expected {}",
            z.bipolar_value(),
            expected
        );
    }

    #[test]
    fn length_mismatch_errors() {
        let x = Bitstream::zeros(8);
        let y = Bitstream::zeros(9);
        assert!(and_multiply(&x, &y).is_err());
        assert!(xnor_multiply(&x, &y).is_err());
    }

    proptest! {
        #[test]
        fn prop_unipolar_multiply_error_small(kx in 0u64..=64, ky in 0u64..=64) {
            let px = kx as f64 / 64.0;
            let py = ky as f64 / 64.0;
            let (x, y) = uncorrelated_pair(px, py);
            let z = and_multiply(&x, &y).unwrap();
            prop_assert!((z.value() - px * py).abs() < 0.05);
        }

        #[test]
        fn prop_bipolar_multiply_sign_correct(kx in 0u64..=64, ky in 0u64..=64) {
            let px = kx as f64 / 64.0;
            let py = ky as f64 / 64.0;
            let bx = 2.0 * px - 1.0;
            let by = 2.0 * py - 1.0;
            prop_assume!(bx.abs() > 0.3 && by.abs() > 0.3);
            let (x, y) = uncorrelated_pair(px, py);
            let z = xnor_multiply(&x, &y).unwrap();
            prop_assert!((z.bipolar_value() - bx * by).abs() < 0.15);
        }
    }
}
