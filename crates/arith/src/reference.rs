//! Retained bit-serial reference implementations of the arithmetic operators.
//!
//! Mirrors `sc_bitstream::reference`: these are the original
//! one-bit-per-cycle formulations, kept as the executable specification the
//! word-parallel operators are verified against (bit-identical, including at
//! lengths that are not multiples of 64) and as the baseline the benchmark
//! suite measures speedups from. Single-gate operators (AND multiply, OR max,
//! XOR subtract, ...) have their bit-serial references in
//! `sc_bitstream::reference`; this module covers the counter-based designs.

use sc_bitstream::{Bitstream, Error, Result};

/// Bit-serial correlation-agnostic scaled addition (the original `ca_add`).
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn ca_add(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let mut acc = 0u32;
    let out = Bitstream::from_fn(x.len(), |i| {
        acc += u32::from(x.bit(i)) + u32::from(y.bit(i));
        if acc >= 2 {
            acc -= 2;
            true
        } else {
            false
        }
    });
    Ok(out)
}

/// Bit-serial correlation-agnostic maximum (the original `ca_max`).
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn ca_max(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let (mut cx, mut cy, mut co) = (0u64, 0u64, 0u64);
    let out = Bitstream::from_fn(x.len(), |i| {
        cx += u64::from(x.bit(i));
        cy += u64::from(y.bit(i));
        let target = cx.max(cy);
        let bit = target > co;
        co = target;
        bit
    });
    Ok(out)
}

/// Bit-serial correlation-agnostic minimum (the original `ca_min`).
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn ca_min(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let (mut cx, mut cy, mut co) = (0u64, 0u64, 0u64);
    let out = Bitstream::from_fn(x.len(), |i| {
        cx += u64::from(x.bit(i));
        cy += u64::from(y.bit(i));
        let target = cx.min(cy);
        let bit = target > co;
        co = target;
        bit
    });
    Ok(out)
}

/// Bit-serial `stanh` (the original saturating-counter formulation).
///
/// # Panics
///
/// Panics if `half_states` is 0 or greater than 2048.
#[must_use]
pub fn stanh(input: &Bitstream, half_states: u32) -> Bitstream {
    assert!(
        (1..=2048).contains(&half_states),
        "stanh state count {half_states} outside supported range 1..=2048"
    );
    let max = i64::from(2 * half_states - 1);
    let mut state = i64::from(half_states);
    Bitstream::from_fn(input.len(), |i| {
        let out = state >= i64::from(half_states);
        state += if input.bit(i) { 1 } else { -1 };
        state = state.clamp(0, max);
        out
    })
}

/// Bit-serial `slinear` (the original saturating-counter formulation).
///
/// # Panics
///
/// Panics if `states` is smaller than 2 or greater than 4096.
#[must_use]
pub fn slinear(input: &Bitstream, states: u32) -> Bitstream {
    assert!(
        (2..=4096).contains(&states),
        "slinear state count {states} outside supported range 2..=4096"
    );
    let max = i64::from(states - 1);
    let mut state = max / 2;
    let mut toggle = false;
    Bitstream::from_fn(input.len(), |i| {
        let mid_low = max / 2;
        let mid_high = mid_low + 1;
        let out = if state > mid_high {
            true
        } else if state < mid_low {
            false
        } else {
            toggle = !toggle;
            toggle
        };
        state += if input.bit(i) { 1 } else { -1 };
        state = state.clamp(0, max);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_agree_with_word_parallel_operators_at_odd_lengths() {
        for n in [1usize, 63, 64, 65, 130, 1000] {
            let x = Bitstream::from_fn(n, |i| (i * 13 + 5) % 7 < 3);
            let y = Bitstream::from_fn(n, |i| (i * 17 + 2) % 5 < 2);
            assert_eq!(
                crate::add::ca_add(&x, &y).unwrap(),
                ca_add(&x, &y).unwrap(),
                "ca_add n={n}"
            );
            assert_eq!(
                crate::maxmin::ca_max(&x, &y).unwrap(),
                ca_max(&x, &y).unwrap(),
                "ca_max n={n}"
            );
            assert_eq!(
                crate::maxmin::ca_min(&x, &y).unwrap(),
                ca_min(&x, &y).unwrap(),
                "ca_min n={n}"
            );
            for s in [1u32, 3, 4] {
                assert_eq!(
                    crate::fsm_ops::stanh(&x, s),
                    stanh(&x, s),
                    "stanh n={n} s={s}"
                );
            }
            for s in [2u32, 7, 8] {
                assert_eq!(
                    crate::fsm_ops::slinear(&x, s),
                    slinear(&x, s),
                    "slinear n={n} s={s}"
                );
            }
        }
    }
}
