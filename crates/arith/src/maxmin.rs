//! SC maximum and minimum.
//!
//! * **OR max / AND min** — single gates that are exact only when the inputs
//!   are maximally positively correlated; with imperfect correlation the OR
//!   output overshoots (`pZ ≥ max`) and the AND output undershoots
//!   (`pZ ≤ min`). These are the cheap baselines of Table III.
//! * **Correlation-agnostic max/min** (SC-DCNN, reference \[12\]) — running
//!   counters track how many 1s each input has produced so far and the output
//!   emits a 1 exactly when the running maximum (respectively minimum) of the
//!   two counts advances. Accurate regardless of correlation but requires
//!   counters and a comparator, which is why the paper measures it as two
//!   orders of magnitude larger than a bare OR gate.
//!
//! The paper's *synchronizer-based* max/min (smaller than the
//! correlation-agnostic design, nearly as accurate) live in `sc-core::ops`.

use sc_bitstream::{Bitstream, Error, Result};

/// SC maximum via a single OR gate (requires positively correlated inputs).
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
///
/// # Example
///
/// ```
/// use sc_arith::maxmin::or_max;
/// use sc_bitstream::Bitstream;
///
/// let x = Bitstream::parse("11110000")?; // 0.5, positively correlated with y
/// let y = Bitstream::parse("11000000")?; // 0.25
/// assert_eq!(or_max(&x, &y)?.value(), 0.5);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
pub fn or_max(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    // Word-parallel: one OR per 64 stream bits via the bulk combinators.
    x.try_or(y)
}

/// SC minimum via a single AND gate (requires positively correlated inputs).
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn and_min(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    x.try_and(y)
}

/// Correlation-agnostic SC maximum (SC-DCNN-style counters + comparator).
///
/// Counters accumulate the 1s of each input; the output emits a 1 whenever
/// `max(countX, countY)` advances, so after `N` cycles the output carries
/// exactly `max(countX, countY)` ones independent of input correlation.
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn ca_max(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    // The counters are data-dependent, but the stream bits are staged through
    // register-resident words: one load/store per 64 cycles.
    let (mut cx, mut cy, mut co) = (0u64, 0u64, 0u64);
    let out = Bitstream::from_word_fn(x.len(), |w| {
        let (xw, yw) = (x.as_words()[w], y.as_words()[w]);
        let valid = x.word_len(w);
        let mut out = 0u64;
        for i in 0..valid {
            cx += (xw >> i) & 1;
            cy += (yw >> i) & 1;
            let target = cx.max(cy);
            out |= u64::from(target > co) << i;
            co = target;
        }
        out
    });
    Ok(out)
}

/// Correlation-agnostic SC minimum (dual of [`ca_max`]).
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn ca_min(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let (mut cx, mut cy, mut co) = (0u64, 0u64, 0u64);
    let out = Bitstream::from_word_fn(x.len(), |w| {
        let (xw, yw) = (x.as_words()[w], y.as_words()[w]);
        let valid = x.word_len(w);
        let mut out = 0u64;
        for i in 0..valid {
            cx += (xw >> i) & 1;
            cy += (yw >> i) & 1;
            let target = cx.min(cy);
            out |= u64::from(target > co) << i;
            co = target;
        }
        out
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sc_bitstream::{scc, Probability};
    use sc_convert::DigitalToStochastic;
    use sc_rng::{Halton, VanDerCorput};

    const N: usize = 256;

    fn correlated_pair(px: f64, py: f64) -> (Bitstream, Bitstream) {
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        g.generate_correlated_pair(
            Probability::new(px).unwrap(),
            Probability::new(py).unwrap(),
            N,
        )
    }

    fn uncorrelated_pair(px: f64, py: f64) -> (Bitstream, Bitstream) {
        let mut gx = DigitalToStochastic::new(VanDerCorput::new());
        let mut gy = DigitalToStochastic::new(Halton::new(3));
        (
            gx.generate(Probability::new(px).unwrap(), N),
            gy.generate(Probability::new(py).unwrap(), N),
        )
    }

    #[test]
    fn or_max_exact_with_positive_correlation() {
        let (x, y) = correlated_pair(0.5, 0.75);
        assert!(scc(&x, &y) > 0.95);
        let z = or_max(&x, &y).unwrap();
        assert!((z.value() - 0.75).abs() < 0.02);
    }

    #[test]
    fn or_max_overshoots_with_uncorrelated_inputs() {
        // This is the 0.087 average error row of Table III: with uncorrelated
        // inputs the OR computes pX + pY - pX·pY, always >= max.
        let (x, y) = uncorrelated_pair(0.5, 0.75);
        let z = or_max(&x, &y).unwrap();
        assert!(z.value() >= 0.75);
        assert!((z.value() - 0.875).abs() < 0.05, "got {}", z.value());
    }

    #[test]
    fn and_min_exact_with_positive_correlation() {
        let (x, y) = correlated_pair(0.5, 0.75);
        let z = and_min(&x, &y).unwrap();
        assert!((z.value() - 0.5).abs() < 0.02);
    }

    #[test]
    fn and_min_undershoots_with_uncorrelated_inputs() {
        let (x, y) = uncorrelated_pair(0.5, 0.75);
        let z = and_min(&x, &y).unwrap();
        assert!(z.value() <= 0.5);
        assert!((z.value() - 0.375).abs() < 0.05);
    }

    #[test]
    fn ca_max_accurate_for_any_correlation() {
        for &(px, py) in &[(0.5, 0.75), (0.9, 0.1), (0.3, 0.3), (0.0, 0.6), (1.0, 0.2)] {
            let (xu, yu) = uncorrelated_pair(px, py);
            let zu = ca_max(&xu, &yu).unwrap();
            assert!(
                (zu.value() - px.max(py)).abs() < 0.03,
                "uncorrelated px={px} py={py}: {}",
                zu.value()
            );
            let (xc, yc) = correlated_pair(px, py);
            let zc = ca_max(&xc, &yc).unwrap();
            assert!(
                (zc.value() - px.max(py)).abs() < 0.03,
                "correlated px={px} py={py}: {}",
                zc.value()
            );
        }
    }

    #[test]
    fn ca_min_accurate_for_any_correlation() {
        for &(px, py) in &[(0.5, 0.75), (0.9, 0.1), (0.3, 0.3), (0.0, 0.6)] {
            let (x, y) = uncorrelated_pair(px, py);
            let z = ca_min(&x, &y).unwrap();
            assert!(
                (z.value() - px.min(py)).abs() < 0.03,
                "px={px} py={py}: {}",
                z.value()
            );
        }
    }

    #[test]
    fn min_plus_max_equals_sum_for_ca_designs() {
        let (x, y) = uncorrelated_pair(0.4, 0.7);
        let mx = ca_max(&x, &y).unwrap();
        let mn = ca_min(&x, &y).unwrap();
        // max + min = x + y exactly, bit by bit construction guarantees the counts.
        assert_eq!(
            mx.count_ones() + mn.count_ones(),
            x.count_ones() + y.count_ones()
        );
    }

    #[test]
    fn length_mismatch_errors() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(9);
        assert!(or_max(&a, &b).is_err());
        assert!(and_min(&a, &b).is_err());
        assert!(ca_max(&a, &b).is_err());
        assert!(ca_min(&a, &b).is_err());
    }

    proptest! {
        #[test]
        fn prop_or_max_always_upper_bounds_true_max(kx in 0u64..=64, ky in 0u64..=64) {
            let (x, y) = uncorrelated_pair(kx as f64 / 64.0, ky as f64 / 64.0);
            let z = or_max(&x, &y).unwrap();
            prop_assert!(z.value() + 1e-12 >= x.value().max(y.value()));
        }

        #[test]
        fn prop_and_min_always_lower_bounds_true_min(kx in 0u64..=64, ky in 0u64..=64) {
            let (x, y) = uncorrelated_pair(kx as f64 / 64.0, ky as f64 / 64.0);
            let z = and_min(&x, &y).unwrap();
            prop_assert!(z.value() <= x.value().min(y.value()) + 1e-12);
        }

        #[test]
        fn prop_ca_max_error_small(kx in 0u64..=64, ky in 0u64..=64) {
            let px = kx as f64 / 64.0;
            let py = ky as f64 / 64.0;
            let (x, y) = uncorrelated_pair(px, py);
            let z = ca_max(&x, &y).unwrap();
            prop_assert!((z.value() - px.max(py)).abs() < 0.05);
        }
    }
}
