//! SC maximum and minimum.
//!
//! * **OR max / AND min** — single gates that are exact only when the inputs
//!   are maximally positively correlated; with imperfect correlation the OR
//!   output overshoots (`pZ ≥ max`) and the AND output undershoots
//!   (`pZ ≤ min`). These are the cheap baselines of Table III.
//! * **Correlation-agnostic max/min** (SC-DCNN, reference \[12\]) — running
//!   counters track how many 1s each input has produced so far and the output
//!   emits a 1 exactly when the running maximum (respectively minimum) of the
//!   two counts advances. Accurate regardless of correlation but requires
//!   counters and a comparator, which is why the paper measures it as two
//!   orders of magnitude larger than a bare OR gate.
//!
//! The paper's *synchronizer-based* max/min (smaller than the
//! correlation-agnostic design, nearly as accurate) live in `sc-core::ops`.

use sc_bitstream::{Bitstream, Error, Result, WORD_BITS};

/// Number of independent streams the `*_lanes` kernels process per call;
/// matches `sc_core::LANES` so executor lane groups map onto one call.
const LANES: usize = 4;

/// SC maximum via a single OR gate (requires positively correlated inputs).
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
///
/// # Example
///
/// ```
/// use sc_arith::maxmin::or_max;
/// use sc_bitstream::Bitstream;
///
/// let x = Bitstream::parse("11110000")?; // 0.5, positively correlated with y
/// let y = Bitstream::parse("11000000")?; // 0.25
/// assert_eq!(or_max(&x, &y)?.value(), 0.5);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
pub fn or_max(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    // Word-parallel: one OR per 64 stream bits via the bulk combinators.
    x.try_or(y)
}

/// SC minimum via a single AND gate (requires positively correlated inputs).
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn and_min(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    x.try_and(y)
}

/// Correlation-agnostic SC maximum (SC-DCNN-style counters + comparator).
///
/// Counters accumulate the 1s of each input; the output emits a 1 whenever
/// `max(countX, countY)` advances, so after `N` cycles the output carries
/// exactly `max(countX, countY)` ones independent of input correlation.
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn ca_max(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    // The counters are data-dependent, but the stream bits are staged through
    // register-resident words: one load/store per 64 cycles.
    let (mut cx, mut cy, mut co) = (0u64, 0u64, 0u64);
    let out = Bitstream::from_word_fn(x.len(), |w| {
        let (xw, yw) = (x.as_words()[w], y.as_words()[w]);
        let valid = x.word_len(w);
        let mut out = 0u64;
        for i in 0..valid {
            cx += (xw >> i) & 1;
            cy += (yw >> i) & 1;
            let target = cx.max(cy);
            out |= u64::from(target > co) << i;
            co = target;
        }
        out
    });
    Ok(out)
}

/// Correlation-agnostic SC minimum (dual of [`ca_max`]).
///
/// # Errors
///
/// Returns a length-mismatch error if the streams differ in length.
pub fn ca_min(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let (mut cx, mut cy, mut co) = (0u64, 0u64, 0u64);
    let out = Bitstream::from_word_fn(x.len(), |w| {
        let (xw, yw) = (x.as_words()[w], y.as_words()[w]);
        let valid = x.word_len(w);
        let mut out = 0u64;
        for i in 0..valid {
            cx += (xw >> i) & 1;
            cy += (yw >> i) & 1;
            let target = cx.min(cy);
            out |= u64::from(target > co) << i;
            co = target;
        }
        out
    });
    Ok(out)
}

/// Lane-batched [`ca_max`]: up to four *independent* stream pairs in one
/// pass, each with its own counter state. Per pair the result is bit-identical
/// to [`ca_max`]; batching exists because the counter update is a serial
/// per-bit chain, and interleaving four independent chains lets the core
/// overlap them instead of waiting on one.
///
/// Pairs may have unequal lengths (exhausted lanes simply drop out).
///
/// # Errors
///
/// Returns a length-mismatch error if any pair's streams differ in length.
///
/// # Panics
///
/// Panics if `pairs` is empty or holds more than four entries.
pub fn ca_max_lanes(pairs: &[(&Bitstream, &Bitstream)]) -> Result<Vec<Bitstream>> {
    ca_lanes::<true>(pairs)
}

/// Lane-batched [`ca_min`] (dual of [`ca_max_lanes`]).
///
/// # Errors
///
/// Returns a length-mismatch error if any pair's streams differ in length.
///
/// # Panics
///
/// Panics if `pairs` is empty or holds more than four entries.
pub fn ca_min_lanes(pairs: &[(&Bitstream, &Bitstream)]) -> Result<Vec<Bitstream>> {
    ca_lanes::<false>(pairs)
}

fn ca_lanes<const MAX: bool>(pairs: &[(&Bitstream, &Bitstream)]) -> Result<Vec<Bitstream>> {
    assert!(
        (1..=LANES).contains(&pairs.len()),
        "lane group size {} outside 1..={LANES}",
        pairs.len()
    );
    for (x, y) in pairs {
        if x.len() != y.len() {
            return Err(Error::LengthMismatch {
                left: x.len(),
                right: y.len(),
            });
        }
    }
    // Monomorphise on the fill so the per-bit lane loop fully unrolls and the
    // four counter chains live in registers.
    match pairs.len() {
        1 => ca_lane_walk::<1, MAX>(pairs),
        2 => ca_lane_walk::<2, MAX>(pairs),
        3 => ca_lane_walk::<3, MAX>(pairs),
        _ => ca_lane_walk::<4, MAX>(pairs),
    }
}

/// One word of the count-difference walk for a single lane.
///
/// The lane kernels carry `d = countX - countY` instead of the three counters
/// of the solo path: the running maximum advances exactly when the (tied-)
/// leading counter increments, so `out = (x & (d >= 0)) | (y & (d <= 0))` for
/// max and `out = (x & y) | (x & (d < 0)) | (y & (d > 0))` for min, with
/// `d += x - y` afterwards. Equivalent to the counter form bit for bit (the
/// lane-vs-solo tests pin this down) but with a single state variable and a
/// branch-free body.
#[inline]
fn ca_step_bits<const MAX: bool>(xw: u64, yw: u64, valid: u32, d: &mut i64) -> u64 {
    let mut out = 0u64;
    for i in 0..valid {
        let xb = (xw >> i) & 1;
        let yb = (yw >> i) & 1;
        let bit = if MAX {
            (xb & u64::from(*d >= 0)) | (yb & u64::from(*d <= 0))
        } else {
            (xb & yb) | (xb & u64::from(*d < 0)) | (yb & u64::from(*d > 0))
        };
        out |= bit << i;
        *d += xb as i64 - yb as i64;
    }
    out
}

/// One full 64-bit word for a single lane, taking the sign-run fast path when
/// the count difference cannot change sign within the word.
///
/// With `|d| >= 64` the per-bit comparisons are constant across all 64 cycles
/// (the difference moves by at most 1 per bit), so the output word is simply
/// one of the input words and the state update collapses to two popcounts.
/// Once two streams of unequal value have drifted apart this path handles
/// nearly every word, turning the serial per-bit walk into O(1) per word.
#[inline]
fn ca_step_word<const MAX: bool>(xw: u64, yw: u64, d: &mut i64) -> u64 {
    if *d >= WORD_BITS as i64 {
        // countX stays strictly ahead: max follows x, min follows y.
        *d += xw.count_ones() as i64 - yw.count_ones() as i64;
        if MAX {
            xw
        } else {
            yw
        }
    } else if *d <= -(WORD_BITS as i64) {
        *d += xw.count_ones() as i64 - yw.count_ones() as i64;
        if MAX {
            yw
        } else {
            xw
        }
    } else {
        ca_step_bits::<MAX>(xw, yw, WORD_BITS as u32, d)
    }
}

fn ca_lane_walk<const L: usize, const MAX: bool>(
    pairs: &[(&Bitstream, &Bitstream)],
) -> Result<Vec<Bitstream>> {
    let mut d = [0i64; L];
    let mut words: [Vec<u64>; L] =
        std::array::from_fn(|l| Vec::with_capacity(pairs[l].0.as_words().len()));
    let max_words = pairs
        .iter()
        .map(|(x, _)| x.as_words().len())
        .max()
        .unwrap_or(0);
    // Words where every lane is full: no per-lane valid bookkeeping needed.
    let common_full = pairs
        .iter()
        .map(|(x, _)| x.len() / WORD_BITS)
        .min()
        .unwrap_or(0);
    for w in 0..common_full {
        for l in 0..L {
            let (x, y) = pairs[l];
            let out = ca_step_word::<MAX>(x.as_words()[w], y.as_words()[w], &mut d[l]);
            words[l].push(out);
        }
    }
    // Ragged tail: finish each remaining lane solo.
    for w in common_full..max_words {
        for l in 0..L {
            let (x, y) = pairs[l];
            if w * WORD_BITS >= x.len() {
                continue;
            }
            let valid = (x.len() - w * WORD_BITS).min(WORD_BITS) as u32;
            let (xw, yw) = (x.as_words()[w], y.as_words()[w]);
            let out = if valid == WORD_BITS as u32 {
                ca_step_word::<MAX>(xw, yw, &mut d[l])
            } else {
                ca_step_bits::<MAX>(xw, yw, valid, &mut d[l])
            };
            words[l].push(out);
        }
    }
    Ok(words
        .into_iter()
        .zip(pairs)
        .map(|(w, (x, _))| Bitstream::from_words(w, x.len()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sc_bitstream::{scc, Probability};
    use sc_convert::DigitalToStochastic;
    use sc_rng::{Halton, VanDerCorput};

    const N: usize = 256;

    fn correlated_pair(px: f64, py: f64) -> (Bitstream, Bitstream) {
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        g.generate_correlated_pair(
            Probability::new(px).unwrap(),
            Probability::new(py).unwrap(),
            N,
        )
    }

    fn uncorrelated_pair(px: f64, py: f64) -> (Bitstream, Bitstream) {
        let mut gx = DigitalToStochastic::new(VanDerCorput::new());
        let mut gy = DigitalToStochastic::new(Halton::new(3));
        (
            gx.generate(Probability::new(px).unwrap(), N),
            gy.generate(Probability::new(py).unwrap(), N),
        )
    }

    #[test]
    fn or_max_exact_with_positive_correlation() {
        let (x, y) = correlated_pair(0.5, 0.75);
        assert!(scc(&x, &y) > 0.95);
        let z = or_max(&x, &y).unwrap();
        assert!((z.value() - 0.75).abs() < 0.02);
    }

    #[test]
    fn or_max_overshoots_with_uncorrelated_inputs() {
        // This is the 0.087 average error row of Table III: with uncorrelated
        // inputs the OR computes pX + pY - pX·pY, always >= max.
        let (x, y) = uncorrelated_pair(0.5, 0.75);
        let z = or_max(&x, &y).unwrap();
        assert!(z.value() >= 0.75);
        assert!((z.value() - 0.875).abs() < 0.05, "got {}", z.value());
    }

    #[test]
    fn and_min_exact_with_positive_correlation() {
        let (x, y) = correlated_pair(0.5, 0.75);
        let z = and_min(&x, &y).unwrap();
        assert!((z.value() - 0.5).abs() < 0.02);
    }

    #[test]
    fn and_min_undershoots_with_uncorrelated_inputs() {
        let (x, y) = uncorrelated_pair(0.5, 0.75);
        let z = and_min(&x, &y).unwrap();
        assert!(z.value() <= 0.5);
        assert!((z.value() - 0.375).abs() < 0.05);
    }

    #[test]
    fn ca_max_accurate_for_any_correlation() {
        for &(px, py) in &[(0.5, 0.75), (0.9, 0.1), (0.3, 0.3), (0.0, 0.6), (1.0, 0.2)] {
            let (xu, yu) = uncorrelated_pair(px, py);
            let zu = ca_max(&xu, &yu).unwrap();
            assert!(
                (zu.value() - px.max(py)).abs() < 0.03,
                "uncorrelated px={px} py={py}: {}",
                zu.value()
            );
            let (xc, yc) = correlated_pair(px, py);
            let zc = ca_max(&xc, &yc).unwrap();
            assert!(
                (zc.value() - px.max(py)).abs() < 0.03,
                "correlated px={px} py={py}: {}",
                zc.value()
            );
        }
    }

    #[test]
    fn ca_min_accurate_for_any_correlation() {
        for &(px, py) in &[(0.5, 0.75), (0.9, 0.1), (0.3, 0.3), (0.0, 0.6)] {
            let (x, y) = uncorrelated_pair(px, py);
            let z = ca_min(&x, &y).unwrap();
            assert!(
                (z.value() - px.min(py)).abs() < 0.03,
                "px={px} py={py}: {}",
                z.value()
            );
        }
    }

    #[test]
    fn min_plus_max_equals_sum_for_ca_designs() {
        let (x, y) = uncorrelated_pair(0.4, 0.7);
        let mx = ca_max(&x, &y).unwrap();
        let mn = ca_min(&x, &y).unwrap();
        // max + min = x + y exactly, bit by bit construction guarantees the counts.
        assert_eq!(
            mx.count_ones() + mn.count_ones(),
            x.count_ones() + y.count_ones()
        );
    }

    #[test]
    fn length_mismatch_errors() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(9);
        assert!(or_max(&a, &b).is_err());
        assert!(and_min(&a, &b).is_err());
        assert!(ca_max(&a, &b).is_err());
        assert!(ca_min(&a, &b).is_err());
    }

    #[test]
    fn lane_kernels_match_solo_across_lengths_and_fills() {
        let lengths = [1usize, 63, 64, 65, 1000];
        for fill in 1..=4usize {
            for rot in 0..lengths.len() {
                let streams: Vec<(Bitstream, Bitstream)> = (0..fill)
                    .map(|l| {
                        let n = lengths[(rot + l) % lengths.len()];
                        (
                            Bitstream::from_fn(n, move |i| (i * 7 + l * 3 + 1) % 3 == 0),
                            Bitstream::from_fn(n, move |i| (i * 5 + l * 13 + 2) % 4 < 2),
                        )
                    })
                    .collect();
                let pairs: Vec<(&Bitstream, &Bitstream)> =
                    streams.iter().map(|(x, y)| (x, y)).collect();
                let max_lanes = ca_max_lanes(&pairs).unwrap();
                let min_lanes = ca_min_lanes(&pairs).unwrap();
                for (l, (x, y)) in pairs.iter().enumerate() {
                    assert_eq!(
                        max_lanes[l],
                        ca_max(x, y).unwrap(),
                        "max lane {l} rot {rot}"
                    );
                    assert_eq!(
                        min_lanes[l],
                        ca_min(x, y).unwrap(),
                        "min lane {l} rot {rot}"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_kernels_reject_mismatched_pairs() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(9);
        assert!(ca_max_lanes(&[(&a, &a), (&a, &b)]).is_err());
        assert!(ca_min_lanes(&[(&a, &b)]).is_err());
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn oversized_lane_group_panics() {
        let a = Bitstream::zeros(8);
        let _ = ca_max_lanes(&[(&a, &a); 5]);
    }

    proptest! {
        #[test]
        fn prop_lane_ca_max_matches_solo(
            lens in proptest::collection::vec(1usize..200, 1..=4),
            salt in 0usize..1000,
        ) {
            let streams: Vec<(Bitstream, Bitstream)> = lens
                .iter()
                .enumerate()
                .map(|(l, &n)| {
                    (
                        Bitstream::from_fn(n, move |i| (i * 11 + salt + l) % 5 < 2),
                        Bitstream::from_fn(n, move |i| (i * 3 + salt * 2 + l) % 7 < 3),
                    )
                })
                .collect();
            let pairs: Vec<(&Bitstream, &Bitstream)> =
                streams.iter().map(|(x, y)| (x, y)).collect();
            let got = ca_max_lanes(&pairs).unwrap();
            for (l, (x, y)) in pairs.iter().enumerate() {
                prop_assert_eq!(&got[l], &ca_max(x, y).unwrap(), "lane {}", l);
            }
        }

        #[test]
        fn prop_or_max_always_upper_bounds_true_max(kx in 0u64..=64, ky in 0u64..=64) {
            let (x, y) = uncorrelated_pair(kx as f64 / 64.0, ky as f64 / 64.0);
            let z = or_max(&x, &y).unwrap();
            prop_assert!(z.value() + 1e-12 >= x.value().max(y.value()));
        }

        #[test]
        fn prop_and_min_always_lower_bounds_true_min(kx in 0u64..=64, ky in 0u64..=64) {
            let (x, y) = uncorrelated_pair(kx as f64 / 64.0, ky as f64 / 64.0);
            let z = and_min(&x, &y).unwrap();
            prop_assert!(z.value() <= x.value().min(y.value()) + 1e-12);
        }

        #[test]
        fn prop_ca_max_error_small(kx in 0u64..=64, ky in 0u64..=64) {
            let px = kx as f64 / 64.0;
            let py = ky as f64 / 64.0;
            let (x, y) = uncorrelated_pair(px, py);
            let z = ca_max(&x, &y).unwrap();
            prop_assert!((z.value() - px.max(py)).abs() < 0.05);
        }
    }
}
