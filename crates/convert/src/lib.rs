//! # sc-convert
//!
//! Digital ↔ stochastic domain converters for the DATE 2018 correlation
//! manipulation reproduction.
//!
//! * [`DigitalToStochastic`] — the D/S converter (stochastic number generator)
//!   of Fig. 2g: a binary value is compared against a random source sample each
//!   cycle to emit a bit.
//! * [`StochasticToDigital`] — the S/D converter of Fig. 2f: a counter that
//!   sums the 1s of a stream back into a binary value.
//! * [`AccumulativeParallelCounter`] — the APC of Ting & Hayes used to avoid
//!   precision loss when summing many streams (§II.A).
//! * [`Regenerator`] — the *regeneration* correlation-reset technique
//!   (S/D followed by D/S with a fresh source, §II.B), the expensive baseline
//!   our synchronizer competes against in Table IV.
//!
//! # Example
//!
//! ```
//! use sc_convert::DigitalToStochastic;
//! use sc_rng::VanDerCorput;
//! use sc_bitstream::Probability;
//!
//! let mut d2s = DigitalToStochastic::new(VanDerCorput::new());
//! let sn = d2s.generate(Probability::new(0.25)?, 256);
//! assert_eq!(sn.value(), 0.25); // low-discrepancy source: exact at N=256
//! # Ok::<(), sc_bitstream::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apc;
pub mod d2s;
pub mod regen;
pub mod s2d;

pub use apc::AccumulativeParallelCounter;
pub use d2s::{DigitalToStochastic, StreamGenerator};
pub use regen::Regenerator;
pub use s2d::StochasticToDigital;
