//! Regeneration: the expensive correlation-reset baseline.
//!
//! Regeneration (§II.B, reference \[10\]) converts a stochastic number back to
//! the binary domain with an S/D converter and immediately re-encodes it with
//! a D/S converter driven by a *fresh* random source. The output stream has
//! the same value but a brand-new bit ordering, so any correlation that had
//! accumulated with other streams is reset. The paper's Table IV shows this
//! works well but costs far more area and energy than inserting synchronizers,
//! because S/D and D/S converters are one to two orders of magnitude larger
//! than SC arithmetic gates.

use crate::d2s::DigitalToStochastic;
use crate::s2d::StochasticToDigital;
use sc_bitstream::{Bitstream, Probability};
use sc_rng::RandomSource;

/// A regeneration unit: S/D conversion followed by D/S conversion with a
/// dedicated source.
///
/// # Example
///
/// ```
/// use sc_convert::Regenerator;
/// use sc_rng::VanDerCorput;
/// use sc_bitstream::{scc, Bitstream};
///
/// // Two maximally correlated streams...
/// let x = Bitstream::parse("1111000010100000")?;
/// let y = x.clone();
/// assert_eq!(scc(&x, &y), 1.0);
///
/// // ...become uncorrelated after regenerating one of them with a fresh source.
/// let mut regen = Regenerator::new(VanDerCorput::new());
/// let y2 = regen.regenerate(&y);
/// assert_eq!(y2.value(), y.value());
/// assert!(scc(&x, &y2).abs() < 0.5);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Regenerator<S> {
    d2s: DigitalToStochastic<S>,
}

impl<S: RandomSource> Regenerator<S> {
    /// Creates a regenerator that re-encodes with the given source.
    #[must_use]
    pub fn new(source: S) -> Self {
        Regenerator {
            d2s: DigitalToStochastic::new(source),
        }
    }

    /// Regenerates a stream: same value (up to quantization of the new source),
    /// fresh bit order.
    #[must_use]
    pub fn regenerate(&mut self, stream: &Bitstream) -> Bitstream {
        let n = stream.len();
        if n == 0 {
            return Bitstream::new();
        }
        let count = StochasticToDigital::convert_to_count(stream);
        self.d2s
            .generate(Probability::from_ratio(count, n as u64), n)
    }

    /// Resets the underlying re-encoding source.
    pub fn reset(&mut self) {
        self.d2s.reset();
    }

    /// Consumes the regenerator, returning the underlying source.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.d2s.into_inner()
    }
}

/// Regenerates a whole set of streams with *mutually independent* sources so
/// that the outputs are pairwise uncorrelated, as a hardware regeneration
/// stage with per-stream RNGs would.
///
/// The `make_source` closure must return a distinct source for each index.
#[must_use]
pub fn regenerate_all<S, F>(streams: &[Bitstream], mut make_source: F) -> Vec<Bitstream>
where
    S: RandomSource,
    F: FnMut(usize) -> S,
{
    streams
        .iter()
        .enumerate()
        .map(|(i, s)| Regenerator::new(make_source(i)).regenerate(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sc_bitstream::scc;
    use sc_rng::{Halton, Lfsr, VanDerCorput};

    #[test]
    fn regeneration_preserves_value_exactly_with_ld_source() {
        let mut regen = Regenerator::new(VanDerCorput::new());
        let s = Bitstream::parse("1110010010110100").unwrap();
        let r = regen.regenerate(&s);
        assert_eq!(r.len(), s.len());
        assert_eq!(r.count_ones(), s.count_ones());
    }

    #[test]
    fn regeneration_decorrelates_identical_streams() {
        // Build a highly structured stream at N = 256.
        let s = Bitstream::from_fn(256, |i| i % 2 == 0);
        let mut regen = Regenerator::new(Halton::new(3));
        let r = regen.regenerate(&s);
        assert_eq!(scc(&s, &s), 1.0);
        assert!(scc(&s, &r).abs() < 0.3, "scc after regen = {}", scc(&s, &r));
        // Halton (base 3) re-encoding over 256 cycles is exact to within a few bits.
        assert!((r.count_ones() as i64 - s.count_ones() as i64).abs() <= 3);
    }

    #[test]
    fn regenerate_all_produces_uncorrelated_set() {
        let base = Bitstream::from_fn(256, |i| i < 128);
        let streams = vec![base.clone(), base.clone(), base.clone()];
        let out = regenerate_all(&streams, |i| Halton::new([3u32, 5, 7][i]));
        for i in 0..out.len() {
            assert!((out[i].count_ones() as i64 - 128).abs() <= 3);
            for j in (i + 1)..out.len() {
                assert!(
                    scc(&out[i], &out[j]).abs() < 0.3,
                    "pair ({i},{j}) scc = {}",
                    scc(&out[i], &out[j])
                );
            }
        }
    }

    #[test]
    fn empty_stream_regenerates_to_empty() {
        let mut regen = Regenerator::new(VanDerCorput::new());
        let r = regen.regenerate(&Bitstream::new());
        assert!(r.is_empty());
    }

    #[test]
    fn reset_and_into_inner() {
        let mut regen = Regenerator::new(VanDerCorput::new());
        let s = Bitstream::from_fn(64, |i| i < 32);
        let a = regen.regenerate(&s);
        regen.reset();
        let b = regen.regenerate(&s);
        assert_eq!(a, b);
        let _src = regen.into_inner();
    }

    proptest! {
        #[test]
        fn prop_regeneration_value_error_at_most_one_bit(bits in proptest::collection::vec(any::<bool>(), 16..300)) {
            let s = Bitstream::from_bools(bits);
            let mut regen = Regenerator::new(VanDerCorput::new());
            let r = regen.regenerate(&s);
            prop_assert_eq!(r.len(), s.len());
            // VDC discrepancy over an arbitrary window of N samples is O(log N / N).
            let bound = (s.len().ilog2() as f64 + 2.0) / s.len() as f64;
            prop_assert!((r.value() - s.value()).abs() <= bound);
        }

        #[test]
        fn prop_regeneration_with_lfsr_value_close(bits in proptest::collection::vec(any::<bool>(), 64..300)) {
            let s = Bitstream::from_bools(bits);
            let mut regen = Regenerator::new(Lfsr::new(16, 0xACE1));
            let r = regen.regenerate(&s);
            prop_assert!((r.value() - s.value()).abs() < 0.15);
        }
    }
}
