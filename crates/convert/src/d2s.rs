//! Digital-to-stochastic (D/S) conversion — the stochastic number generator.
//!
//! The D/S converter of Fig. 2g compares a binary target value `x ∈ [0, N]`
//! against a fresh sample `r` of a random source every cycle and emits a 1
//! whenever `x > r`. Over `N` cycles the emitted stream encodes `x / N`.
//!
//! Correlation between generated streams is controlled by the choice of
//! sources: streams generated from the *same* source instance are maximally
//! positively correlated; streams generated from independent (or
//! low-discrepancy, different-base) sources are close to uncorrelated.

use sc_bitstream::{Bitstream, Probability};
use sc_rng::{RandomSource, RngKind};

/// A digital-to-stochastic converter wrapping a random source.
///
/// # Example
///
/// ```
/// use sc_convert::DigitalToStochastic;
/// use sc_rng::{Halton, VanDerCorput};
/// use sc_bitstream::{scc, Probability};
///
/// // Streams generated from different low-discrepancy bases are uncorrelated.
/// let mut gx = DigitalToStochastic::new(VanDerCorput::new());
/// let mut gy = DigitalToStochastic::new(Halton::new(3));
/// let x = gx.generate(Probability::new(0.5)?, 256);
/// let y = gy.generate(Probability::new(0.75)?, 256);
/// assert!(scc(&x, &y).abs() < 0.15);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DigitalToStochastic<S> {
    source: S,
}

impl<S: RandomSource> DigitalToStochastic<S> {
    /// Creates a converter around the given source.
    #[must_use]
    pub fn new(source: S) -> Self {
        DigitalToStochastic { source }
    }

    /// Returns a reference to the underlying source.
    #[must_use]
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Consumes the converter and returns the underlying source.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.source
    }

    /// The family of the wrapped source.
    #[must_use]
    pub fn kind(&self) -> RngKind {
        self.source.kind()
    }

    /// Resets the underlying source to its initial state.
    pub fn reset(&mut self) {
        self.source.reset();
    }

    /// Generates a length-`n` stochastic number encoding `p`.
    ///
    /// The stream's exact value is `p` quantized to the grid `{0/n, …, n/n}`
    /// only when the source is a full-period low-discrepancy sequence; with an
    /// LFSR the value fluctuates around `p` as in real hardware.
    ///
    /// Generation is batched a word at a time: `Bitstream::from_fn` packs the
    /// 64 comparator bits in a register before each store into the stream.
    #[must_use]
    pub fn generate(&mut self, p: Probability, n: usize) -> Bitstream {
        let target = p.get();
        Bitstream::from_fn(n, |_| target > self.source.next_unit())
    }

    /// Generates a length-`n` stream for the binary value `x` out of `max`
    /// (i.e. the probability `x / max`), mirroring the hardware comparator
    /// interface of Fig. 2g.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0` or `x > max`.
    #[must_use]
    pub fn generate_binary(&mut self, x: u64, max: u64, n: usize) -> Bitstream {
        assert!(max > 0, "binary range must be non-zero");
        assert!(x <= max, "binary value {x} exceeds range {max}");
        self.generate(Probability::from_ratio(x, max), n)
    }

    /// Generates two streams from the *same* source samples, producing a
    /// maximally positively correlated pair — the "shared RNG" technique of
    /// §II.B. Both streams are assembled a packed word at a time.
    #[must_use]
    pub fn generate_correlated_pair(
        &mut self,
        px: Probability,
        py: Probability,
        n: usize,
    ) -> (Bitstream, Bitstream) {
        let words = n.div_ceil(sc_bitstream::WORD_BITS);
        let mut x_words = Vec::with_capacity(words);
        let mut y_words = Vec::with_capacity(words);
        let mut remaining = n;
        while remaining > 0 {
            let valid = remaining.min(sc_bitstream::WORD_BITS);
            let (mut xw, mut yw) = (0u64, 0u64);
            for i in 0..valid {
                let r = self.source.next_unit();
                xw |= u64::from(px.get() > r) << i;
                yw |= u64::from(py.get() > r) << i;
            }
            x_words.push(xw);
            y_words.push(yw);
            remaining -= valid;
        }
        (
            Bitstream::from_words(x_words, n),
            Bitstream::from_words(y_words, n),
        )
    }
}

/// Convenience generator owning a boxed source, used by experiment harnesses
/// that select the source family at run time (Table II rows).
pub struct StreamGenerator {
    inner: DigitalToStochastic<Box<dyn RandomSource>>,
    label: String,
}

impl std::fmt::Debug for StreamGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamGenerator")
            .field("label", &self.label)
            .finish()
    }
}

impl StreamGenerator {
    /// Creates a generator from any boxed source.
    #[must_use]
    pub fn new(source: Box<dyn RandomSource>) -> Self {
        let label = source.label();
        StreamGenerator {
            inner: DigitalToStochastic::new(source),
            label,
        }
    }

    /// Creates a generator for a source family with the default configuration.
    #[must_use]
    pub fn of_kind(kind: RngKind) -> Self {
        Self::new(sc_rng::build_source(kind))
    }

    /// Creates a generator for the `variant`-th member of a source family.
    #[must_use]
    pub fn of_kind_variant(kind: RngKind, variant: usize) -> Self {
        Self::new(sc_rng::build_source_variant(kind, variant))
    }

    /// Short label of the wrapped source (e.g. `"Halton-3"`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Generates a length-`n` stream encoding `p`.
    #[must_use]
    pub fn generate(&mut self, p: Probability, n: usize) -> Bitstream {
        self.inner.generate(p, n)
    }

    /// Generates a maximally positively correlated pair from shared samples.
    #[must_use]
    pub fn generate_correlated_pair(
        &mut self,
        px: Probability,
        py: Probability,
        n: usize,
    ) -> (Bitstream, Bitstream) {
        self.inner.generate_correlated_pair(px, py, n)
    }

    /// Resets the underlying source.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sc_bitstream::scc;
    use sc_rng::{CounterSource, Halton, Lfsr, Sobol, VanDerCorput};

    #[test]
    fn vdc_generation_is_exact_at_power_of_two_lengths() {
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        for k in 0..=16u64 {
            g.reset();
            let p = Probability::from_ratio(k, 16);
            let s = g.generate(p, 256);
            assert!(
                (s.value() - p.get()).abs() < 1e-12,
                "k={k}: got {} expected {}",
                s.value(),
                p.get()
            );
        }
    }

    #[test]
    fn counter_generation_is_exact_and_bunched() {
        let mut g = DigitalToStochastic::new(CounterSource::new(256));
        let s = g.generate(Probability::new(0.25).unwrap(), 256);
        assert_eq!(s.count_ones(), 64);
    }

    #[test]
    fn lfsr_generation_is_close() {
        let mut g = DigitalToStochastic::new(Lfsr::new(16, 0xACE1));
        let s = g.generate(Probability::new(0.7).unwrap(), 1024);
        assert!((s.value() - 0.7).abs() < 0.05);
    }

    #[test]
    fn sobol_generation_is_accurate() {
        let mut g = DigitalToStochastic::new(Sobol::new(2));
        let s = g.generate(Probability::new(0.3).unwrap(), 256);
        assert!((s.value() - 0.3).abs() < 0.02);
    }

    #[test]
    fn shared_source_pair_is_positively_correlated() {
        let mut g = DigitalToStochastic::new(Lfsr::new(16, 0xACE1));
        let (x, y) = g.generate_correlated_pair(
            Probability::new(0.5).unwrap(),
            Probability::new(0.75).unwrap(),
            256,
        );
        assert!(scc(&x, &y) > 0.95, "scc = {}", scc(&x, &y));
        // Correlated-pair AND realises min (Table I).
        assert!((x.and(&y).value() - 0.5).abs() < 0.05);
    }

    #[test]
    fn independent_sources_are_uncorrelated() {
        let mut gx = DigitalToStochastic::new(VanDerCorput::new());
        let mut gy = DigitalToStochastic::new(Halton::new(3));
        let x = gx.generate(Probability::new(0.5).unwrap(), 256);
        let y = gy.generate(Probability::new(0.75).unwrap(), 256);
        assert!(scc(&x, &y).abs() < 0.15, "scc = {}", scc(&x, &y));
        // Uncorrelated AND realises the product (Table I).
        assert!((x.and(&y).value() - 0.375).abs() < 0.05);
    }

    #[test]
    fn generate_binary_matches_probability() {
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        let s = g.generate_binary(64, 256, 256);
        assert!((s.value() - 0.25).abs() < 1e-12);
        assert_eq!(g.kind(), sc_rng::RngKind::VanDerCorput);
    }

    #[test]
    #[should_panic(expected = "exceeds range")]
    fn generate_binary_rejects_overflow() {
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        let _ = g.generate_binary(300, 256, 256);
    }

    #[test]
    fn stream_generator_by_kind() {
        use sc_rng::RngKind;
        for kind in [
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            RngKind::Halton,
            RngKind::Sobol,
            RngKind::Counter,
        ] {
            let mut g = StreamGenerator::of_kind(kind);
            let s = g.generate(Probability::new(0.5).unwrap(), 256);
            assert!((s.value() - 0.5).abs() < 0.1, "{kind:?}");
            assert!(!g.label().is_empty());
            g.reset();
        }
    }

    #[test]
    fn extreme_probabilities_give_constant_streams() {
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        let zeros = g.generate(Probability::ZERO, 128);
        assert_eq!(zeros.count_ones(), 0);
        g.reset();
        let ones = g.generate(Probability::ONE, 128);
        assert_eq!(ones.count_ones(), 128);
    }

    #[test]
    fn into_inner_returns_source() {
        let g = DigitalToStochastic::new(VanDerCorput::new());
        assert_eq!(g.source().index(), 1);
        let src = g.into_inner();
        assert_eq!(src.index(), 1);
    }

    proptest! {
        #[test]
        fn prop_vdc_value_error_bounded(k in 0u64..=256) {
            let mut g = DigitalToStochastic::new(VanDerCorput::new());
            let p = Probability::from_ratio(k, 256);
            let s = g.generate(p, 256);
            // Low-discrepancy generation error is at most one bit.
            prop_assert!((s.value() - p.get()).abs() <= 1.5 / 256.0);
        }

        #[test]
        fn prop_correlated_pair_preserves_values(
            px in 0u64..=64, py in 0u64..=64
        ) {
            let mut g = DigitalToStochastic::new(CounterSource::new(64));
            let (x, y) = g.generate_correlated_pair(
                Probability::from_ratio(px, 64),
                Probability::from_ratio(py, 64),
                64,
            );
            prop_assert_eq!(x.count_ones() as u64, px);
            prop_assert_eq!(y.count_ones() as u64, py);
            if px > 0 && py > 0 && px < 64 && py < 64 {
                prop_assert_eq!(scc(&x, &y), 1.0);
            }
        }
    }
}
