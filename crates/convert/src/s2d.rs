//! Stochastic-to-digital (S/D) conversion.
//!
//! The S/D converter of Fig. 2f is a counter that sums the bits of a
//! stochastic number; after `N` cycles the counter holds the binary value
//! `B = pX · N`. In hardware it is one of the dominant overheads of SC
//! (one to two orders of magnitude larger than the arithmetic gates), which is
//! the economic argument for correlation manipulating circuits over
//! regeneration.

use sc_bitstream::{Bitstream, Probability};

/// A stochastic-to-digital converter (bit counter).
///
/// The converter can be used in one shot via [`StochasticToDigital::convert`]
/// or incrementally via [`StochasticToDigital::push`]/[`StochasticToDigital::count`]
/// to mirror the cycle-by-cycle hardware behaviour.
///
/// # Example
///
/// ```
/// use sc_convert::StochasticToDigital;
/// use sc_bitstream::Bitstream;
///
/// let sn = Bitstream::parse("01100001")?;
/// let value = StochasticToDigital::convert(&sn);
/// assert_eq!(value.get(), 3.0 / 8.0);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct StochasticToDigital {
    count: u64,
    cycles: u64,
}

impl StochasticToDigital {
    /// Creates an empty (zeroed) counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts a whole stream in one shot.
    #[must_use]
    pub fn convert(stream: &Bitstream) -> Probability {
        stream.probability()
    }

    /// Converts a whole stream to the binary count of 1s (the register value `B`).
    #[must_use]
    pub fn convert_to_count(stream: &Bitstream) -> u64 {
        stream.count_ones() as u64
    }

    /// Clocks one bit into the counter.
    pub fn push(&mut self, bit: bool) {
        self.cycles += 1;
        if bit {
            self.count += 1;
        }
    }

    /// Number of 1s accumulated so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of cycles observed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current value estimate (`count / cycles`), 0 before any cycle.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.count as f64 / self.cycles as f64
        }
    }

    /// Clears the counter.
    pub fn reset(&mut self) {
        self.count = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_shot_conversion_matches_value() {
        let s = Bitstream::parse("11110000").unwrap();
        assert_eq!(StochasticToDigital::convert(&s).get(), 0.5);
        assert_eq!(StochasticToDigital::convert_to_count(&s), 4);
    }

    #[test]
    fn incremental_conversion_matches_one_shot() {
        let s = Bitstream::parse("1011001110").unwrap();
        let mut c = StochasticToDigital::new();
        for b in s.iter() {
            c.push(b);
        }
        assert_eq!(c.count(), s.count_ones() as u64);
        assert_eq!(c.cycles(), s.len() as u64);
        assert!((c.value() - s.value()).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = StochasticToDigital::new();
        c.push(true);
        c.push(false);
        c.reset();
        assert_eq!(c.count(), 0);
        assert_eq!(c.cycles(), 0);
        assert_eq!(c.value(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_incremental_equals_batch(bits in proptest::collection::vec(any::<bool>(), 1..500)) {
            let s = Bitstream::from_bools(bits);
            let mut c = StochasticToDigital::new();
            for b in s.iter() {
                c.push(b);
            }
            prop_assert!((c.value() - StochasticToDigital::convert(&s).get()).abs() < 1e-12);
        }
    }
}
