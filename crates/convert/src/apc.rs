//! Accumulative parallel counter (APC).
//!
//! SC addition forces the output precision to equal the input precision,
//! dropping the least significant bit of the true sum (§II.A). The APC of
//! Ting & Hayes avoids this by adding the bits of many parallel streams into a
//! binary accumulator each cycle: the result is a *binary* value with full
//! precision, at the cost of leaving the stochastic domain.

use sc_bitstream::{Bitstream, Error, Result};

/// An accumulative parallel counter summing `k` parallel stochastic inputs.
///
/// # Example
///
/// ```
/// use sc_convert::AccumulativeParallelCounter;
/// use sc_bitstream::Bitstream;
///
/// let a = Bitstream::parse("1100")?;
/// let b = Bitstream::parse("1110")?;
/// let c = Bitstream::parse("1000")?;
/// let mut apc = AccumulativeParallelCounter::new(3);
/// apc.accumulate_streams(&[a, b, c])?;
/// // Total ones = 2 + 3 + 1 = 6 over 4 cycles: unscaled sum of values = 1.5.
/// assert_eq!(apc.total(), 6);
/// assert!((apc.sum_of_values() - 1.5).abs() < 1e-12);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccumulativeParallelCounter {
    inputs: usize,
    total: u64,
    cycles: u64,
}

impl AccumulativeParallelCounter {
    /// Creates an APC with `inputs` parallel input lanes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0`.
    #[must_use]
    pub fn new(inputs: usize) -> Self {
        assert!(inputs > 0, "APC needs at least one input lane");
        AccumulativeParallelCounter {
            inputs,
            total: 0,
            cycles: 0,
        }
    }

    /// Number of parallel input lanes.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Clocks one cycle: `bits` holds one bit per input lane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if `bits.len()` differs from the lane count.
    pub fn push_cycle(&mut self, bits: &[bool]) -> Result<()> {
        if bits.len() != self.inputs {
            return Err(Error::LengthMismatch {
                left: bits.len(),
                right: self.inputs,
            });
        }
        self.total += bits.iter().filter(|&&b| b).count() as u64;
        self.cycles += 1;
        Ok(())
    }

    /// Accumulates entire equal-length streams, one per lane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the stream count differs from the
    /// lane count or the streams have different lengths.
    pub fn accumulate_streams(&mut self, streams: &[Bitstream]) -> Result<()> {
        if streams.len() != self.inputs {
            return Err(Error::LengthMismatch {
                left: streams.len(),
                right: self.inputs,
            });
        }
        let n = streams[0].len();
        for s in streams {
            if s.len() != n {
                return Err(Error::LengthMismatch {
                    left: s.len(),
                    right: n,
                });
            }
        }
        for s in streams {
            self.total += s.count_ones() as u64;
        }
        self.cycles += n as u64;
        Ok(())
    }

    /// Raw accumulator value (total number of 1s seen across all lanes).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of cycles observed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The *unscaled* sum of the input values, `Σ pᵢ = total / cycles`.
    ///
    /// Unlike the MUX adder there is no `1/k` scale factor, so no precision is
    /// lost. Returns 0 before any cycle.
    #[must_use]
    pub fn sum_of_values(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total as f64 / self.cycles as f64
        }
    }

    /// The scaled mean of the input values, `Σ pᵢ / k`, comparable to the MUX
    /// adder output.
    #[must_use]
    pub fn mean_of_values(&self) -> f64 {
        self.sum_of_values() / self.inputs as f64
    }

    /// Clears the accumulator.
    pub fn reset(&mut self) {
        self.total = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn apc_sums_exactly() {
        let a = Bitstream::parse("10101010").unwrap(); // 0.5
        let b = Bitstream::parse("11111100").unwrap(); // 0.75
        let mut apc = AccumulativeParallelCounter::new(2);
        apc.accumulate_streams(&[a, b]).unwrap();
        assert!((apc.sum_of_values() - 1.25).abs() < 1e-12);
        assert!((apc.mean_of_values() - 0.625).abs() < 1e-12);
        assert_eq!(apc.inputs(), 2);
        assert_eq!(apc.cycles(), 8);
    }

    #[test]
    fn apc_preserves_sub_lsb_precision() {
        // Two length-8 streams each encoding 1/8: the MUX adder output (1/8 + 1/8)/2
        // = 1/8 would be representable, but 1/8 + 3/8 = 0.5 exceeds what a
        // *scaled* adder can represent without dropping the LSB when the
        // operands are 1/8 and 2/8: (1/8 + 2/8)/2 = 3/16 is NOT on the 1/8 grid.
        let a = Bitstream::parse("10000000").unwrap(); // 1/8
        let b = Bitstream::parse("11000000").unwrap(); // 2/8
        let mut apc = AccumulativeParallelCounter::new(2);
        apc.accumulate_streams(&[a, b]).unwrap();
        // The APC keeps the exact sum 3/8 (and mean 3/16).
        assert!((apc.sum_of_values() - 0.375).abs() < 1e-12);
        assert!((apc.mean_of_values() - 0.1875).abs() < 1e-12);
    }

    #[test]
    fn push_cycle_interface() {
        let mut apc = AccumulativeParallelCounter::new(3);
        apc.push_cycle(&[true, false, true]).unwrap();
        apc.push_cycle(&[false, false, false]).unwrap();
        assert_eq!(apc.total(), 2);
        assert_eq!(apc.cycles(), 2);
        assert!(apc.push_cycle(&[true]).is_err());
        apc.reset();
        assert_eq!(apc.total(), 0);
        assert_eq!(apc.sum_of_values(), 0.0);
    }

    #[test]
    fn mismatched_stream_sets_rejected() {
        let a = Bitstream::parse("1010").unwrap();
        let b = Bitstream::parse("10100").unwrap();
        let mut apc = AccumulativeParallelCounter::new(2);
        assert!(apc.accumulate_streams(std::slice::from_ref(&a)).is_err());
        assert!(apc.accumulate_streams(&[a, b]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_lanes_panics() {
        let _ = AccumulativeParallelCounter::new(0);
    }

    proptest! {
        #[test]
        fn prop_apc_total_equals_sum_of_ones(
            streams in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 64), 1..6)
        ) {
            let lanes = streams.len();
            let bs: Vec<Bitstream> = streams.into_iter().map(Bitstream::from_bools).collect();
            let expect: u64 = bs.iter().map(|s| s.count_ones() as u64).sum();
            let mut apc = AccumulativeParallelCounter::new(lanes);
            apc.accumulate_streams(&bs).unwrap();
            prop_assert_eq!(apc.total(), expect);
        }
    }
}
