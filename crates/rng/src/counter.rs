//! Deterministic ramp-counter source.
//!
//! A counter that sweeps `0/n, 1/n, …, (n−1)/n` and wraps. Comparing a value
//! against a shared ramp yields *maximally positively correlated* stochastic
//! numbers (all the 1s bunch together), which is useful both as a test fixture
//! and as the cheapest possible "RNG" when positive correlation is desired at
//! generation time (§II.B option 1).

use crate::source::{RandomSource, RngKind};

/// A wrapping ramp counter normalised to `[0, 1)`.
///
/// # Example
///
/// ```
/// use sc_rng::{CounterSource, RandomSource};
///
/// let mut c = CounterSource::new(4);
/// let v: Vec<f64> = (0..5).map(|_| c.next_unit()).collect();
/// assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CounterSource {
    modulus: u64,
    phase: u64,
    state: u64,
}

impl CounterSource {
    /// Creates a counter with the given modulus, starting at 0.
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0`.
    #[must_use]
    pub fn new(modulus: u64) -> Self {
        Self::with_phase(modulus, 0)
    }

    /// Creates a counter starting at `phase % modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0`.
    #[must_use]
    pub fn with_phase(modulus: u64, phase: u64) -> Self {
        assert!(modulus > 0, "counter modulus must be non-zero");
        let phase = phase % modulus;
        CounterSource {
            modulus,
            phase,
            state: phase,
        }
    }

    /// The counter modulus.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.modulus
    }
}

impl RandomSource for CounterSource {
    fn next_unit(&mut self) -> f64 {
        let v = self.state as f64 / self.modulus as f64;
        self.state = (self.state + 1) % self.modulus;
        v
    }

    fn reset(&mut self) {
        self.state = self.phase;
    }

    fn kind(&self) -> RngKind {
        RngKind::Counter
    }

    fn label(&self) -> String {
        format!("Counter-{}", self.modulus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_wraps() {
        let mut c = CounterSource::new(3);
        let v: Vec<f64> = (0..7).map(|_| c.next_unit()).collect();
        assert_eq!(v[0], 0.0);
        assert_eq!(v[3], 0.0);
        assert_eq!(v[6], 0.0);
        assert!((v[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn phase_offsets_start_point() {
        let mut c = CounterSource::with_phase(4, 2);
        assert_eq!(c.next_unit(), 0.5);
        c.reset();
        assert_eq!(c.next_unit(), 0.5);
        assert_eq!(c.modulus(), 4);
        assert_eq!(c.label(), "Counter-4");
        assert_eq!(c.kind(), RngKind::Counter);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_modulus_panics() {
        let _ = CounterSource::new(0);
    }

    #[test]
    fn phase_wraps_modulo() {
        let mut c = CounterSource::with_phase(4, 6);
        assert_eq!(c.next_unit(), 0.5);
    }
}
