//! Declarative source specifications.
//!
//! A [`SourceSpec`] is a plain-data description of a random source — family
//! plus configuration — that can be stored, compared, hashed, and turned into
//! a live [`RandomSource`] with [`SourceSpec::build`]. Higher layers (the
//! `sc_graph` dataflow compiler in particular) attach specs to graph nodes
//! instead of live sources so that:
//!
//! * plans stay `Send + Sync` and can be executed on many threads at once,
//!   each execution building its own deterministic source instances;
//! * two streams' correlation can be *reasoned about structurally*: streams
//!   generated from equal specs share every sample (maximally positively
//!   correlated, the shared-RNG technique of §II.B), while different specs
//!   give (close to) uncorrelated streams;
//! * a node can be placed mid-sequence via [`SourceSpec::build_skipped`],
//!   reproducing the state a shared hardware source would have after serving
//!   earlier consumers.

use crate::{CounterSource, Halton, Lfsr, RandomSource, RngKind, Sobol, VanDerCorput};
use std::fmt;

/// A buildable, comparable description of a [`RandomSource`].
///
/// # Example
///
/// ```
/// use sc_rng::{SourceSpec, RandomSource};
///
/// let spec = SourceSpec::VanDerCorput { offset: 0 };
/// let mut a = spec.build();
/// let mut b = spec.build();
/// // Equal specs build sources that emit identical sample sequences.
/// assert_eq!(a.next_unit(), b.next_unit());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SourceSpec {
    /// A Fibonacci LFSR of the given register width and seed.
    Lfsr {
        /// Register width in bits.
        width: u32,
        /// Non-zero initial state.
        seed: u64,
    },
    /// The base-2 Van der Corput sequence, starting `offset` samples in.
    VanDerCorput {
        /// Number of leading samples to skip at construction.
        offset: u64,
    },
    /// A Halton (generalised Van der Corput) sequence.
    Halton {
        /// Radix of the digit reversal (usually a prime).
        base: u32,
        /// Number of leading samples to skip at construction.
        offset: u64,
    },
    /// A Sobol sequence dimension.
    Sobol {
        /// Sobol dimension index (1-based, as in `Sobol::new`).
        dimension: u32,
    },
    /// A deterministic ramp counter.
    Counter {
        /// Counter modulus (period).
        modulus: u64,
        /// Initial phase.
        phase: u64,
    },
}

impl SourceSpec {
    /// The spec of the default source of a family, mirroring
    /// [`crate::build_source`].
    #[must_use]
    pub fn default_of(kind: RngKind) -> Self {
        match kind {
            RngKind::Lfsr => SourceSpec::Lfsr {
                width: 16,
                seed: 0xACE1,
            },
            RngKind::VanDerCorput => SourceSpec::VanDerCorput { offset: 0 },
            RngKind::Halton => SourceSpec::Halton { base: 3, offset: 0 },
            RngKind::Sobol => SourceSpec::Sobol { dimension: 1 },
            RngKind::Counter => SourceSpec::Counter {
                modulus: 256,
                phase: 0,
            },
        }
    }

    /// The family this spec describes.
    #[must_use]
    pub fn kind(&self) -> RngKind {
        match self {
            SourceSpec::Lfsr { .. } => RngKind::Lfsr,
            SourceSpec::VanDerCorput { .. } => RngKind::VanDerCorput,
            SourceSpec::Halton { .. } => RngKind::Halton,
            SourceSpec::Sobol { .. } => RngKind::Sobol,
            SourceSpec::Counter { .. } => RngKind::Counter,
        }
    }

    /// Builds a fresh source in the spec's initial state.
    #[must_use]
    pub fn build(&self) -> Box<dyn RandomSource> {
        match *self {
            SourceSpec::Lfsr { width, seed } => Box::new(Lfsr::new(width, seed)),
            SourceSpec::VanDerCorput { offset } => {
                if offset == 0 {
                    Box::new(VanDerCorput::new())
                } else {
                    Box::new(VanDerCorput::with_offset(offset))
                }
            }
            SourceSpec::Halton { base, offset } => {
                if offset == 0 {
                    Box::new(Halton::new(base))
                } else {
                    Box::new(Halton::with_offset(base, offset))
                }
            }
            SourceSpec::Sobol { dimension } => Box::new(Sobol::new(dimension)),
            SourceSpec::Counter { modulus, phase } => {
                if phase == 0 {
                    Box::new(CounterSource::new(modulus))
                } else {
                    Box::new(CounterSource::with_phase(modulus, phase))
                }
            }
        }
    }

    /// Gate-model parameters of the hardware generator this spec describes,
    /// used by the RTL lowering backend to size state registers and emit
    /// Verilog parameters, and by the structural cost bridge.
    #[must_use]
    pub fn gate_model(&self) -> SourceGateModel {
        match *self {
            SourceSpec::Lfsr { width, .. } => SourceGateModel {
                state_bits: width,
                sequential: true,
            },
            // A base-2 Van der Corput generator is a bit-reversed counter;
            // Halton generalises it to digit reversal in another radix. Both
            // are modelled at the default 16-bit hardware resolution.
            SourceSpec::VanDerCorput { .. } | SourceSpec::Halton { .. } => SourceGateModel {
                state_bits: 16,
                sequential: true,
            },
            // A Sobol generator keeps the previous sample and a direction
            // vector bank; 32 state bits is the usual hardware configuration.
            SourceSpec::Sobol { .. } => SourceGateModel {
                state_bits: 32,
                sequential: true,
            },
            SourceSpec::Counter { modulus, .. } => SourceGateModel {
                state_bits: (64 - modulus.saturating_sub(1).leading_zeros()).max(1),
                sequential: true,
            },
        }
    }

    /// Builds a fresh source and advances it by `skip` samples, reproducing
    /// the state a shared source instance would have after `skip` earlier
    /// draws by other consumers.
    ///
    /// Index-addressable families (Van der Corput, Halton, counters) jump to
    /// the skipped position in O(1) via their offset/phase constructors;
    /// state-iterated families (LFSR, Sobol) step sample by sample.
    #[must_use]
    pub fn build_skipped(&self, skip: u64) -> Box<dyn RandomSource> {
        match *self {
            SourceSpec::VanDerCorput { offset } => {
                return SourceSpec::VanDerCorput {
                    offset: offset + skip,
                }
                .build()
            }
            SourceSpec::Halton { base, offset } => {
                return SourceSpec::Halton {
                    base,
                    offset: offset + skip,
                }
                .build()
            }
            SourceSpec::Counter { modulus, phase } => {
                return SourceSpec::Counter {
                    modulus,
                    phase: (phase + (skip % modulus)) % modulus,
                }
                .build()
            }
            _ => {}
        }
        let mut source = self.build();
        source.skip_ahead(skip);
        source
    }
}

/// Hardware parameters of the gate-level generator behind a [`SourceSpec`]
/// (see [`SourceSpec::gate_model`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceGateModel {
    /// Number of sequential state bits (register width) of the generator.
    pub state_bits: u32,
    /// Whether the generator holds clocked state (all current families do).
    pub sequential: bool,
}

impl fmt::Display for SourceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SourceSpec::Lfsr { width, seed } => write!(f, "LFSR{width}(seed={seed:#x})"),
            SourceSpec::VanDerCorput { offset } => write!(f, "VDC(+{offset})"),
            SourceSpec::Halton { base, offset } => write!(f, "Halton-{base}(+{offset})"),
            SourceSpec::Sobol { dimension } => write!(f, "Sobol-{dimension}"),
            SourceSpec::Counter { modulus, phase } => write!(f, "Counter{modulus}(+{phase})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceExt;

    #[test]
    fn equal_specs_build_identical_sources() {
        let specs = [
            SourceSpec::Lfsr {
                width: 16,
                seed: 0xACE1,
            },
            SourceSpec::VanDerCorput { offset: 3 },
            SourceSpec::Halton { base: 5, offset: 0 },
            SourceSpec::Sobol { dimension: 4 },
            SourceSpec::Counter {
                modulus: 64,
                phase: 7,
            },
        ];
        for spec in &specs {
            let a: Vec<f64> = spec.build().take_units(32);
            let b: Vec<f64> = spec.build().take_units(32);
            assert_eq!(a, b, "{spec}");
        }
    }

    #[test]
    fn default_of_matches_build_source() {
        for kind in [
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            RngKind::Halton,
            RngKind::Sobol,
            RngKind::Counter,
        ] {
            let mut from_spec = SourceSpec::default_of(kind).build();
            let mut from_builder = crate::build_source(kind);
            assert_eq!(
                from_spec.take_units(16),
                from_builder.take_units(16),
                "{kind:?}"
            );
            assert_eq!(SourceSpec::default_of(kind).kind(), kind);
        }
    }

    #[test]
    fn build_skipped_matches_manual_skip() {
        // Covers both the O(1) jump families (VDC, Halton, counter) and the
        // sample-stepped families (LFSR, Sobol).
        let specs = [
            SourceSpec::Lfsr {
                width: 16,
                seed: 0xBEEF,
            },
            SourceSpec::Sobol { dimension: 3 },
            SourceSpec::VanDerCorput { offset: 5 },
            SourceSpec::Halton { base: 7, offset: 2 },
            SourceSpec::Counter {
                modulus: 100,
                phase: 11,
            },
        ];
        for spec in &specs {
            for skip in [0u64, 1, 99, 100, 257] {
                let mut manual = spec.build();
                for _ in 0..skip {
                    manual.next_unit();
                }
                let mut skipped = spec.build_skipped(skip);
                assert_eq!(
                    manual.take_units(8),
                    skipped.take_units(8),
                    "{spec} skip={skip}"
                );
            }
        }
    }

    #[test]
    fn gate_models_cover_families() {
        assert_eq!(
            SourceSpec::Lfsr {
                width: 16,
                seed: 0xACE1
            }
            .gate_model()
            .state_bits,
            16
        );
        assert_eq!(
            SourceSpec::VanDerCorput { offset: 0 }
                .gate_model()
                .state_bits,
            16
        );
        assert_eq!(
            SourceSpec::Sobol { dimension: 1 }.gate_model().state_bits,
            32
        );
        assert_eq!(
            SourceSpec::Counter {
                modulus: 256,
                phase: 0
            }
            .gate_model()
            .state_bits,
            8
        );
        assert_eq!(
            SourceSpec::Counter {
                modulus: 1,
                phase: 0
            }
            .gate_model()
            .state_bits,
            1
        );
        assert!(
            SourceSpec::Halton { base: 3, offset: 0 }
                .gate_model()
                .sequential
        );
    }

    #[test]
    fn display_labels() {
        assert!(SourceSpec::Sobol { dimension: 2 }
            .to_string()
            .contains("Sobol-2"));
        assert!(SourceSpec::Halton { base: 7, offset: 1 }
            .to_string()
            .contains("Halton-7"));
    }
}
