//! # sc-rng
//!
//! Random and low-discrepancy number sources used to generate stochastic
//! numbers (SNs) for the reproduction of *"Correlation Manipulating Circuits
//! for Stochastic Computing"* (DATE 2018).
//!
//! The paper's experiments draw stochastic numbers from four source families
//! (§II.B, Table II):
//!
//! * [`Lfsr`] — linear feedback shift registers, the classic compact SC source,
//! * [`VanDerCorput`] — the base-2 Van der Corput low-discrepancy sequence,
//! * [`Halton`] — Van der Corput sequences in arbitrary (usually prime) bases,
//! * [`Sobol`] — Sobol sequences (Liu & Han, DATE 2017).
//!
//! All sources implement [`RandomSource`], which yields values in `[0, 1)`.
//! A digital-to-stochastic converter compares the target value against these
//! samples to emit bits (see the `sc-convert` crate).
//!
//! # Example
//!
//! ```
//! use sc_rng::{RandomSource, VanDerCorput, Halton};
//!
//! let mut vdc = VanDerCorput::new();
//! let mut halton = Halton::new(3);
//! // Low-discrepancy sources fill the unit interval evenly.
//! let a: Vec<f64> = (0..4).map(|_| vdc.next_unit()).collect();
//! assert_eq!(a, vec![0.5, 0.25, 0.75, 0.125]);
//! let b: f64 = halton.next_unit();
//! assert!((0.0..1.0).contains(&b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod halton;
pub mod lfsr;
pub mod sobol;
pub mod source;
pub mod spec;
pub mod vandercorput;

pub use counter::CounterSource;
pub use halton::Halton;
pub use lfsr::{Lfsr, LfsrStructure};
pub use sobol::Sobol;
pub use source::{RandomSource, RngKind, SourceExt};
pub use spec::{SourceGateModel, SourceSpec};
pub use vandercorput::VanDerCorput;

/// Constructs a boxed source of the requested kind with sensible defaults,
/// matching the configurations used in the paper's Table II.
///
/// * [`RngKind::Lfsr`] — 16-bit Fibonacci LFSR, seed `0xACE1`,
/// * [`RngKind::VanDerCorput`] — base-2 Van der Corput,
/// * [`RngKind::Halton`] — Halton base 3,
/// * [`RngKind::Sobol`] — Sobol dimension 1,
/// * [`RngKind::Counter`] — 256-state ramp counter.
///
/// # Example
///
/// ```
/// use sc_rng::{build_source, RngKind};
///
/// let mut src = build_source(RngKind::Halton);
/// assert!(src.next_unit() < 1.0);
/// ```
#[must_use]
pub fn build_source(kind: RngKind) -> Box<dyn RandomSource> {
    match kind {
        RngKind::Lfsr => Box::new(Lfsr::new(16, 0xACE1)),
        RngKind::VanDerCorput => Box::new(VanDerCorput::new()),
        RngKind::Halton => Box::new(Halton::new(3)),
        RngKind::Sobol => Box::new(Sobol::new(1)),
        RngKind::Counter => Box::new(CounterSource::new(256)),
    }
}

/// Constructs a boxed source of the requested kind with a variant index, so
/// that several *mutually uncorrelated* sources of the same family can be
/// instantiated (different LFSR seeds, phase-shifted Van der Corput sequences,
/// different Halton bases, different Sobol dimensions, phase-shifted counters).
///
/// Variant 0 is identical to [`build_source`].
#[must_use]
pub fn build_source_variant(kind: RngKind, variant: usize) -> Box<dyn RandomSource> {
    match kind {
        RngKind::Lfsr => {
            let seeds = [0xACE1u64, 0xBEEF, 0x1D0D, 0x7331, 0x42A7, 0x9D2C];
            Box::new(Lfsr::new(16, seeds[variant % seeds.len()]))
        }
        RngKind::VanDerCorput => {
            if variant == 0 {
                Box::new(VanDerCorput::new())
            } else {
                Box::new(VanDerCorput::with_offset(variant as u64 * 7919))
            }
        }
        RngKind::Halton => {
            let bases = [3u32, 5, 7, 11, 13, 17, 19, 23];
            Box::new(Halton::new(bases[variant % bases.len()]))
        }
        RngKind::Sobol => Box::new(Sobol::new(variant as u32 + 1)),
        RngKind::Counter => {
            if variant == 0 {
                Box::new(CounterSource::new(256))
            } else {
                Box::new(CounterSource::with_phase(256, (variant * 61) as u64))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_source_covers_all_kinds() {
        for kind in [
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            RngKind::Halton,
            RngKind::Sobol,
            RngKind::Counter,
        ] {
            let mut src = build_source(kind);
            for _ in 0..100 {
                let v = src.next_unit();
                assert!((0.0..1.0).contains(&v), "{kind:?} produced {v}");
            }
        }
    }

    #[test]
    fn variants_differ() {
        for kind in [
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            RngKind::Halton,
            RngKind::Sobol,
            RngKind::Counter,
        ] {
            let mut a = build_source_variant(kind, 0);
            let mut b = build_source_variant(kind, 1);
            let seq_a: Vec<f64> = (0..32).map(|_| a.next_unit()).collect();
            let seq_b: Vec<f64> = (0..32).map(|_| b.next_unit()).collect();
            assert_ne!(seq_a, seq_b, "{kind:?} variants should differ");
        }
    }

    #[test]
    fn variant_zero_matches_default() {
        for kind in [
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            RngKind::Halton,
            RngKind::Sobol,
            RngKind::Counter,
        ] {
            let mut a = build_source(kind);
            let mut b = build_source_variant(kind, 0);
            let seq_a: Vec<f64> = (0..32).map(|_| a.next_unit()).collect();
            let seq_b: Vec<f64> = (0..32).map(|_| b.next_unit()).collect();
            assert_eq!(seq_a, seq_b, "{kind:?} variant 0 should match default");
        }
    }
}
