//! Sobol low-discrepancy sequences.
//!
//! Sobol sequences (used for energy-efficient SC number generation by
//! Liu & Han, DATE 2017 — reference \[8\] of the paper) are digital `(t, s)`
//! sequences in base 2 generated from *direction numbers* derived from
//! primitive polynomials over GF(2). Dimension 1 is the plain Van der Corput
//! sequence; higher dimensions are mutually well-distributed and thus make
//! good independent stochastic-number sources.
//!
//! This implementation uses the Gray-code construction and the classic
//! Joe–Kuo style initial direction numbers for the first eight dimensions,
//! which is ample for the paper's experiments.

use crate::source::{RandomSource, RngKind};

const BITS: u32 = 32;

/// Primitive polynomial descriptors and initial direction numbers for
/// dimensions 2..=8 (dimension 1 needs none). Each entry is
/// `(degree, coefficient bits a, [m_1, m_2, ...])` following Joe & Kuo.
const DIMENSION_DATA: &[(u32, u32, &[u32])] = &[
    (1, 0, &[1]),              // dim 2: x + 1
    (2, 1, &[1, 3]),           // dim 3: x^2 + x + 1
    (3, 1, &[1, 3, 1]),        // dim 4: x^3 + x + 1
    (3, 2, &[1, 1, 1]),        // dim 5: x^3 + x^2 + 1
    (4, 1, &[1, 1, 3, 3]),     // dim 6: x^4 + x + 1
    (4, 4, &[1, 3, 5, 13]),    // dim 7: x^4 + x^3 + 1
    (5, 2, &[1, 1, 5, 5, 17]), // dim 8: x^5 + x^2 + 1
];

/// A one-dimensional slice of the Sobol sequence.
///
/// # Example
///
/// ```
/// use sc_rng::{Sobol, RandomSource};
///
/// // Dimension 1 is the base-2 Van der Corput sequence (in Gray-code order).
/// let mut s = Sobol::new(1);
/// let v = s.next_unit();
/// assert!((0.0..1.0).contains(&v));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sobol {
    dimension: u32,
    directions: Vec<u32>,
    state: u32,
    index: u64,
}

impl Sobol {
    /// Creates the Sobol source for the given dimension (1–8).
    ///
    /// # Panics
    ///
    /// Panics if `dimension` is 0 or greater than 8.
    #[must_use]
    pub fn new(dimension: u32) -> Self {
        assert!(
            (1..=8).contains(&dimension),
            "sobol dimension {dimension} outside supported range 1..=8"
        );
        let directions = Self::direction_numbers(dimension);
        Sobol {
            dimension,
            directions,
            state: 0,
            index: 0,
        }
    }

    /// The dimension index of this source.
    #[must_use]
    pub fn dimension(&self) -> u32 {
        self.dimension
    }

    fn direction_numbers(dimension: u32) -> Vec<u32> {
        let mut v = vec![0u32; BITS as usize];
        if dimension == 1 {
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = 1u32 << (BITS - 1 - i as u32);
            }
            return v;
        }
        let (degree, a, m_init) = DIMENSION_DATA[(dimension - 2) as usize];
        let s = degree as usize;
        let mut m = vec![0u32; BITS as usize];
        m[..s].copy_from_slice(&m_init[..s]);
        for i in s..BITS as usize {
            let mut value = m[i - s] ^ (m[i - s] << degree);
            for k in 1..s {
                let coeff = (a >> (s - 1 - k)) & 1;
                if coeff == 1 {
                    value ^= m[i - k] << k;
                }
            }
            m[i] = value;
        }
        for i in 0..BITS as usize {
            v[i] = m[i] << (BITS - 1 - i as u32);
        }
        v
    }

    /// Advances the sequence and returns the next raw 32-bit Sobol integer.
    pub fn next_raw(&mut self) -> u32 {
        // Gray-code construction: XOR the direction number of the lowest zero
        // bit of the running index.
        let c = (!self.index).trailing_zeros().min(BITS - 1);
        self.state ^= self.directions[c as usize];
        self.index += 1;
        self.state
    }
}

impl RandomSource for Sobol {
    fn next_unit(&mut self) -> f64 {
        self.next_raw() as f64 / (1u64 << BITS) as f64
    }

    fn reset(&mut self) {
        self.state = 0;
        self.index = 0;
    }

    fn kind(&self) -> RngKind {
        RngKind::Sobol
    }

    fn label(&self) -> String {
        format!("Sobol-{}", self.dimension)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn dimension_one_is_dyadic() {
        let mut s = Sobol::new(1);
        let first: Vec<f64> = (0..7).map(|_| s.next_unit()).collect();
        // Gray-code ordered van der Corput values are all distinct dyadics.
        for v in &first {
            assert!((0.0..1.0).contains(v));
            let scaled = v * 16.0;
            assert!((scaled - scaled.round()).abs() < 1e-9 || *v < 1.0);
        }
        let set: HashSet<u64> = first
            .iter()
            .map(|v| (v * (1u64 << 32) as f64) as u64)
            .collect();
        assert_eq!(set.len(), first.len());
    }

    #[test]
    fn sequences_are_equidistributed_in_buckets() {
        for dim in 1..=8u32 {
            let mut s = Sobol::new(dim);
            let n = 256usize;
            let buckets = 16usize;
            let mut counts = vec![0u32; buckets];
            for _ in 0..n {
                let v = s.next_unit();
                counts[(v * buckets as f64) as usize] += 1;
            }
            let expected = (n / buckets) as i64;
            for (b, &c) in counts.iter().enumerate() {
                assert!(
                    (c as i64 - expected).abs() <= expected,
                    "dim {dim} bucket {b} count {c} far from {expected}"
                );
            }
        }
    }

    #[test]
    fn distinct_dimensions_differ() {
        let mut a = Sobol::new(2);
        let mut b = Sobol::new(3);
        let seq_a: Vec<u32> = (0..64).map(|_| a.next_raw()).collect();
        let seq_b: Vec<u32> = (0..64).map(|_| b.next_raw()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn reset_restores_sequence() {
        let mut s = Sobol::new(4);
        let first: Vec<u32> = (0..128).map(|_| s.next_raw()).collect();
        s.reset();
        let second: Vec<u32> = (0..128).map(|_| s.next_raw()).collect();
        assert_eq!(first, second);
        assert_eq!(s.kind(), RngKind::Sobol);
        assert_eq!(s.label(), "Sobol-4");
        assert_eq!(s.dimension(), 4);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn dimension_zero_panics() {
        let _ = Sobol::new(0);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn dimension_nine_panics() {
        let _ = Sobol::new(9);
    }

    #[test]
    fn first_256_values_distinct_per_dimension() {
        for dim in 1..=8u32 {
            let mut s = Sobol::new(dim);
            let mut seen = HashSet::new();
            for _ in 0..256 {
                assert!(
                    seen.insert(s.next_raw()),
                    "dimension {dim} repeated a value early"
                );
            }
        }
    }

    #[test]
    fn mean_converges_to_half() {
        for dim in 1..=8u32 {
            let mut s = Sobol::new(dim);
            let n = 1 << 10;
            let mean: f64 = (0..n).map(|_| s.next_unit()).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 0.02, "dim {dim} mean {mean}");
        }
    }

    proptest! {
        #[test]
        fn prop_values_in_unit_interval(dim in 1u32..=8, n in 1usize..2000) {
            let mut s = Sobol::new(dim);
            for _ in 0..n {
                let v = s.next_unit();
                prop_assert!((0.0..1.0).contains(&v));
            }
        }
    }
}
