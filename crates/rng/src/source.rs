//! The [`RandomSource`] trait shared by every number source in this crate.

use std::fmt;

/// Identifies a source family; used by experiment configuration tables
/// (Table II names its rows by RNG pair, e.g. "VDC / Halton").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RngKind {
    /// Linear feedback shift register.
    Lfsr,
    /// Base-2 Van der Corput low-discrepancy sequence.
    VanDerCorput,
    /// Halton low-discrepancy sequence (Van der Corput in another base).
    Halton,
    /// Sobol low-discrepancy sequence.
    Sobol,
    /// Deterministic ramp counter.
    Counter,
}

impl fmt::Display for RngKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RngKind::Lfsr => "LFSR",
            RngKind::VanDerCorput => "VDC",
            RngKind::Halton => "Halton",
            RngKind::Sobol => "Sobol",
            RngKind::Counter => "Counter",
        };
        f.write_str(s)
    }
}

/// A deterministic pseudo-random or low-discrepancy number source.
///
/// Sources yield values in the half-open unit interval `[0, 1)`. A
/// digital-to-stochastic converter emits a 1 whenever the target probability
/// exceeds the next sample, so two stochastic numbers generated from the
/// *same* source instance are positively correlated while numbers generated
/// from independent sources are (close to) uncorrelated — exactly the
/// mechanism discussed in §II.B of the paper.
pub trait RandomSource: Send {
    /// Returns the next sample in `[0, 1)` and advances the source.
    fn next_unit(&mut self) -> f64;

    /// Restarts the source from its initial state.
    fn reset(&mut self);

    /// The family this source belongs to.
    fn kind(&self) -> RngKind;

    /// A short human-readable label (used in experiment tables).
    fn label(&self) -> String {
        self.kind().to_string()
    }

    /// Advances the source by `count` samples, discarding them.
    ///
    /// Used to position an independently built source mid-sequence, e.g. when
    /// a dataflow plan gives each node its own instance of a logically shared
    /// source (see [`crate::SourceSpec::build_skipped`]). The default
    /// implementation steps sample by sample; sources with algebraic state
    /// transitions override it with a sub-linear jump ([`crate::Lfsr`] uses a
    /// companion-matrix power, `O(w² log count)` word operations instead of
    /// `count` register steps).
    fn skip_ahead(&mut self, count: u64) {
        for _ in 0..count {
            self.next_unit();
        }
    }
}

impl RandomSource for Box<dyn RandomSource> {
    fn next_unit(&mut self) -> f64 {
        self.as_mut().next_unit()
    }

    fn reset(&mut self) {
        self.as_mut().reset();
    }

    fn kind(&self) -> RngKind {
        self.as_ref().kind()
    }

    fn label(&self) -> String {
        self.as_ref().label()
    }

    fn skip_ahead(&mut self, count: u64) {
        self.as_mut().skip_ahead(count);
    }
}

/// Extension helpers available on every [`RandomSource`].
pub trait SourceExt: RandomSource {
    /// Returns the next sample scaled to an integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "modulus must be non-zero");
        let v = (self.next_unit() * n as f64) as u64;
        v.min(n - 1)
    }

    /// Collects the next `count` unit samples into a vector.
    fn take_units(&mut self, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.next_unit()).collect()
    }
}

impl<T: RandomSource + ?Sized> SourceExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);

    impl RandomSource for Fixed {
        fn next_unit(&mut self) -> f64 {
            self.0
        }
        fn reset(&mut self) {}
        fn kind(&self) -> RngKind {
            RngKind::Counter
        }
    }

    #[test]
    fn next_below_scales_and_clamps() {
        let mut lo = Fixed(0.0);
        let mut hi = Fixed(0.999_999);
        assert_eq!(lo.next_below(10), 0);
        assert_eq!(hi.next_below(10), 9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn next_below_zero_panics() {
        let mut s = Fixed(0.5);
        let _ = s.next_below(0);
    }

    #[test]
    fn take_units_length() {
        let mut s = Fixed(0.25);
        assert_eq!(s.take_units(5), vec![0.25; 5]);
    }

    #[test]
    fn boxed_source_forwards() {
        let mut boxed: Box<dyn RandomSource> = Box::new(Fixed(0.5));
        assert_eq!(boxed.next_unit(), 0.5);
        assert_eq!(boxed.kind(), RngKind::Counter);
        assert_eq!(boxed.label(), "Counter");
        boxed.reset();
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(RngKind::Lfsr.to_string(), "LFSR");
        assert_eq!(RngKind::VanDerCorput.to_string(), "VDC");
        assert_eq!(RngKind::Halton.to_string(), "Halton");
        assert_eq!(RngKind::Sobol.to_string(), "Sobol");
        assert_eq!(RngKind::Counter.to_string(), "Counter");
    }
}
