//! Halton low-discrepancy sequences (radical inverse in an arbitrary base).
//!
//! A Halton sequence in base `b` is the generalisation of the Van der Corput
//! sequence to non-binary bases; sequences in different (coprime, usually
//! prime) bases are mutually low-correlated, which is why the paper pairs a
//! base-2 VDC source with a base-3 Halton source to generate *uncorrelated*
//! stochastic numbers (§III.D).

use crate::source::{RandomSource, RngKind};

/// A Halton sequence source in a fixed base.
///
/// # Example
///
/// ```
/// use sc_rng::{Halton, RandomSource};
///
/// let mut h = Halton::new(3);
/// let v: Vec<f64> = (0..4).map(|_| h.next_unit()).collect();
/// let expected = [1.0 / 3.0, 2.0 / 3.0, 1.0 / 9.0, 4.0 / 9.0];
/// for (a, b) in v.iter().zip(expected.iter()) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Halton {
    base: u32,
    start_index: u64,
    index: u64,
}

impl Halton {
    /// Creates a Halton sequence in the given base, starting at index 1.
    ///
    /// # Panics
    ///
    /// Panics if `base < 2`.
    #[must_use]
    pub fn new(base: u32) -> Self {
        assert!(base >= 2, "halton base must be at least 2, got {base}");
        Halton {
            base,
            start_index: 1,
            index: 1,
        }
    }

    /// Creates a Halton sequence starting at index `1 + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `base < 2`.
    #[must_use]
    pub fn with_offset(base: u32, offset: u64) -> Self {
        assert!(base >= 2, "halton base must be at least 2, got {base}");
        Halton {
            base,
            start_index: 1 + offset,
            index: 1 + offset,
        }
    }

    /// The sequence base.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The radical inverse of `i` in the given base.
    ///
    /// # Panics
    ///
    /// Panics if `base < 2`.
    #[must_use]
    pub fn radical_inverse(base: u32, mut i: u64) -> f64 {
        assert!(base >= 2, "halton base must be at least 2, got {base}");
        let b = base as u64;
        let mut inv = 0.0;
        let mut denom = 1.0;
        while i > 0 {
            denom *= b as f64;
            inv += (i % b) as f64 / denom;
            i /= b;
        }
        inv
    }
}

impl RandomSource for Halton {
    fn next_unit(&mut self) -> f64 {
        let v = Self::radical_inverse(self.base, self.index);
        self.index += 1;
        v
    }

    fn reset(&mut self) {
        self.index = self.start_index;
    }

    fn kind(&self) -> RngKind {
        RngKind::Halton
    }

    fn label(&self) -> String {
        format!("Halton-{}", self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn base2_matches_van_der_corput() {
        use crate::vandercorput::VanDerCorput;
        let mut h = Halton::new(2);
        let mut v = VanDerCorput::new();
        for _ in 0..256 {
            assert_eq!(h.next_unit(), v.next_unit());
        }
    }

    #[test]
    fn base3_first_values() {
        let mut h = Halton::new(3);
        let got: Vec<f64> = (0..6).map(|_| h.next_unit()).collect();
        let expected = [
            1.0 / 3.0,
            2.0 / 3.0,
            1.0 / 9.0,
            4.0 / 9.0,
            7.0 / 9.0,
            2.0 / 9.0,
        ];
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn base_one_panics() {
        let _ = Halton::new(1);
    }

    #[test]
    fn reset_and_label() {
        let mut h = Halton::with_offset(5, 3);
        let a: Vec<f64> = (0..8).map(|_| h.next_unit()).collect();
        h.reset();
        let b: Vec<f64> = (0..8).map(|_| h.next_unit()).collect();
        assert_eq!(a, b);
        assert_eq!(h.label(), "Halton-5");
        assert_eq!(h.base(), 5);
        assert_eq!(h.kind(), RngKind::Halton);
    }

    #[test]
    fn mean_converges_to_half() {
        let mut h = Halton::new(3);
        let n = 3usize.pow(7);
        let mean: f64 = (0..n).map(|_| h.next_unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    proptest! {
        #[test]
        fn prop_values_in_unit_interval(base in 2u32..30, i in 0u64..1_000_000) {
            let v = Halton::radical_inverse(base, i);
            prop_assert!((0.0..1.0).contains(&v));
        }

        #[test]
        fn prop_distinct_indices_distinct_values(base in 2u32..30, i in 1u64..50_000, j in 1u64..50_000) {
            prop_assume!(i != j);
            prop_assert_ne!(Halton::radical_inverse(base, i), Halton::radical_inverse(base, j));
        }
    }
}
