//! Linear feedback shift registers (LFSRs).
//!
//! LFSRs are the traditional compact pseudo-random source in stochastic
//! computing hardware: a `w`-bit shift register with XOR feedback taps chosen
//! from a primitive polynomial cycles through all `2^w − 1` non-zero states.
//! The paper notes (§II.B) that "not all LFSR combinations generate completely
//! uncorrelated SNs", which is why different seeds / rotated outputs — or
//! low-discrepancy sequences — are used instead.

use crate::source::{RandomSource, RngKind};

/// Feedback structure of the LFSR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LfsrStructure {
    /// Fibonacci (external XOR) feedback: the new bit is the XOR of the tap bits.
    #[default]
    Fibonacci,
    /// Galois (internal XOR) feedback: the output bit is XORed into the tap positions.
    Galois,
}

/// Maximal-length tap masks (primitive polynomials) for register widths 3–24.
///
/// Entry `i` holds the tap mask for width `i + 3`; bit `k` of the mask selects
/// stage `k + 1` (so the mask for x^16 + x^14 + x^13 + x^11 + 1 at width 16 is
/// `0b1011_0100_0000_0000`).
const TAPS: [u64; 22] = [
    0b110,                      // 3: x^3 + x^2 + 1
    0b1100,                     // 4: x^4 + x^3 + 1
    0b10100,                    // 5: x^5 + x^3 + 1
    0b110000,                   // 6: x^6 + x^5 + 1
    0b1100000,                  // 7: x^7 + x^6 + 1
    0b10111000,                 // 8: x^8 + x^6 + x^5 + x^4 + 1
    0b100010000,                // 9: x^9 + x^5 + 1
    0b1001000000,               // 10: x^10 + x^7 + 1
    0b10100000000,              // 11: x^11 + x^9 + 1
    0b111000001000,             // 12: x^12 + x^11 + x^10 + x^4 + 1
    0b1110010000000,            // 13: x^13 + x^12 + x^11 + x^8 + 1
    0b11100000000010,           // 14: x^14 + x^13 + x^12 + x^2 + 1
    0b110000000000000,          // 15: x^15 + x^14 + 1
    0b1011010000000000,         // 16: x^16 + x^14 + x^13 + x^11 + 1
    0b10010000000000000,        // 17: x^17 + x^14 + 1
    0b100000010000000000,       // 18: x^18 + x^11 + 1
    0b1110010000000000000,      // 19: x^19 + x^18 + x^17 + x^14 + 1
    0b10010000000000000000,     // 20: x^20 + x^17 + 1
    0b101000000000000000000,    // 21: x^21 + x^19 + 1
    0b1100000000000000000000,   // 22: x^22 + x^21 + 1
    0b10000100000000000000000,  // 23: x^23 + x^18 + 1
    0b111000010000000000000000, // 24: x^24 + x^23 + x^22 + x^17 + 1
];

/// A maximal-length linear feedback shift register source.
///
/// # Example
///
/// ```
/// use sc_rng::{Lfsr, RandomSource};
///
/// let mut lfsr = Lfsr::new(8, 0x5A);
/// let first: Vec<f64> = (0..4).map(|_| lfsr.next_unit()).collect();
/// lfsr.reset();
/// let again: Vec<f64> = (0..4).map(|_| lfsr.next_unit()).collect();
/// assert_eq!(first, again);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lfsr {
    width: u32,
    taps: u64,
    seed: u64,
    state: u64,
    structure: LfsrStructure,
}

impl Lfsr {
    /// Creates a Fibonacci LFSR of the given width (3–24 bits) and non-zero seed.
    ///
    /// The seed is masked to the register width; a masked value of zero is
    /// replaced by 1 (the all-zeros state is a fixed point of any LFSR).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `3..=24`.
    #[must_use]
    pub fn new(width: u32, seed: u64) -> Self {
        Self::with_structure(width, seed, LfsrStructure::Fibonacci)
    }

    /// Creates an LFSR with an explicit feedback structure.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `3..=24`.
    #[must_use]
    pub fn with_structure(width: u32, seed: u64, structure: LfsrStructure) -> Self {
        assert!(
            (3..=24).contains(&width),
            "LFSR width {width} outside supported range 3..=24"
        );
        let taps = TAPS[(width - 3) as usize];
        let mask = (1u64 << width) - 1;
        let mut seed = seed & mask;
        if seed == 0 {
            seed = 1;
        }
        Lfsr {
            width,
            taps,
            seed,
            state: seed,
            structure,
        }
    }

    /// The register width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The period of the register (`2^width − 1`).
    #[must_use]
    pub fn period(&self) -> u64 {
        (1u64 << self.width) - 1
    }

    /// The current register state (non-zero).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The feedback tap mask (primitive polynomial) of this register, as used
    /// by RTL emission of the equivalent hardware LFSR.
    #[must_use]
    pub fn taps(&self) -> u64 {
        self.taps
    }

    /// The feedback structure of this register.
    #[must_use]
    pub fn structure(&self) -> LfsrStructure {
        self.structure
    }

    /// Overwrites the register state, e.g. to restore state that a batched
    /// execution path staged in registers outside the `Lfsr` itself.
    ///
    /// # Panics
    ///
    /// Panics if `state` is zero (the all-zeros dead state) or wider than the
    /// register.
    pub fn set_state(&mut self, state: u64) {
        let mask = (1u64 << self.width) - 1;
        assert!(
            state != 0 && state <= mask,
            "LFSR state {state:#x} invalid for width {}",
            self.width
        );
        self.state = state;
    }

    /// Advances the register one step and returns the new state.
    pub fn step(&mut self) -> u64 {
        self.state = self.transition(self.state);
        self.state
    }

    /// The one-step state transition, as a pure function. Both feedback
    /// structures are *linear* over GF(2): the next state is an XOR of shifted
    /// state bits, which is what makes the companion-matrix jump of
    /// [`Lfsr::jump`] possible.
    fn transition(&self, state: u64) -> u64 {
        let mask = (1u64 << self.width) - 1;
        match self.structure {
            LfsrStructure::Fibonacci => {
                let feedback = (state & self.taps).count_ones() as u64 & 1;
                // Bit 0 of the shifted state is 0, so OR equals XOR: linear.
                ((state << 1) | feedback) & mask
            }
            LfsrStructure::Galois => {
                let shifted = state >> 1;
                if state & 1 == 1 {
                    (shifted ^ self.taps) & mask
                } else {
                    shifted
                }
            }
        }
    }

    /// Applies a linear map (columns = images of the basis vectors) to a state.
    fn apply(matrix: &[u64], state: u64) -> u64 {
        let mut out = 0u64;
        let mut bits = state;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            out ^= matrix[i];
            bits &= bits - 1;
        }
        out
    }

    /// Jumps the register `count` steps ahead in `O(w² log count)` word
    /// operations via square-and-multiply over the companion matrix, instead
    /// of `count` sequential register steps. Equivalent to calling
    /// [`Lfsr::step`] `count` times.
    pub fn jump(&mut self, count: u64) {
        let mut base: Vec<u64> = (0..self.width)
            .map(|i| self.transition(1u64 << i))
            .collect();
        let mut remaining = count;
        let mut scratch = vec![0u64; self.width as usize];
        while remaining != 0 {
            if remaining & 1 == 1 {
                self.state = Self::apply(&base, self.state);
            }
            remaining >>= 1;
            if remaining != 0 {
                for (i, slot) in scratch.iter_mut().enumerate() {
                    *slot = Self::apply(&base, base[i]);
                }
                std::mem::swap(&mut base, &mut scratch);
            }
        }
    }
}

impl RandomSource for Lfsr {
    fn next_unit(&mut self) -> f64 {
        let v = self.step();
        // States are in 1..=2^w - 1; map to [0, 1).
        (v - 1) as f64 / self.period() as f64
    }

    fn reset(&mut self) {
        self.state = self.seed;
    }

    fn kind(&self) -> RngKind {
        RngKind::Lfsr
    }

    fn label(&self) -> String {
        format!("LFSR-{}", self.width)
    }

    /// Companion-matrix fast-forward: `O(w² log count)` instead of `O(count)`.
    fn skip_ahead(&mut self, count: u64) {
        self.jump(count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceExt;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn fibonacci_lfsr_has_maximal_period_small_widths() {
        for width in 3..=12u32 {
            let mut lfsr = Lfsr::new(width, 1);
            let period = lfsr.period();
            let mut seen = HashSet::new();
            for _ in 0..period {
                assert!(
                    seen.insert(lfsr.step()),
                    "state repeated early at width {width}"
                );
            }
            // After a full period the register returns to its seed state.
            assert_eq!(lfsr.state(), 1);
            assert_eq!(seen.len() as u64, period);
            assert!(!seen.contains(&0), "all-zero state must never appear");
        }
    }

    #[test]
    fn galois_lfsr_has_maximal_period_small_widths() {
        for width in 3..=10u32 {
            let mut lfsr = Lfsr::with_structure(width, 1, LfsrStructure::Galois);
            let period = lfsr.period();
            let mut seen = HashSet::new();
            for _ in 0..period {
                assert!(
                    seen.insert(lfsr.step()),
                    "state repeated early at width {width}"
                );
            }
            assert_eq!(seen.len() as u64, period);
        }
    }

    #[test]
    fn zero_seed_is_coerced() {
        let lfsr = Lfsr::new(8, 0);
        assert_ne!(lfsr.state(), 0);
        let lfsr = Lfsr::new(8, 0x100); // masked to zero
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn invalid_width_panics() {
        let _ = Lfsr::new(2, 1);
    }

    #[test]
    fn reset_restores_sequence() {
        let mut lfsr = Lfsr::new(16, 0xACE1);
        let first: Vec<u64> = (0..64).map(|_| lfsr.step()).collect();
        lfsr.reset();
        let second: Vec<u64> = (0..64).map(|_| lfsr.step()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn unit_samples_are_in_range_and_roughly_uniform() {
        let mut lfsr = Lfsr::new(16, 0xACE1);
        let n = 4096;
        let mean: f64 = (0..n).map(|_| lfsr.next_unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} not near 0.5");
    }

    #[test]
    fn different_seeds_produce_shifted_sequences() {
        let mut a = Lfsr::new(16, 0xACE1);
        let mut b = Lfsr::new(16, 0xBEEF);
        let seq_a: Vec<u64> = (0..32).map(|_| a.step()).collect();
        let seq_b: Vec<u64> = (0..32).map(|_| b.step()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn label_mentions_width() {
        assert_eq!(Lfsr::new(16, 1).label(), "LFSR-16");
        assert_eq!(Lfsr::new(16, 1).kind(), RngKind::Lfsr);
    }

    #[test]
    fn jump_matches_sequential_stepping() {
        for structure in [LfsrStructure::Fibonacci, LfsrStructure::Galois] {
            for width in [3u32, 8, 16, 24] {
                for count in [0u64, 1, 2, 63, 64, 65, 1000, 1_000_003] {
                    let mut stepped = Lfsr::with_structure(width, 0xACE1, structure);
                    for _ in 0..count {
                        stepped.step();
                    }
                    let mut jumped = Lfsr::with_structure(width, 0xACE1, structure);
                    jumped.jump(count);
                    assert_eq!(
                        stepped.state(),
                        jumped.state(),
                        "width {width} count {count} {structure:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn skip_ahead_uses_jump_and_matches_samples() {
        let mut manual = Lfsr::new(16, 0xBEEF);
        for _ in 0..12345 {
            manual.next_unit();
        }
        let mut skipped = Lfsr::new(16, 0xBEEF);
        skipped.skip_ahead(12345);
        assert_eq!(manual.take_units(8), skipped.take_units(8));
    }

    #[test]
    fn jump_wraps_past_full_period() {
        let mut a = Lfsr::new(8, 0x5A);
        let period = a.period();
        a.jump(period);
        assert_eq!(a.state(), 0x5A, "full period returns to the seed state");
        let mut b = Lfsr::new(8, 0x5A);
        b.jump(period * 3 + 7);
        let mut c = Lfsr::new(8, 0x5A);
        c.jump(7);
        assert_eq!(b.state(), c.state());
    }

    #[test]
    fn next_below_yields_full_range_over_period() {
        let mut lfsr = Lfsr::new(8, 0x5A);
        let mut seen = HashSet::new();
        for _ in 0..lfsr.period() {
            seen.insert(lfsr.next_below(16));
        }
        assert_eq!(seen.len(), 16);
    }

    proptest! {
        #[test]
        fn prop_state_never_zero(width in 3u32..=24, seed in 0u64..1_000_000, steps in 1usize..2000) {
            let mut lfsr = Lfsr::new(width, seed);
            for _ in 0..steps {
                prop_assert_ne!(lfsr.step(), 0);
            }
        }

        #[test]
        fn prop_unit_in_range(width in 3u32..=24, seed in 0u64..1_000_000) {
            let mut lfsr = Lfsr::new(width, seed);
            for _ in 0..256 {
                let v = lfsr.next_unit();
                prop_assert!((0.0..1.0).contains(&v));
            }
        }
    }
}
