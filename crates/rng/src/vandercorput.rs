//! The base-2 Van der Corput low-discrepancy sequence.
//!
//! The Van der Corput (VDC) sequence is the radical-inverse of the natural
//! numbers in base 2: index `i` maps to the value obtained by mirroring the
//! binary digits of `i` around the radix point. The sequence fills `[0, 1)`
//! maximally evenly, which is why stochastic numbers generated from VDC
//! comparisons converge with `O(1/N)` error rather than the `O(1/√N)` of true
//! random sources (Alaghi & Hayes, DATE 2014 — reference \[7\] of the paper).

use crate::source::{RandomSource, RngKind};

/// The base-2 Van der Corput sequence source.
///
/// # Example
///
/// ```
/// use sc_rng::{VanDerCorput, RandomSource};
///
/// let mut vdc = VanDerCorput::new();
/// assert_eq!(vdc.next_unit(), 0.5);    // index 1 -> 0.1b
/// assert_eq!(vdc.next_unit(), 0.25);   // index 2 -> 0.01b
/// assert_eq!(vdc.next_unit(), 0.75);   // index 3 -> 0.11b
/// assert_eq!(vdc.next_unit(), 0.125);  // index 4 -> 0.001b
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VanDerCorput {
    start_index: u64,
    index: u64,
}

impl VanDerCorput {
    /// Creates the sequence starting at index 1 (the value 0 is skipped so
    /// that generated stochastic numbers are not systematically biased low).
    #[must_use]
    pub fn new() -> Self {
        VanDerCorput {
            start_index: 1,
            index: 1,
        }
    }

    /// Creates the sequence starting at index `1 + offset`; phase-shifted
    /// copies of the sequence are mutually low-correlated and can serve as
    /// "different VDC" sources.
    #[must_use]
    pub fn with_offset(offset: u64) -> Self {
        VanDerCorput {
            start_index: 1 + offset,
            index: 1 + offset,
        }
    }

    /// The radical inverse of `i` in base 2.
    #[must_use]
    pub fn radical_inverse(mut i: u64) -> f64 {
        let mut inv = 0.0;
        let mut denom = 1.0;
        while i > 0 {
            denom *= 2.0;
            inv += (i & 1) as f64 / denom;
            i >>= 1;
        }
        inv
    }

    /// The current sequence index (the index of the *next* value to be produced).
    #[must_use]
    pub fn index(&self) -> u64 {
        self.index
    }
}

impl Default for VanDerCorput {
    fn default() -> Self {
        Self::new()
    }
}

impl RandomSource for VanDerCorput {
    fn next_unit(&mut self) -> f64 {
        let v = Self::radical_inverse(self.index);
        self.index += 1;
        v
    }

    fn reset(&mut self) {
        self.index = self.start_index;
    }

    fn kind(&self) -> RngKind {
        RngKind::VanDerCorput
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_values_match_definition() {
        let mut vdc = VanDerCorput::new();
        let got: Vec<f64> = (0..8).map(|_| vdc.next_unit()).collect();
        assert_eq!(
            got,
            vec![0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875, 0.0625]
        );
    }

    #[test]
    fn radical_inverse_examples() {
        assert_eq!(VanDerCorput::radical_inverse(0), 0.0);
        assert_eq!(VanDerCorput::radical_inverse(1), 0.5);
        assert_eq!(VanDerCorput::radical_inverse(6), 0.375); // 110b -> 0.011b
    }

    #[test]
    fn reset_restores_start() {
        let mut vdc = VanDerCorput::with_offset(10);
        let first: Vec<f64> = (0..16).map(|_| vdc.next_unit()).collect();
        vdc.reset();
        let second: Vec<f64> = (0..16).map(|_| vdc.next_unit()).collect();
        assert_eq!(first, second);
        assert_eq!(vdc.kind(), RngKind::VanDerCorput);
    }

    #[test]
    fn low_discrepancy_fills_interval_evenly() {
        // Over 2^k consecutive values starting at index 1 the sequence hits
        // every dyadic bucket of width 2^-k at most twice.
        let mut vdc = VanDerCorput::new();
        let k = 6;
        let buckets = 1usize << k;
        let mut counts = vec![0u32; buckets];
        for _ in 0..buckets {
            let v = vdc.next_unit();
            counts[(v * buckets as f64) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 2), "bucket counts: {counts:?}");
    }

    #[test]
    fn mean_converges_to_half() {
        let mut vdc = VanDerCorput::new();
        let n = 1 << 12;
        let mean: f64 = (0..n).map(|_| vdc.next_unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
    }

    proptest! {
        #[test]
        fn prop_radical_inverse_in_unit_interval(i in 0u64..1_000_000) {
            let v = VanDerCorput::radical_inverse(i);
            prop_assert!((0.0..1.0).contains(&v));
        }

        #[test]
        fn prop_distinct_indices_distinct_values(i in 1u64..100_000, j in 1u64..100_000) {
            prop_assume!(i != j);
            prop_assert_ne!(VanDerCorput::radical_inverse(i), VanDerCorput::radical_inverse(j));
        }
    }
}
