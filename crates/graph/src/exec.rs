//! The batch executor: runs a [`CompiledGraph`] word-parallel over batches of
//! independent input sets, optionally sharded across a scoped worker pool.

use crate::compile::{CompiledGraph, Step};
use crate::graph::GraphError;
use sc_arith::add::{half_select_stream, mux_add};
use sc_bitstream::{scc, Bitstream, Probability};
use sc_convert::{
    AccumulativeParallelCounter, DigitalToStochastic, Regenerator, StochasticToDigital,
};
use sc_core::{CorrelationManipulator, ManipulatorChain};
use sc_rng::{RandomSource, RngKind, SourceSpec};
use std::collections::{BTreeMap, HashMap};

/// One independent input set of a batch: the digital values consumed by
/// `Generate` nodes and the ready streams consumed by `InputStream` nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchInput {
    /// Digital values in `[0, 1]`, indexed by the `Generate` nodes' slots.
    pub values: Vec<f64>,
    /// Ready streams, indexed by the `InputStream` nodes' slots.
    pub streams: Vec<Bitstream>,
}

impl BatchInput {
    /// An input set with no values and no streams.
    #[must_use]
    pub fn new() -> Self {
        BatchInput::default()
    }

    /// An input set of digital values only.
    #[must_use]
    pub fn with_values(values: Vec<f64>) -> Self {
        BatchInput {
            values,
            streams: Vec::new(),
        }
    }

    /// An input set of ready streams only.
    #[must_use]
    pub fn with_streams(streams: Vec<Bitstream>) -> Self {
        BatchInput {
            values: Vec::new(),
            streams,
        }
    }
}

/// The named results of executing a plan over one input set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecOutput {
    streams: BTreeMap<String, Bitstream>,
    values: BTreeMap<String, f64>,
}

impl ExecOutput {
    /// The stream captured by the `SinkStream` sink of that name.
    #[must_use]
    pub fn stream(&self, name: &str) -> Option<&Bitstream> {
        self.streams.get(name)
    }

    /// The value captured by the value-producing sink of that name
    /// (`SinkValue`, `SinkCount`, `SinkSum`, or `SccProbe`).
    #[must_use]
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates over `(name, stream)` sink results in name order.
    pub fn streams(&self) -> impl Iterator<Item = (&str, &Bitstream)> {
        self.streams.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over `(name, value)` sink results in name order.
    pub fn values(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Per-execution cache of live source instances, so plan steps that draw from
/// one *logically shared* hardware source (equal [`SourceSpec`], consecutive
/// `skip` ranges) continue a single instance instead of each rebuilding a
/// fresh source and sample-stepping to its position. For the tiled `sc_image`
/// pipeline this turns the per-tile select-sample cost from quadratic in
/// kernels (re-skipping `k·N` samples for kernel `k`) to linear, and the
/// LFSR's companion-matrix [`sc_rng::RandomSource::skip_ahead`] makes the
/// remaining cold positioning logarithmic.
///
/// Correctness: sources are deterministic, so continuing one instance from
/// position `p` is bit-identical to `spec.build_skipped(p)`; any consumer
/// whose requested position does not match the cached position gets a freshly
/// positioned instance.
#[derive(Default)]
struct SourceCache {
    entries: HashMap<SourceSpec, (Box<dyn RandomSource>, u64)>,
}

impl SourceCache {
    /// Returns a source positioned `skip` samples into the spec's sequence
    /// and records that the caller is about to draw `samples` more.
    fn source(&mut self, spec: &SourceSpec, skip: u64, samples: u64) -> &mut dyn RandomSource {
        let entry = self
            .entries
            .entry(spec.clone())
            .and_modify(|(source, position)| {
                if *position != skip {
                    *source = spec.build_skipped(skip);
                    *position = skip;
                }
            })
            .or_insert_with(|| (spec.build_skipped(skip), skip));
        entry.1 += samples;
        entry.0.as_mut()
    }
}

/// Adapter lending a cached source to the by-value converter constructors
/// without giving up ownership.
struct BorrowedSource<'a>(&'a mut dyn RandomSource);

impl RandomSource for BorrowedSource<'_> {
    fn next_unit(&mut self) -> f64 {
        self.0.next_unit()
    }

    fn reset(&mut self) {
        self.0.reset();
    }

    fn kind(&self) -> RngKind {
        self.0.kind()
    }

    fn skip_ahead(&mut self, count: u64) {
        self.0.skip_ahead(count);
    }
}

/// Executes compiled plans over batches of input sets.
///
/// Every batch item is independent: each execution builds fresh source and
/// FSM instances from the plan's specs, so results are deterministic and
/// identical whether the batch runs on one thread or many. Sharding uses
/// `std::thread::scope` — no pool is kept alive between calls and no
/// external dependencies are involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    stream_length: usize,
    threads: usize,
}

impl Executor {
    /// An executor generating streams of `stream_length` bits, single-threaded.
    #[must_use]
    pub fn new(stream_length: usize) -> Self {
        Executor {
            stream_length,
            threads: 1,
        }
    }

    /// Sets the number of worker threads used by [`Executor::run_batch`]
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured stream length `N`.
    #[must_use]
    pub fn stream_length(&self) -> usize {
        self.stream_length
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes the plan over one input set.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ValueSlotOutOfRange`] /
    /// [`GraphError::StreamSlotOutOfRange`] if the input set is narrower than
    /// the plan requires, and [`GraphError::Stream`] if input streams have
    /// mismatched lengths.
    pub fn run(&self, plan: &CompiledGraph, input: &BatchInput) -> Result<ExecOutput, GraphError> {
        let n = self.stream_length;
        let mut slots: Vec<Option<Bitstream>> = vec![None; plan.slot_count];
        let mut sources = SourceCache::default();
        let mut out = ExecOutput::default();
        // Borrow, never clone: operand reads finish before the destination
        // slot is written, so the streams stay in place across the plan.
        fn slot(slots: &[Option<Bitstream>], idx: usize) -> &Bitstream {
            slots[idx]
                .as_ref()
                .expect("topological order guarantees producers run first")
        }
        for step in &plan.steps {
            match step {
                Step::Input { slot, dst } => {
                    let stream =
                        input
                            .streams
                            .get(*slot)
                            .ok_or(GraphError::StreamSlotOutOfRange {
                                slot: *slot,
                                provided: input.streams.len(),
                            })?;
                    slots[*dst] = Some(stream.clone());
                }
                Step::Generate {
                    slot,
                    source,
                    skip,
                    dst,
                } => {
                    let value =
                        *input
                            .values
                            .get(*slot)
                            .ok_or(GraphError::ValueSlotOutOfRange {
                                slot: *slot,
                                provided: input.values.len(),
                            })?;
                    let mut d2s = DigitalToStochastic::new(BorrowedSource(
                        sources.source(source, *skip, n as u64),
                    ));
                    slots[*dst] = Some(d2s.generate(Probability::saturating(value), n));
                }
                Step::Constant {
                    probability,
                    source,
                    skip,
                    dst,
                } => {
                    let mut d2s = DigitalToStochastic::new(BorrowedSource(
                        sources.source(source, *skip, n as u64),
                    ));
                    slots[*dst] = Some(d2s.generate(Probability::saturating(*probability), n));
                }
                Step::Manipulate {
                    kinds,
                    x,
                    y,
                    dst_x,
                    dst_y,
                } => {
                    let (sx, sy) = (slot(&slots, *x), slot(&slots, *y));
                    let (ox, oy) = if kinds.len() == 1 {
                        // A single circuit keeps its own word-level fast path.
                        kinds[0].build().process(sx, sy)?
                    } else {
                        // A fused run makes one register-staged pass per word.
                        let mut chain = ManipulatorChain::new();
                        for kind in kinds {
                            chain.push_boxed(kind.build());
                        }
                        chain.process(sx, sy)?
                    };
                    slots[*dst_x] = Some(ox);
                    slots[*dst_y] = Some(oy);
                }
                Step::Regenerate {
                    source,
                    skip,
                    src,
                    dst,
                } => {
                    let mut regen =
                        Regenerator::new(BorrowedSource(sources.source(source, *skip, n as u64)));
                    let regenerated = regen.regenerate(slot(&slots, *src));
                    slots[*dst] = Some(regenerated);
                }
                Step::Not { src, dst } => {
                    let complemented = slot(&slots, *src).not();
                    slots[*dst] = Some(complemented);
                }
                Step::Binary { op, x, y, dst } => {
                    let z = apply_binary(*op, slot(&slots, *x), slot(&slots, *y))?;
                    slots[*dst] = Some(z);
                }
                Step::UnaryFsm { op, src, dst } => {
                    let z = match op {
                        crate::node::UnaryFsmOp::Stanh { half_states } => {
                            sc_arith::fsm_ops::stanh(slot(&slots, *src), *half_states)
                        }
                        crate::node::UnaryFsmOp::Slinear { states } => {
                            sc_arith::fsm_ops::slinear(slot(&slots, *src), *states)
                        }
                    };
                    slots[*dst] = Some(z);
                }
                Step::Divide {
                    source,
                    skip,
                    counter_bits,
                    x,
                    y,
                    dst,
                } => {
                    let mut divider = sc_arith::divide::Divider::with_counter_bits(
                        BorrowedSource(sources.source(source, *skip, n as u64)),
                        *counter_bits,
                    );
                    let z = divider.divide(slot(&slots, *x), slot(&slots, *y))?;
                    slots[*dst] = Some(z);
                }
                Step::MuxAdd {
                    select,
                    skip,
                    x,
                    y,
                    dst,
                } => {
                    let z = {
                        let (sx, sy) = (slot(&slots, *x), slot(&slots, *y));
                        let sel = half_select_stream(
                            &mut BorrowedSource(sources.source(select, *skip, sx.len() as u64)),
                            sx.len(),
                        );
                        mux_add(sx, sy, &sel)?
                    };
                    slots[*dst] = Some(z);
                }
                Step::WeightedMux {
                    weights,
                    select,
                    skip,
                    srcs,
                    dst,
                } => {
                    let z = {
                        let refs: Vec<&Bitstream> = srcs.iter().map(|s| slot(&slots, *s)).collect();
                        let samples = refs.first().map_or(0, |s| s.len()) as u64;
                        weighted_mux(&refs, weights, sources.source(select, *skip, samples))?
                    };
                    slots[*dst] = Some(z);
                }
                Step::SinkStream { name, src } => {
                    out.streams.insert(name.clone(), slot(&slots, *src).clone());
                }
                Step::SinkValue { name, src } => {
                    let value = StochasticToDigital::convert(slot(&slots, *src)).get();
                    out.values.insert(name.clone(), value);
                }
                Step::SinkCount { name, src } => {
                    let count = StochasticToDigital::convert_to_count(slot(&slots, *src));
                    out.values.insert(name.clone(), count as f64);
                }
                Step::SinkSum { name, srcs } => {
                    // The APC consumes owned streams; sum sinks are rare
                    // enough that the copy is irrelevant.
                    let inputs: Vec<Bitstream> =
                        srcs.iter().map(|s| slot(&slots, *s).clone()).collect();
                    let mut apc = AccumulativeParallelCounter::new(inputs.len());
                    apc.accumulate_streams(&inputs)?;
                    out.values.insert(name.clone(), apc.sum_of_values());
                }
                Step::SccProbe { name, x, y } => {
                    let value = scc(slot(&slots, *x), slot(&slots, *y));
                    out.values.insert(name.clone(), value);
                }
            }
        }
        Ok(out)
    }

    /// Executes the plan over a batch of independent input sets, sharded
    /// across the configured worker threads, preserving input order.
    ///
    /// # Errors
    ///
    /// Propagates the first per-item error (see [`Executor::run`]).
    ///
    /// # Panics
    ///
    /// If an execution panics on a worker thread, the original panic payload
    /// is resumed on the caller's thread.
    pub fn run_batch(
        &self,
        plan: &CompiledGraph,
        inputs: &[BatchInput],
    ) -> Result<Vec<ExecOutput>, GraphError> {
        self.dispatch(inputs.len(), |index| self.run(plan, &inputs[index]))
    }

    /// Executes a heterogeneous group of `(plan, input)` jobs in one sharded
    /// dispatch, preserving job order.
    ///
    /// This is the cross-plan generalisation of [`Executor::run_batch`]: a
    /// whole image's tiles, each compiled (or retargeted) to its own plan,
    /// can saturate the worker pool in a single call instead of serialising
    /// per-plan batches — work is divided into `min(threads, jobs)`
    /// near-equal contiguous shards, so small tail groups cannot strand
    /// workers idle.
    ///
    /// # Errors
    ///
    /// Propagates the first per-job error (see [`Executor::run`]).
    ///
    /// # Panics
    ///
    /// If an execution panics on a worker thread, the original panic payload
    /// is resumed on the caller's thread.
    pub fn run_group(&self, jobs: &[ExecJob<'_>]) -> Result<Vec<ExecOutput>, GraphError> {
        self.dispatch(jobs.len(), |index| {
            let job = &jobs[index];
            self.run(job.plan, job.input)
        })
    }

    /// Shared sharded-dispatch engine: runs `execute(0..len)` across the
    /// worker pool in balanced contiguous spans, collecting results in index
    /// order and resuming any worker panic on the caller's thread.
    fn dispatch<F>(&self, len: usize, execute: F) -> Result<Vec<ExecOutput>, GraphError>
    where
        F: Fn(usize) -> Result<ExecOutput, GraphError> + Sync,
    {
        let workers = self.threads.min(len).max(1);
        if workers <= 1 {
            return (0..len).map(execute).collect();
        }
        let spans = balanced_spans(len, workers);
        let mut span_results: Vec<Result<Vec<ExecOutput>, GraphError>> =
            Vec::with_capacity(spans.len());
        std::thread::scope(|scope| {
            let execute = &execute;
            let handles: Vec<_> = spans
                .into_iter()
                .map(|span| scope.spawn(move || span.map(execute).collect::<Result<Vec<_>, _>>()))
                .collect();
            for handle in handles {
                span_results.push(match handle.join() {
                    Ok(result) => result,
                    // Surface the worker's own panic message to the caller
                    // instead of a generic join failure.
                    Err(payload) => std::panic::resume_unwind(payload),
                });
            }
        });
        let mut out = Vec::with_capacity(len);
        for result in span_results {
            out.extend(result?);
        }
        Ok(out)
    }
}

/// One `(plan, input)` pairing of a heterogeneous [`Executor::run_group`]
/// dispatch.
#[derive(Clone, Copy)]
pub struct ExecJob<'a> {
    /// The compiled plan to execute.
    pub plan: &'a CompiledGraph,
    /// The input set to feed it.
    pub input: &'a BatchInput,
}

/// Splits `0..len` into exactly `min(workers, len).max(1)` contiguous spans
/// whose lengths differ by at most one.
///
/// This replaces `chunks(len.div_ceil(workers))` sharding, which could
/// produce *fewer* chunks than workers and leave the rest idle: 9 inputs on
/// 8 threads made five 2-item chunks — three idle workers and a ~2× tail
/// latency — where this division makes eight chunks of 1–2 items.
fn balanced_spans(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = workers.min(len).max(1);
    let base = len / chunks;
    let extra = len % chunks;
    let mut spans = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        spans.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    spans
}

/// Applies a binary operator through the `sc_arith` word-parallel kernels.
fn apply_binary(
    op: crate::node::BinaryOp,
    x: &Bitstream,
    y: &Bitstream,
) -> Result<Bitstream, GraphError> {
    use crate::node::BinaryOp as B;
    let z = match op {
        B::AndMultiply => sc_arith::multiply::and_multiply(x, y)?,
        B::XnorMultiply => sc_arith::multiply::xnor_multiply(x, y)?,
        B::OrMax => sc_arith::maxmin::or_max(x, y)?,
        B::AndMin => sc_arith::maxmin::and_min(x, y)?,
        B::SaturatingAdd => sc_arith::add::saturating_add(x, y)?,
        B::XorSubtract => sc_arith::subtract::xor_subtract(x, y)?,
        B::CaAdd => sc_arith::add::ca_add(x, y)?,
        B::CaMax => sc_arith::maxmin::ca_max(x, y)?,
        B::CaMin => sc_arith::maxmin::ca_min(x, y)?,
    };
    Ok(z)
}

/// The weighted multiplexer tree: each cycle one input is sampled with
/// probability equal to its weight (cumulative walk over `weights`; leftover
/// mass falls to the last input). The selection sequence is data-independent,
/// so the gather runs word-parallel: per 64 cycles one selection mask is
/// built per input and the output word is one AND-OR per input over the
/// packed words — the generalisation of the `sc_image` Gaussian-blur kernel.
fn weighted_mux(
    inputs: &[&Bitstream],
    weights: &[f64],
    source: &mut dyn RandomSource,
) -> Result<Bitstream, GraphError> {
    let n = inputs[0].len();
    for s in inputs {
        if s.len() != n {
            return Err(GraphError::Stream(sc_bitstream::Error::LengthMismatch {
                left: n,
                right: s.len(),
            }));
        }
    }
    let mut masks = vec![0u64; weights.len()];
    Ok(Bitstream::from_word_fn(n, |w| {
        let valid = inputs[0].word_len(w);
        masks.iter_mut().for_each(|m| *m = 0);
        for i in 0..valid {
            let mut u = source.next_unit();
            let mut selected = weights.len() - 1;
            for (idx, weight) in weights.iter().enumerate() {
                if u < *weight {
                    selected = idx;
                    break;
                }
                u -= weight;
            }
            masks[selected] |= 1u64 << i;
        }
        masks.iter().enumerate().fold(0u64, |out, (k, &mask)| {
            out | (inputs[k].as_words()[w] & mask)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{BinaryOp, ManipulatorKind};
    use crate::{Graph, PlannerOptions};
    use sc_rng::SourceSpec;

    fn sobol(d: u32) -> SourceSpec {
        SourceSpec::Sobol { dimension: d }
    }

    #[test]
    fn generate_and_sink_round_trip() {
        let mut g = Graph::new();
        let x = g.generate(0, SourceSpec::VanDerCorput { offset: 0 });
        g.sink_value("v", x);
        g.sink_count("c", x);
        g.sink_stream("s", x);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let out = Executor::new(256)
            .run(&plan, &BatchInput::with_values(vec![0.25]))
            .unwrap();
        assert!((out.value("v").unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(out.value("c").unwrap(), 64.0);
        assert_eq!(out.stream("s").unwrap().len(), 256);
        assert_eq!(out.streams().count(), 1);
        assert_eq!(out.values().count(), 2);
    }

    #[test]
    fn missing_inputs_are_reported() {
        let mut g = Graph::new();
        let x = g.generate(2, sobol(1));
        g.sink_value("v", x);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let err = Executor::new(64)
            .run(&plan, &BatchInput::with_values(vec![0.5]))
            .unwrap_err();
        assert!(matches!(err, GraphError::ValueSlotOutOfRange { .. }));

        let mut g = Graph::new();
        let s = g.input_stream(0);
        g.sink_value("v", s);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let err = Executor::new(64)
            .run(&plan, &BatchInput::new())
            .unwrap_err();
        assert!(matches!(err, GraphError::StreamSlotOutOfRange { .. }));
    }

    #[test]
    fn mismatched_input_streams_error() {
        let mut g = Graph::new();
        let a = g.input_stream(0);
        let b = g.input_stream(1);
        let z = g.binary(BinaryOp::CaAdd, a, b);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let bad = BatchInput::with_streams(vec![Bitstream::zeros(64), Bitstream::zeros(65)]);
        assert!(matches!(
            Executor::new(64).run(&plan, &bad),
            Err(GraphError::Stream(_))
        ));
    }

    #[test]
    fn scc_probe_and_sum_sinks() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(1)); // shared spec: positively correlated
        g.scc_probe("scc", x, y);
        g.sink_sum("sum", &[x, y]);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let out = Executor::new(256)
            .run(&plan, &BatchInput::with_values(vec![0.5, 0.5]))
            .unwrap();
        assert!(out.value("scc").unwrap() > 0.99);
        assert!((out.value("sum").unwrap() - 1.0).abs() < 0.02);
    }

    #[test]
    fn auto_inserted_synchronizer_fixes_xor_accuracy() {
        let (px, py) = (0.6, 0.6);
        let build = |options: &PlannerOptions| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(3));
            let z = g.binary(BinaryOp::XorSubtract, x, y);
            g.sink_value("z", z);
            g.compile(options).unwrap()
        };
        let exec = Executor::new(1024);
        let input = BatchInput::with_values(vec![px, py]);
        let broken = exec
            .run(&build(&PlannerOptions::no_repair()), &input)
            .unwrap();
        let repaired = exec
            .run(&build(&PlannerOptions::default()), &input)
            .unwrap();
        // |0.6 − 0.6| = 0: uncorrelated XOR instead computes ≈ 2·p(1−p).
        assert!(broken.value("z").unwrap() > 0.3);
        assert!(repaired.value("z").unwrap() < 0.05);
    }

    #[test]
    fn fused_chain_matches_unfused_bits() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let (a0, a1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 2 }, x, y);
        let (b0, b1) = g.manipulate(ManipulatorKind::Desynchronizer { depth: 1 }, a0, a1);
        g.sink_stream("x", b0);
        g.sink_stream("y", b1);
        let fused = g.compile(&PlannerOptions::default()).unwrap();
        let unfused = g
            .compile(&PlannerOptions {
                fuse: false,
                ..PlannerOptions::default()
            })
            .unwrap();
        let input = BatchInput::with_streams(vec![
            Bitstream::from_fn(301, |i| (i * 7 + 1) % 3 == 0),
            Bitstream::from_fn(301, |i| (i * 5 + 2) % 4 < 2),
        ]);
        let exec = Executor::new(301);
        assert_eq!(
            exec.run(&fused, &input).unwrap(),
            exec.run(&unfused, &input).unwrap()
        );
    }

    #[test]
    fn divide_and_unary_fsm_nodes_execute() {
        let mut g = Graph::new();
        // Positively correlated pair (shared spec): divide needs no repair.
        let x = g.generate(0, SourceSpec::VanDerCorput { offset: 0 });
        let y = g.generate(1, SourceSpec::VanDerCorput { offset: 0 });
        let q = g.divide(
            x,
            y,
            SourceSpec::Lfsr {
                width: 16,
                seed: 0x5A5A,
            },
        );
        g.sink_value("q", q);
        // Bipolar stanh/slinear over an LFSR-generated stream.
        let a = g.generate(
            2,
            SourceSpec::Lfsr {
                width: 16,
                seed: 0xACE1,
            },
        );
        let t = g.stanh(4, a);
        let l = g.slinear(8, a);
        g.sink_value("t", t);
        g.sink_value("l", l);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert!(plan.report().inserted.is_empty(), "{:?}", plan.report());
        let out = Executor::new(2048)
            .run(&plan, &BatchInput::with_values(vec![0.3, 0.6, 0.9]))
            .unwrap();
        assert!(
            (out.value("q").unwrap() - 0.5).abs() < 0.1,
            "0.3 / 0.6 = 0.5, got {}",
            out.value("q").unwrap()
        );
        // Bipolar input value 2·0.9 − 1 = 0.8 saturates stanh high.
        assert!(out.value("t").unwrap() > 0.8);
        assert!(out.value("l").unwrap() > 0.7);
    }

    #[test]
    fn divider_precondition_is_planned() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2)); // independent ⇒ uncorrelated
        let q = g.divide(
            x,
            y,
            SourceSpec::Lfsr {
                width: 16,
                seed: 0x5A5A,
            },
        );
        g.sink_value("q", q);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.report().inserted.len(), 1);
        assert!(plan.report().inserted[0].contains("divide"));
    }

    #[test]
    fn shared_source_cache_matches_per_step_positioning() {
        // Two MUX adders drawing from one logically shared select LFSR via
        // per-node skips, in one plan (cache continues one instance) vs in
        // two separate plans (each positions a fresh instance): identical.
        let n = 301usize;
        let select = SourceSpec::Lfsr {
            width: 16,
            seed: 0x1234,
        };
        let mut shared = Graph::new();
        let a = shared.generate(0, sobol(1));
        let b = shared.generate(1, sobol(2));
        let z0 = shared.mux_add_skipped(a, b, select.clone(), 0);
        let z1 = shared.mux_add_skipped(a, b, select.clone(), n as u64);
        shared.sink_stream("z0", z0);
        shared.sink_stream("z1", z1);
        let plan = shared.compile(&PlannerOptions::default()).unwrap();
        let out = Executor::new(n)
            .run(&plan, &BatchInput::with_values(vec![0.4, 0.7]))
            .unwrap();

        let solo = |skip: u64| {
            let mut g = Graph::new();
            let a = g.generate(0, sobol(1));
            let b = g.generate(1, sobol(2));
            let z = g.mux_add_skipped(a, b, select.clone(), skip);
            g.sink_stream("z", z);
            let plan = g.compile(&PlannerOptions::default()).unwrap();
            Executor::new(n)
                .run(&plan, &BatchInput::with_values(vec![0.4, 0.7]))
                .unwrap()
                .stream("z")
                .unwrap()
                .clone()
        };
        assert_eq!(out.stream("z0").unwrap(), &solo(0));
        assert_eq!(out.stream("z1").unwrap(), &solo(n as u64));
    }

    #[test]
    fn sharded_batch_matches_sequential() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, SourceSpec::Halton { base: 3, offset: 0 });
        let (sx, sy) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        let z = g.binary(BinaryOp::CaAdd, sx, sy);
        g.sink_stream("z", z);
        g.sink_value("zv", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let inputs: Vec<BatchInput> = (0..13)
            .map(|i| BatchInput::with_values(vec![i as f64 / 13.0, 1.0 - i as f64 / 13.0]))
            .collect();
        let sequential = Executor::new(257).run_batch(&plan, &inputs).unwrap();
        let sharded = Executor::new(257)
            .with_threads(4)
            .run_batch(&plan, &inputs)
            .unwrap();
        assert_eq!(sequential, sharded);
        assert_eq!(sequential.len(), 13);
    }

    #[test]
    fn batch_error_propagates_from_workers() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        g.sink_value("v", x);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let mut inputs = vec![BatchInput::with_values(vec![0.5]); 6];
        inputs[4] = BatchInput::new(); // missing value slot
        let err = Executor::new(64)
            .with_threads(3)
            .run_batch(&plan, &inputs)
            .unwrap_err();
        assert!(matches!(err, GraphError::ValueSlotOutOfRange { .. }));
    }

    /// Work is divided into exactly `min(workers, len)` near-equal spans:
    /// the awkward sizes that used to strand workers idle (9 inputs on 8
    /// threads → five `div_ceil`-sized chunks, three idle threads) now
    /// produce one span per worker, covering `0..len` in order.
    #[test]
    fn balanced_spans_use_every_worker() {
        for (len, workers) in [
            (9usize, 8usize),
            (17, 16),
            (65, 64),
            (13, 4),
            (8, 8),
            (3, 8),
        ] {
            let spans = balanced_spans(len, workers);
            assert_eq!(
                spans.len(),
                workers.min(len),
                "chunk count for {len} items on {workers} workers"
            );
            let sizes: Vec<usize> = spans.iter().map(|s| s.end - s.start).collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(min >= 1, "{len}/{workers}: no empty spans");
            assert!(
                max - min <= 1,
                "{len}/{workers}: near-equal sizes {sizes:?}"
            );
            let mut next = 0;
            for span in &spans {
                assert_eq!(span.start, next, "{len}/{workers}: contiguous in order");
                next = span.end;
            }
            assert_eq!(next, len, "{len}/{workers}: full coverage");
        }
        assert!(balanced_spans(0, 4).len() == 1 && balanced_spans(0, 4)[0].is_empty());
    }

    /// A poisoned `InputStream` (length mismatch) on one shard must surface
    /// as an error — not a panic — while a run without the poisoned item
    /// keeps every shard's results in input order.
    #[test]
    fn poisoned_shard_errors_while_others_stay_ordered() {
        let mut g = Graph::new();
        let s = g.input_stream(0);
        let t = g.input_stream(1);
        let z = g.binary(BinaryOp::CaAdd, s, t);
        g.sink_count("ones", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let n = 96usize;
        let item = |ones: usize| {
            BatchInput::with_streams(vec![
                Bitstream::from_fn(n, |i| i < ones),
                Bitstream::zeros(n),
            ])
        };
        // 9 items on 8 workers: the balanced division gives every worker a
        // shard; item 3's second stream is poisoned with a bad length.
        let mut inputs: Vec<BatchInput> = (0..9).map(item).collect();
        inputs[3].streams[1] = Bitstream::zeros(n + 1);
        let exec = Executor::new(n).with_threads(8);
        let err = exec.run_batch(&plan, &inputs).unwrap_err();
        assert!(matches!(err, GraphError::Stream(_)), "errors, not panics");
        // Healthy inputs: results arrive in input order across all shards,
        // identical to the sequential reference, and item-distinct (so a
        // mis-stitched order could not pass by coincidence).
        let inputs: Vec<BatchInput> = (0..9).map(item).collect();
        let sharded = exec.run_batch(&plan, &inputs).unwrap();
        let sequential = Executor::new(n).run_batch(&plan, &inputs).unwrap();
        assert_eq!(sharded, sequential, "shard results stitched in input order");
        let counts: Vec<f64> = sharded.iter().map(|o| o.value("ones").unwrap()).collect();
        let mut sorted = counts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(counts, sorted, "per-item counts grow with input index");
    }

    /// Heterogeneous dispatch: different plans in one sharded call produce
    /// exactly what running each plan alone produces, in job order, at any
    /// thread count.
    #[test]
    fn run_group_matches_individual_runs() {
        let make_plan = |flip: bool| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let z = if flip {
                g.binary(BinaryOp::AndMultiply, x, y)
            } else {
                g.binary(BinaryOp::CaAdd, x, y)
            };
            g.sink_value("z", z);
            g.compile(&PlannerOptions::default()).unwrap()
        };
        let plans: Vec<CompiledGraph> = (0..7).map(|i| make_plan(i % 2 == 0)).collect();
        let inputs: Vec<BatchInput> = (0..7)
            .map(|i| BatchInput::with_values(vec![i as f64 / 7.0, 1.0 - i as f64 / 9.0]))
            .collect();
        let jobs: Vec<ExecJob<'_>> = plans
            .iter()
            .zip(&inputs)
            .map(|(plan, input)| ExecJob { plan, input })
            .collect();
        let solo: Vec<ExecOutput> = jobs
            .iter()
            .map(|j| Executor::new(193).run(j.plan, j.input).unwrap())
            .collect();
        for threads in [1usize, 3, 8] {
            let grouped = Executor::new(193)
                .with_threads(threads)
                .run_group(&jobs)
                .unwrap();
            assert_eq!(grouped, solo, "threads={threads}");
        }
        assert!(Executor::new(193).run_group(&[]).unwrap().is_empty());
    }

    #[test]
    fn executor_accessors() {
        let exec = Executor::new(128).with_threads(0);
        assert_eq!(exec.stream_length(), 128);
        assert_eq!(exec.threads(), 1);
    }
}
