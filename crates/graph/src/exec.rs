//! The batch executor: runs a [`CompiledGraph`] word-parallel over batches of
//! independent input sets, optionally sharded across a persistent worker pool.

use crate::compile::{CompiledGraph, Step};
use crate::graph::GraphError;
use crate::node::BinaryOp;
use sc_arith::add::{half_select_stream, mux_add};
use sc_bitstream::{scc, Bitstream, Probability};
use sc_convert::{
    AccumulativeParallelCounter, DigitalToStochastic, Regenerator, StochasticToDigital,
};
use sc_core::{process_lane_pairs, CorrelationManipulator, LaneChain, ManipulatorChain, LANES};
use sc_rng::{RandomSource, RngKind, SourceSpec};
use sc_telemetry::{Counter, Gauge, Hist, Stage, TelemetrySink};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// One independent input set of a batch: the digital values consumed by
/// `Generate` nodes and the ready streams consumed by `InputStream` nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchInput {
    /// Digital values in `[0, 1]`, indexed by the `Generate` nodes' slots.
    pub values: Vec<f64>,
    /// Ready streams, indexed by the `InputStream` nodes' slots.
    pub streams: Vec<Bitstream>,
}

impl BatchInput {
    /// An input set with no values and no streams.
    #[must_use]
    pub fn new() -> Self {
        BatchInput::default()
    }

    /// An input set of digital values only.
    #[must_use]
    pub fn with_values(values: Vec<f64>) -> Self {
        BatchInput {
            values,
            streams: Vec::new(),
        }
    }

    /// An input set of ready streams only.
    #[must_use]
    pub fn with_streams(streams: Vec<Bitstream>) -> Self {
        BatchInput {
            values: Vec::new(),
            streams,
        }
    }
}

/// The named results of executing a plan over one input set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecOutput {
    streams: BTreeMap<String, Bitstream>,
    values: BTreeMap<String, f64>,
}

impl ExecOutput {
    /// The stream captured by the `SinkStream` sink of that name.
    #[must_use]
    pub fn stream(&self, name: &str) -> Option<&Bitstream> {
        self.streams.get(name)
    }

    /// The value captured by the value-producing sink of that name
    /// (`SinkValue`, `SinkCount`, `SinkSum`, or `SccProbe`).
    #[must_use]
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates over `(name, stream)` sink results in name order.
    pub fn streams(&self) -> impl Iterator<Item = (&str, &Bitstream)> {
        self.streams.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over `(name, value)` sink results in name order.
    pub fn values(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Per-execution cache of live source instances, so plan steps that draw from
/// one *logically shared* hardware source (equal [`SourceSpec`], consecutive
/// `skip` ranges) continue a single instance instead of each rebuilding a
/// fresh source and sample-stepping to its position. For the tiled `sc_image`
/// pipeline this turns the per-tile select-sample cost from quadratic in
/// kernels (re-skipping `k·N` samples for kernel `k`) to linear, and the
/// LFSR's companion-matrix [`sc_rng::RandomSource::skip_ahead`] makes the
/// remaining cold positioning logarithmic.
///
/// Correctness: sources are deterministic, so continuing one instance from
/// position `p` is bit-identical to `spec.build_skipped(p)`; any consumer
/// whose requested position does not match the cached position gets a freshly
/// positioned instance.
#[derive(Default)]
struct SourceCache {
    entries: HashMap<SourceSpec, (Box<dyn RandomSource>, u64)>,
}

impl SourceCache {
    /// Returns a source positioned `skip` samples into the spec's sequence
    /// and records that the caller is about to draw `samples` more.
    fn source(&mut self, spec: &SourceSpec, skip: u64, samples: u64) -> &mut dyn RandomSource {
        let entry = self
            .entries
            .entry(spec.clone())
            .and_modify(|(source, position)| {
                if *position != skip {
                    *source = spec.build_skipped(skip);
                    *position = skip;
                }
            })
            .or_insert_with(|| (spec.build_skipped(skip), skip));
        entry.1 += samples;
        entry.0.as_mut()
    }
}

/// Adapter lending a cached source to the by-value converter constructors
/// without giving up ownership.
struct BorrowedSource<'a>(&'a mut dyn RandomSource);

impl RandomSource for BorrowedSource<'_> {
    fn next_unit(&mut self) -> f64 {
        self.0.next_unit()
    }

    fn reset(&mut self) {
        self.0.reset();
    }

    fn kind(&self) -> RngKind {
        self.0.kind()
    }

    fn skip_ahead(&mut self, count: u64) {
        self.0.skip_ahead(count);
    }
}

/// A persistent pool of executor worker threads with a shared job queue.
///
/// Unlike the `std::thread::scope` sharding the executor used before, the
/// pool's threads are **long-lived**: they are spawned once (lazily, on the
/// first parallel dispatch) and stay parked on a condition variable between
/// calls, so a service processing a continuous stream of jobs pays the
/// thread-spawn cost once instead of per dispatch. Tasks are boxed
/// `'static` closures submitted internally by the streaming engine, which
/// wraps every job in its own `catch_unwind` and routes the payload back to
/// the submitting call — the pool itself runs tasks bare and relies on that
/// wrapping, which is why submission is not public API. The pool shuts its
/// workers down (and joins them) on drop.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// A unit of pool work.
pub(crate) type PoolTask = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<PoolQueue>,
    ready: Condvar,
    telemetry: TelemetrySink,
}

#[derive(Default)]
struct PoolQueue {
    tasks: VecDeque<PoolTask>,
    shutdown: bool,
}

impl WorkerPool {
    /// Spawns a pool of `workers` long-lived threads (at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        WorkerPool::with_telemetry(workers, TelemetrySink::default())
    }

    /// Spawns a pool whose workers record [`Stage::WorkerRun`] /
    /// [`Stage::WorkerPark`] spans (with matching busy/idle histograms) and
    /// queue-depth gauges into `telemetry`.
    #[must_use]
    pub fn with_telemetry(workers: usize, telemetry: TelemetrySink) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue::default()),
            ready: Condvar::new(),
            telemetry,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sc-graph-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker threads spawn")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one task for the next free worker.
    pub(crate) fn submit(&self, task: PoolTask) {
        let depth = {
            let mut queue = self
                .shared
                .queue
                .lock()
                .expect("pool queue lock is never poisoned: tasks run outside it");
            queue.tasks.push_back(task);
            queue.tasks.len()
        };
        self.shared
            .telemetry
            .gauge_set(Gauge::QueueDepth, depth as u64);
        self.shared
            .telemetry
            .observe(Hist::QueueDepth, depth as u64);
        self.shared.ready.notify_one();
    }
}

fn worker_loop(shared: &PoolShared) {
    let telemetry = &shared.telemetry;
    loop {
        let task = {
            let mut queue = shared
                .queue
                .lock()
                .expect("pool queue lock is never poisoned: tasks run outside it");
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    telemetry.gauge_set(Gauge::QueueDepth, queue.tasks.len() as u64);
                    break Some(task);
                }
                if queue.shutdown {
                    break None;
                }
                // One park span per condvar sleep (spurious wakeups included);
                // `wait` releases the queue lock, so parked time is genuinely
                // idle time, not lock-held time.
                let park = telemetry.span(Stage::WorkerPark);
                queue = shared
                    .ready
                    .wait(queue)
                    .expect("pool queue lock is never poisoned: tasks run outside it");
                telemetry.observe(Hist::WorkerIdleNs, park.finish());
            }
        };
        match task {
            Some(task) => {
                let run = telemetry.span(Stage::WorkerRun);
                task();
                telemetry.observe(Hist::WorkerBusyNs, run.finish());
            }
            None => return,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Never panic in drop: on the (impossible) poisoned path, take the
        // inner queue anyway so the workers still observe the shutdown flag.
        match self.shared.queue.lock() {
            Ok(mut queue) => queue.shutdown = true,
            Err(poisoned) => poisoned.into_inner().shutdown = true,
        }
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

/// One owned job of a streaming [`Executor::run_stream`] dispatch: a shared
/// handle to the compiled plan plus the input set to feed it.
///
/// Jobs are owned (unlike the borrowed [`ExecJob`]) because the streaming
/// engine hands them to long-lived pool threads: the job — and with it the
/// plan handle — is dropped on the worker *before* its result is reported,
/// so a bounded submission window really does bound the number of
/// simultaneously-live plans.
#[derive(Debug, Clone)]
pub struct StreamJob {
    /// The compiled plan to execute.
    pub plan: Arc<CompiledGraph>,
    /// The input set to feed it.
    pub input: BatchInput,
}

/// What one [`Executor::run_stream_with_stats`] call actually did.
///
/// When the executor carries an enabled [`TelemetrySink`]
/// ([`Executor::with_telemetry`]), these same tallies are also added to the
/// sink's counters (`jobs` → [`Counter::JobsPulled`], the path split →
/// [`Counter::LaneBatchedJobs`] / [`Counter::ScalarJobs`], the fill array →
/// the sink's lane-fill distribution) in one batch at the end of the call —
/// `StreamStats` is the per-call view and the sink is the cumulative view of
/// **one** set of tallies, so the two reporting paths cannot drift. The same
/// holds per plan class: the [`StreamStats::classes`] breakdown is flushed
/// into the sink's bounded class table at the end of the call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total jobs pulled from the iterator.
    pub jobs: usize,
    /// Peak number of jobs *in flight* — pulled from the iterator but not
    /// yet completed (executed inline, or reported back by a worker). This
    /// is **exact** on both dispatch paths, jobs buffered for lane grouping
    /// included, and it never exceeds `window.max(1)` — on the error path
    /// too — which is what makes the bound useful: each worker drops its
    /// job (and plan handle) before reporting, so live-plan memory is
    /// provably O(window).
    pub peak_in_flight: usize,
    /// Jobs executed through the lane-batched lockstep path: groups of ≥ 2
    /// jobs sharing a [`CompiledGraph::plan_class`] whose streams were
    /// transposed into lanes at every FSM-bearing step.
    pub lane_batched_jobs: usize,
    /// Jobs executed solo through the scalar per-job path (plans without
    /// lane-batchable steps, windows of 1, or leftover groups of 1).
    pub scalar_jobs: usize,
    /// How full the executed lane groups were: `lane_group_fill[k]` counts
    /// bucket-origin groups of `k + 1` jobs (so `lane_group_fill[0]` counts
    /// leftover singleton flushes, which execute scalar). Only jobs that
    /// entered a per-class bucket are counted; non-batchable jobs never
    /// appear here. Invariant: `lane_batched_jobs` = Σ over `k ≥ 1` of
    /// `(k + 1) · lane_group_fill[k]`.
    pub lane_group_fill: [usize; LANES],
    /// The same execution tallies keyed by [`CompiledGraph::plan_class`],
    /// in class-id order — so a caller can see *which* compiled class took
    /// the scalar path or under-filled its lane groups. Invariants: the
    /// per-class `lane_batched_jobs` / `scalar_jobs` / `lane_group_fill`
    /// sum (over classes) to the global fields above.
    pub classes: Vec<PlanClassStats>,
}

/// One plan class's slice of a dispatch's [`StreamStats`] tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanClassStats {
    /// The [`CompiledGraph::plan_class`] these tallies belong to.
    pub plan_class: u64,
    /// Jobs of this class executed through the lane-batched lockstep path.
    pub lane_batched_jobs: usize,
    /// Jobs of this class executed through the scalar path.
    pub scalar_jobs: usize,
    /// Lane-group fill distribution for this class (bucket-origin groups
    /// only, like the global array).
    pub lane_group_fill: [usize; LANES],
}

impl PlanClassStats {
    /// Total jobs of this class the dispatch executed.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.lane_batched_jobs + self.scalar_jobs
    }
}

impl StreamStats {
    /// The per-class tally for `plan_class`, created on first sight. The
    /// class list is tiny (one entry per distinct compiled template in the
    /// dispatch), so a linear scan beats hashing.
    fn class_mut(&mut self, plan_class: u64) -> &mut PlanClassStats {
        if let Some(i) = self.classes.iter().position(|c| c.plan_class == plan_class) {
            &mut self.classes[i]
        } else {
            self.classes.push(PlanClassStats {
                plan_class,
                ..PlanClassStats::default()
            });
            self.classes.last_mut().expect("just pushed")
        }
    }
}

/// Executes compiled plans over batches of input sets.
///
/// Every batch item is independent: each execution builds fresh source and
/// FSM instances from the plan's specs, so results are deterministic and
/// identical whether the batch runs on one thread or many. Parallel dispatch
/// runs on a lazily-spawned persistent [`WorkerPool`] (no external
/// dependencies) that lives as long as the executor, so back-to-back calls
/// reuse warm threads. The core engine is [`Executor::run_stream`]:
/// [`Executor::run_batch`] and [`Executor::run_group`] are thin wrappers
/// that stream their materialised job lists with an unbounded window.
#[derive(Debug, Clone)]
pub struct Executor {
    stream_length: usize,
    threads: usize,
    telemetry: TelemetrySink,
    pool: OnceLock<Arc<WorkerPool>>,
}

impl PartialEq for Executor {
    fn eq(&self, other: &Self) -> bool {
        self.stream_length == other.stream_length
            && self.threads == other.threads
            && self.telemetry == other.telemetry
    }
}

impl Eq for Executor {}

/// Default streaming-window factor: [`Executor::default_window`] admits
/// `threads × DEFAULT_WINDOW_FACTOR` planned-but-unfinished jobs, enough to
/// keep every worker busy across job-size imbalance while holding memory at
/// O(window) plans.
pub const DEFAULT_WINDOW_FACTOR: usize = 4;

impl Executor {
    /// An executor generating streams of `stream_length` bits, single-threaded.
    #[must_use]
    pub fn new(stream_length: usize) -> Self {
        Executor {
            stream_length,
            threads: 1,
            telemetry: TelemetrySink::default(),
            pool: OnceLock::new(),
        }
    }

    /// Sets the number of worker threads used by the parallel dispatch paths
    /// (clamped to at least 1). Resets any already-spawned pool so the next
    /// dispatch spawns one of the new size.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.pool = OnceLock::new();
        self
    }

    /// Attaches a [`TelemetrySink`]: subsequent dispatches record per-stage
    /// spans (dispatch, lane-group/scalar execute, worker park/run,
    /// de-transpose), counters, window-occupancy and queue-depth gauges, and
    /// job-latency histograms into it. The default sink is a no-op;
    /// instrumentation sits at step/job granularity, never inside the word
    /// kernels. Resets any already-spawned pool so its workers record into
    /// the new sink.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetrySink) -> Self {
        self.telemetry = telemetry;
        self.pool = OnceLock::new();
        self
    }

    /// The attached telemetry sink (the no-op default unless
    /// [`Executor::with_telemetry`] replaced it).
    #[must_use]
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// The configured stream length `N`.
    #[must_use]
    pub fn stream_length(&self) -> usize {
        self.stream_length
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes the plan over one input set.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ValueSlotOutOfRange`] /
    /// [`GraphError::StreamSlotOutOfRange`] if the input set is narrower than
    /// the plan requires, and [`GraphError::Stream`] if input streams have
    /// mismatched lengths.
    pub fn run(&self, plan: &CompiledGraph, input: &BatchInput) -> Result<ExecOutput, GraphError> {
        execute_plan(self.stream_length, plan, input)
    }
}

/// Per-job execution state threaded through [`execute_step`]: the dense
/// stream-slot environment, the shared-source cache, and the sink results
/// accumulated so far.
struct ExecEnv {
    slots: Vec<Option<Bitstream>>,
    sources: SourceCache,
    out: ExecOutput,
}

impl ExecEnv {
    fn new(slot_count: usize) -> Self {
        ExecEnv {
            slots: vec![None; slot_count],
            sources: SourceCache::default(),
            out: ExecOutput::default(),
        }
    }
}

/// Borrow, never clone: operand reads finish before the destination
/// slot is written, so the streams stay in place across the plan.
fn slot(slots: &[Option<Bitstream>], idx: usize) -> &Bitstream {
    slots[idx]
        .as_ref()
        .expect("topological order guarantees producers run first")
}

/// Executes one plan over one input set at stream length `n`. Free-standing
/// so pool workers can run jobs without capturing an [`Executor`].
fn execute_plan(
    n: usize,
    plan: &CompiledGraph,
    input: &BatchInput,
) -> Result<ExecOutput, GraphError> {
    let mut env = ExecEnv::new(plan.slot_count);
    for step in &plan.steps {
        execute_step(n, step, input, &mut env)?;
    }
    Ok(env.out)
}

/// Executes one plan step against one job's environment — the scalar
/// single-lane unit both [`execute_plan`] and the lockstep group engine
/// ([`execute_plan_group`]) are built from.
fn execute_step(
    n: usize,
    step: &Step,
    input: &BatchInput,
    env: &mut ExecEnv,
) -> Result<(), GraphError> {
    // A fused span executes its sub-steps back to back over the same slot
    // environment — bit-identical to the unfused schedule by construction.
    if let Step::Fused { steps } = step {
        for sub in steps {
            execute_step(n, sub, input, env)?;
        }
        return Ok(());
    }
    let ExecEnv {
        slots,
        sources,
        out,
    } = env;
    {
        match step {
            Step::Input { slot, dst } => {
                let stream = input
                    .streams
                    .get(*slot)
                    .ok_or(GraphError::StreamSlotOutOfRange {
                        slot: *slot,
                        provided: input.streams.len(),
                    })?;
                slots[*dst] = Some(stream.clone());
            }
            Step::Generate {
                slot,
                source,
                skip,
                dst,
            } => {
                let value = *input
                    .values
                    .get(*slot)
                    .ok_or(GraphError::ValueSlotOutOfRange {
                        slot: *slot,
                        provided: input.values.len(),
                    })?;
                let mut d2s = DigitalToStochastic::new(BorrowedSource(
                    sources.source(source, *skip, n as u64),
                ));
                slots[*dst] = Some(d2s.generate(Probability::saturating(value), n));
            }
            Step::Constant {
                probability,
                source,
                skip,
                dst,
            } => {
                let mut d2s = DigitalToStochastic::new(BorrowedSource(
                    sources.source(source, *skip, n as u64),
                ));
                slots[*dst] = Some(d2s.generate(Probability::saturating(*probability), n));
            }
            Step::Manipulate {
                kinds,
                x,
                y,
                dst_x,
                dst_y,
            } => {
                let (sx, sy) = (slot(slots, *x), slot(slots, *y));
                let (ox, oy) = if kinds.len() == 1 {
                    // A single circuit keeps its own word-level fast path.
                    kinds[0].build().process(sx, sy)?
                } else {
                    // A fused run makes one register-staged pass per word.
                    let mut chain = ManipulatorChain::new();
                    for kind in kinds {
                        chain.push_boxed(kind.build());
                    }
                    chain.process(sx, sy)?
                };
                slots[*dst_x] = Some(ox);
                slots[*dst_y] = Some(oy);
            }
            Step::Regenerate {
                source,
                skip,
                src,
                dst,
            } => {
                let mut regen =
                    Regenerator::new(BorrowedSource(sources.source(source, *skip, n as u64)));
                let regenerated = regen.regenerate(slot(slots, *src));
                slots[*dst] = Some(regenerated);
            }
            Step::Not { src, dst } => {
                let complemented = slot(slots, *src).not();
                slots[*dst] = Some(complemented);
            }
            Step::Binary { op, x, y, dst } => {
                let z = apply_binary(*op, slot(slots, *x), slot(slots, *y))?;
                slots[*dst] = Some(z);
            }
            Step::UnaryFsm { op, src, dst } => {
                let z = match op {
                    crate::node::UnaryFsmOp::Stanh { half_states } => {
                        sc_arith::fsm_ops::stanh(slot(slots, *src), *half_states)
                    }
                    crate::node::UnaryFsmOp::Slinear { states } => {
                        sc_arith::fsm_ops::slinear(slot(slots, *src), *states)
                    }
                };
                slots[*dst] = Some(z);
            }
            Step::Divide {
                source,
                skip,
                counter_bits,
                x,
                y,
                dst,
            } => {
                let mut divider = sc_arith::divide::Divider::with_counter_bits(
                    BorrowedSource(sources.source(source, *skip, n as u64)),
                    *counter_bits,
                );
                let z = divider.divide(slot(slots, *x), slot(slots, *y))?;
                slots[*dst] = Some(z);
            }
            Step::MuxAdd {
                select,
                skip,
                x,
                y,
                dst,
            } => {
                let z = {
                    let (sx, sy) = (slot(slots, *x), slot(slots, *y));
                    let sel = half_select_stream(
                        &mut BorrowedSource(sources.source(select, *skip, sx.len() as u64)),
                        sx.len(),
                    );
                    mux_add(sx, sy, &sel)?
                };
                slots[*dst] = Some(z);
            }
            Step::WeightedMux {
                weights,
                select,
                skip,
                srcs,
                dst,
            } => {
                let z = {
                    let refs: Vec<&Bitstream> = srcs.iter().map(|s| slot(slots, *s)).collect();
                    let samples = refs.first().map_or(0, |s| s.len()) as u64;
                    weighted_mux(&refs, weights, sources.source(select, *skip, samples))?
                };
                slots[*dst] = Some(z);
            }
            Step::SinkStream { name, src } => {
                out.streams.insert(name.clone(), slot(slots, *src).clone());
            }
            Step::SinkValue { name, src } => {
                let value = StochasticToDigital::convert(slot(slots, *src)).get();
                out.values.insert(name.clone(), value);
            }
            Step::SinkCount { name, src } => {
                let count = StochasticToDigital::convert_to_count(slot(slots, *src));
                out.values.insert(name.clone(), count as f64);
            }
            Step::SinkSum { name, srcs } => {
                // The APC consumes owned streams; sum sinks are rare
                // enough that the copy is irrelevant.
                let inputs: Vec<Bitstream> = srcs.iter().map(|s| slot(slots, *s).clone()).collect();
                let mut apc = AccumulativeParallelCounter::new(inputs.len());
                apc.accumulate_streams(&inputs)?;
                out.values.insert(name.clone(), apc.sum_of_values());
            }
            Step::SccProbe { name, x, y } => {
                let value = scc(slot(slots, *x), slot(slots, *y));
                out.values.insert(name.clone(), value);
            }
            Step::Fused { .. } => unreachable!("fused spans recurse before the env borrow"),
        }
    }
    Ok(())
}

/// Marks lanes whose step operands differ in length as failed — exactly the
/// error the scalar path would report for that job — and returns the
/// still-live subset, which is safe to feed to a lane kernel.
fn check_pair_lengths(
    envs: &[ExecEnv],
    errs: &mut [Option<GraphError>],
    alive: &[usize],
    x: usize,
    y: usize,
) -> Vec<usize> {
    let mut live = Vec::with_capacity(alive.len());
    for &l in alive {
        let (sx, sy) = (slot(&envs[l].slots, x), slot(&envs[l].slots, y));
        if sx.len() == sy.len() {
            live.push(l);
        } else {
            errs[l] = Some(GraphError::Stream(sc_bitstream::Error::LengthMismatch {
                left: sx.len(),
                right: sy.len(),
            }));
        }
    }
    live
}

/// Executes a group of 2..=[`LANES`] jobs sharing one
/// [`CompiledGraph::plan_class`] in lockstep: all jobs advance through the
/// step list together, and at every FSM-bearing step — manipulator runs,
/// saturating-counter activations, counter-based max/min — the group's
/// streams are transposed into lanes and stepped through one lane-batched
/// kernel pass, so the lanes' serial FSM chains interleave instead of
/// running back to back. Every other step runs scalar per lane against that
/// lane's *own* plan, which is what keeps retargeted same-class templates
/// (identical structure, per-tile sources) correct.
///
/// Per-job results are bit-identical to [`execute_plan`] on each job alone:
/// the lane kernels are pinned bit-identical to their solo circuits, and a
/// lane that fails mid-plan simply drops out (`valid = 0`-style) with the
/// same first error the scalar path reports, without disturbing its peers.
///
/// Records one [`Stage::LaneGroupExecute`] span (argument = group fill) with
/// a nested [`Stage::DeTranspose`] span around the per-lane result
/// re-assembly, and observes the group's duration once per member job in
/// [`Hist::JobLatencyNs`] — the group *is* each member's latency, since the
/// lanes finish together.
pub(crate) fn execute_plan_group(
    n: usize,
    group: &[StreamJob],
    telemetry: &TelemetrySink,
) -> Vec<Result<ExecOutput, GraphError>> {
    let span = telemetry.span_with(Stage::LaneGroupExecute, group.len() as u64);
    debug_assert!(
        (2..=LANES).contains(&group.len()),
        "lane group size {} outside 2..={LANES}",
        group.len()
    );
    debug_assert!(
        group
            .iter()
            .all(|job| job.plan.plan_class() == group[0].plan.plan_class()),
        "lane groups must share one plan class"
    );
    let mut envs: Vec<ExecEnv> = group
        .iter()
        .map(|job| ExecEnv::new(job.plan.slot_count))
        .collect();
    let mut errs: Vec<Option<GraphError>> = (0..group.len()).map(|_| None).collect();
    for i in 0..group[0].plan.steps.len() {
        let alive: Vec<usize> = (0..group.len()).filter(|&l| errs[l].is_none()).collect();
        if alive.is_empty() {
            break;
        }
        // Same-class plans are structurally identical, so the lane-batched
        // arms read the shared structure (slot indices, manipulator kinds,
        // operators) from lane 0's step; the scalar arm runs each lane's own
        // step so per-lane `SourceSpec`s are honoured.
        match &group[0].plan.steps[i] {
            Step::Manipulate {
                kinds,
                x,
                y,
                dst_x,
                dst_y,
            } => {
                let live = check_pair_lengths(&envs, &mut errs, &alive, *x, *y);
                if live.is_empty() {
                    continue;
                }
                let mut chain = LaneChain::new();
                for kind in kinds {
                    chain.push_boxed(kind.build_lanes(live.len()));
                }
                let processed = {
                    let pairs: Vec<(&Bitstream, &Bitstream)> = live
                        .iter()
                        .map(|&l| (slot(&envs[l].slots, *x), slot(&envs[l].slots, *y)))
                        .collect();
                    process_lane_pairs(&mut chain, &pairs).expect("pair lengths pre-checked")
                };
                for (&l, (ox, oy)) in live.iter().zip(processed) {
                    envs[l].slots[*dst_x] = Some(ox);
                    envs[l].slots[*dst_y] = Some(oy);
                }
            }
            Step::Binary {
                op: op @ (BinaryOp::CaMax | BinaryOp::CaMin),
                x,
                y,
                dst,
            } => {
                let live = check_pair_lengths(&envs, &mut errs, &alive, *x, *y);
                if live.is_empty() {
                    continue;
                }
                let results = {
                    let pairs: Vec<(&Bitstream, &Bitstream)> = live
                        .iter()
                        .map(|&l| (slot(&envs[l].slots, *x), slot(&envs[l].slots, *y)))
                        .collect();
                    match op {
                        BinaryOp::CaMax => sc_arith::maxmin::ca_max_lanes(&pairs),
                        _ => sc_arith::maxmin::ca_min_lanes(&pairs),
                    }
                    .expect("pair lengths pre-checked")
                };
                for (&l, z) in live.iter().zip(results) {
                    envs[l].slots[*dst] = Some(z);
                }
            }
            Step::UnaryFsm { op, src, dst } => {
                let results = {
                    let inputs: Vec<&Bitstream> =
                        alive.iter().map(|&l| slot(&envs[l].slots, *src)).collect();
                    match op {
                        crate::node::UnaryFsmOp::Stanh { half_states } => {
                            sc_arith::fsm_ops::stanh_lanes(&inputs, *half_states)
                        }
                        crate::node::UnaryFsmOp::Slinear { states } => {
                            sc_arith::fsm_ops::slinear_lanes(&inputs, *states)
                        }
                    }
                };
                for (&l, z) in alive.iter().zip(results) {
                    envs[l].slots[*dst] = Some(z);
                }
            }
            _ => {
                for &l in &alive {
                    let job = &group[l];
                    if let Err(e) = execute_step(n, &job.plan.steps[i], &job.input, &mut envs[l]) {
                        errs[l] = Some(e);
                    }
                }
            }
        }
    }
    let results = {
        let _detranspose = telemetry.span(Stage::DeTranspose);
        errs.into_iter()
            .zip(envs)
            .map(|(err, env)| match err {
                Some(e) => Err(e),
                None => Ok(env.out),
            })
            .collect()
    };
    let dur_ns = span.finish();
    if telemetry.is_enabled() {
        let class = group[0].plan.plan_class();
        for _ in 0..group.len() {
            telemetry.observe(Hist::JobLatencyNs, dur_ns);
            telemetry.class_latency(class, dur_ns);
        }
    }
    results
}

/// Executes one job solo under a [`Stage::ScalarExecute`] span, observing
/// its duration in [`Hist::JobLatencyNs`] (globally and keyed by the job's
/// plan class).
pub(crate) fn execute_job_scalar(
    n: usize,
    job: &StreamJob,
    telemetry: &TelemetrySink,
) -> Result<ExecOutput, GraphError> {
    let span = telemetry.span(Stage::ScalarExecute);
    let result = execute_plan(n, &job.plan, &job.input);
    let dur_ns = span.finish();
    if telemetry.is_enabled() {
        telemetry.observe(Hist::JobLatencyNs, dur_ns);
        telemetry.class_latency(job.plan.plan_class(), dur_ns);
    }
    result
}

impl Executor {
    /// The default streaming window for this executor's worker count:
    /// `threads × `[`DEFAULT_WINDOW_FACTOR`].
    #[must_use]
    pub fn default_window(&self) -> usize {
        (self.threads * DEFAULT_WINDOW_FACTOR).max(1)
    }

    /// The executor's persistent worker pool, spawned on first use with the
    /// executor's telemetry sink.
    fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(self.pool.get_or_init(|| {
            Arc::new(WorkerPool::with_telemetry(
                self.threads,
                self.telemetry.clone(),
            ))
        }))
    }

    /// Executes the plan over a batch of independent input sets across the
    /// persistent worker pool, preserving input order.
    ///
    /// A thin wrapper over the [`Executor::run_stream`] engine with an
    /// unbounded window (the whole batch is already materialised).
    ///
    /// # Errors
    ///
    /// Propagates the first per-item (in input order) error
    /// (see [`Executor::run`]).
    ///
    /// # Panics
    ///
    /// If an execution panics on a worker thread, the original panic payload
    /// is resumed on the caller's thread.
    pub fn run_batch(
        &self,
        plan: &CompiledGraph,
        inputs: &[BatchInput],
    ) -> Result<Vec<ExecOutput>, GraphError> {
        // Always route through the streaming engine — even single-threaded —
        // so a lane-batchable plan's jobs group into lockstep lanes (one
        // deep plan clone, shared by every job).
        let plan = Arc::new(plan.clone());
        self.run_stream(
            inputs.iter().map(|input| StreamJob {
                plan: Arc::clone(&plan),
                input: input.clone(),
            }),
            inputs.len().max(1),
        )
    }

    /// Executes a heterogeneous group of `(plan, input)` jobs in one
    /// dispatch, preserving job order.
    ///
    /// This is the cross-plan generalisation of [`Executor::run_batch`]: a
    /// whole image's tiles, each compiled (or retargeted) to its own plan,
    /// can saturate the worker pool in a single call instead of serialising
    /// per-plan batches. Like `run_batch` it is a thin wrapper over the
    /// [`Executor::run_stream`] engine with an unbounded window — every
    /// job's plan stays live for the whole call; use `run_stream` with a
    /// bounded window (and a lazy job iterator) to cap that memory.
    ///
    /// # Errors
    ///
    /// Propagates the first per-job (in job order) error
    /// (see [`Executor::run`]).
    ///
    /// # Panics
    ///
    /// If an execution panics on a worker thread, the original panic payload
    /// is resumed on the caller's thread.
    pub fn run_group(&self, jobs: &[ExecJob<'_>]) -> Result<Vec<ExecOutput>, GraphError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        // Jobs referencing the same plan (a retargeted class template shared
        // across tiles, say) share one owned clone, keyed by referent
        // address: the deep-clone count is O(distinct plans), not O(jobs).
        let mut shared: HashMap<*const CompiledGraph, Arc<CompiledGraph>> = HashMap::new();
        self.run_stream(
            jobs.iter().map(move |job| StreamJob {
                plan: Arc::clone(
                    shared
                        .entry(std::ptr::from_ref(job.plan))
                        .or_insert_with(|| Arc::new(job.plan.clone())),
                ),
                input: job.input.clone(),
            }),
            jobs.len().max(1),
        )
    }

    /// Streaming dispatch: pulls jobs from the iterator lazily, keeping at
    /// most `window` planned-but-unfinished jobs alive at any moment, and
    /// returns the results in job order.
    ///
    /// See [`Executor::run_stream_with_stats`] for the full contract.
    ///
    /// # Errors
    ///
    /// Propagates the first per-job (in job order) error.
    pub fn run_stream<I>(&self, jobs: I, window: usize) -> Result<Vec<ExecOutput>, GraphError>
    where
        I: IntoIterator<Item = StreamJob>,
    {
        self.run_stream_with_stats(jobs, window)
            .map(|(outputs, _)| outputs)
    }

    /// The streaming dispatch engine, also reporting what it did.
    ///
    /// The iterator is pulled on the **caller's thread** — so lazy job
    /// construction (plan compilation, cache retargeting) is naturally
    /// serialised and needs no synchronisation — but only when fewer than
    /// `window` jobs are in flight: at most `window` (clamped to ≥ 1)
    /// planned-but-unfinished jobs exist at any moment, and each worker
    /// drops a job (and with it the plan handle) *before* reporting its
    /// result, so the window genuinely bounds live-plan memory at
    /// O(window), not O(total jobs). Results are collected in job order and
    /// are bit-identical at any worker count and any window, because every
    /// job executes with fresh deterministic sources and FSMs.
    ///
    /// With one configured thread the jobs run inline on the caller's
    /// thread (at most `window` planned jobs live at a time), which is also
    /// the sequential reference the parallel path is tested against.
    ///
    /// **Lane batching.** On both paths, jobs whose plans are
    /// [`CompiledGraph::lane_batchable`] buffer into per-class buckets
    /// (windows of ≥ 2 only): when [`sc_core::LANES`] jobs of one
    /// [`CompiledGraph::plan_class`] are in flight — the tiled-pipeline
    /// common case, where one compiled template is retargeted across
    /// tiles — the group executes in lockstep, transposing its streams into
    /// lanes at every FSM-bearing step so the lanes' serial dependency
    /// chains interleave. Results stay bit-identical to solo execution at
    /// any thread count, window, and grouping; [`StreamStats`] reports how
    /// many jobs took each path.
    ///
    /// # Errors
    ///
    /// Propagates the first per-job (in job order) error. Once a job fails,
    /// no further jobs are pulled from the iterator; already-submitted jobs
    /// are drained so the returned error is deterministically the failing
    /// job with the smallest index.
    ///
    /// # Panics
    ///
    /// If a job panics on a worker thread, the original panic payload is
    /// resumed on the caller's thread; the pool's workers survive.
    pub fn run_stream_with_stats<I>(
        &self,
        jobs: I,
        window: usize,
    ) -> Result<(Vec<ExecOutput>, StreamStats), GraphError>
    where
        I: IntoIterator<Item = StreamJob>,
    {
        let window = window.max(1);
        let mut jobs = jobs.into_iter();
        let mut stats = StreamStats::default();
        let n = self.stream_length;
        let telemetry = &self.telemetry;
        let _dispatch = telemetry.span(Stage::Dispatch);

        if self.threads <= 1 {
            // Inline sequential path with a bounded look-ahead: lane-batchable
            // jobs buffer into per-class buckets (at most `window` of them
            // pending) and execute as lockstep lane groups when a bucket
            // fills; everything else runs solo on the spot. In-flight is
            // counted like the pool path — `pulled - completed`, sampled
            // after every pull — so `peak_in_flight` is exact: a scalar job
            // is in flight (on top of the buffered jobs) while it executes,
            // and a buffered job counts from its pull to its group's flush.
            let mut slots: Vec<Option<Result<ExecOutput, GraphError>>> = Vec::new();
            let mut buckets: HashMap<u64, Vec<(usize, StreamJob)>> = HashMap::new();
            let mut pulled = 0usize;
            let mut completed = 0usize;
            let mut exhausted = false;
            let mut failed = false;
            loop {
                while !exhausted && !failed && pulled - completed < window {
                    match jobs.next() {
                        Some(job) => {
                            let index = pulled;
                            pulled += 1;
                            slots.push(None);
                            let in_flight = pulled - completed;
                            stats.peak_in_flight = stats.peak_in_flight.max(in_flight);
                            telemetry.gauge_set(Gauge::WindowOccupancy, in_flight as u64);
                            telemetry.observe(Hist::WindowOccupancy, in_flight as u64);
                            if window >= 2 && job.plan.lane_batchable() {
                                let class = job.plan.plan_class();
                                let bucket = buckets.entry(class).or_default();
                                bucket.push((index, job));
                                if bucket.len() == LANES {
                                    let group = buckets.remove(&class).expect("bucket just filled");
                                    completed += group.len();
                                    failed |= run_group_inline(
                                        n, group, &mut slots, &mut stats, telemetry,
                                    );
                                }
                            } else {
                                stats.scalar_jobs += 1;
                                stats.class_mut(job.plan.plan_class()).scalar_jobs += 1;
                                let result = execute_job_scalar(n, &job, telemetry);
                                failed |= result.is_err();
                                slots[index] = Some(result);
                                completed += 1;
                            }
                        }
                        None => exhausted = true,
                    }
                }
                // No more jobs can be pulled (look-ahead full, iterator done,
                // or a job failed): flush the bucket holding the oldest
                // pending job so the engine always makes progress.
                let Some(class) = oldest_bucket(&buckets) else {
                    break;
                };
                let group = buckets.remove(&class).expect("oldest bucket exists");
                completed += group.len();
                failed |= run_group_inline(n, group, &mut slots, &mut stats, telemetry);
            }
            stats.jobs = pulled;
            stats.classes.sort_by_key(|c| c.plan_class);
            record_stream_totals(telemetry, &stats, &slots);
            let mut outputs = Vec::with_capacity(slots.len());
            for slot in slots {
                outputs.push(slot.expect("every pulled job was executed")?);
            }
            return Ok((outputs, stats));
        }

        let pool = self.pool();
        let (tx, rx) = mpsc::channel::<(usize, JobOutcome)>();
        let mut slots: Vec<Option<Result<ExecOutput, GraphError>>> = Vec::new();
        let mut buckets: HashMap<u64, Vec<(usize, StreamJob)>> = HashMap::new();
        let mut pulled = 0usize;
        let mut submitted = 0usize;
        let mut completed = 0usize;
        let mut exhausted = false;
        let mut failed = false;
        // Counts the submission so the flush logic can tell buffered jobs
        // from ones already on the pool; the pool-side task itself lives in
        // [`submit_group_to_pool`]. `grouped` marks bucket-origin groups
        // (lane fill is a grouping metric, so direct scalar submissions stay
        // out of the fill distribution).
        let submit_group = |group: Vec<(usize, StreamJob)>,
                            stats: &mut StreamStats,
                            submitted: &mut usize,
                            grouped: bool| {
            *submitted += group.len();
            if grouped {
                stats.lane_group_fill[(group.len() - 1).min(LANES - 1)] += 1;
            }
            if group.len() >= 2 {
                stats.lane_batched_jobs += group.len();
            } else {
                stats.scalar_jobs += group.len();
            }
            let entry = stats.class_mut(group[0].1.plan.plan_class());
            if grouped {
                entry.lane_group_fill[(group.len() - 1).min(LANES - 1)] += 1;
            }
            if group.len() >= 2 {
                entry.lane_batched_jobs += group.len();
            } else {
                entry.scalar_jobs += group.len();
            }
            submit_group_to_pool(&pool, &tx, n, group, telemetry);
        };
        loop {
            while !exhausted && !failed && pulled - completed < window {
                match jobs.next() {
                    Some(job) => {
                        let index = pulled;
                        pulled += 1;
                        slots.push(None);
                        let in_flight = pulled - completed;
                        stats.peak_in_flight = stats.peak_in_flight.max(in_flight);
                        telemetry.gauge_set(Gauge::WindowOccupancy, in_flight as u64);
                        telemetry.observe(Hist::WindowOccupancy, in_flight as u64);
                        if window >= 2 && job.plan.lane_batchable() {
                            let class = job.plan.plan_class();
                            let bucket = buckets.entry(class).or_default();
                            bucket.push((index, job));
                            if bucket.len() == LANES {
                                let group = buckets.remove(&class).expect("bucket just filled");
                                submit_group(group, &mut stats, &mut submitted, true);
                            }
                        } else {
                            submit_group(vec![(index, job)], &mut stats, &mut submitted, false);
                        }
                    }
                    None => exhausted = true,
                }
            }
            // Nothing more can be pulled. Once no further pulls will come
            // (iterator done / a job failed) — or every submitted job has
            // already reported, so waiting would deadlock on the buffered
            // jobs — flush the partial buckets to the pool.
            if exhausted || failed || submitted == completed {
                let classes: Vec<u64> = buckets.keys().copied().collect();
                for class in classes {
                    let group = buckets.remove(&class).expect("listed bucket exists");
                    submit_group(group, &mut stats, &mut submitted, true);
                }
            }
            if completed == pulled {
                break;
            }
            let (index, outcome) = rx
                .recv()
                .expect("in-flight jobs hold a live sender, so recv cannot disconnect");
            completed += 1;
            telemetry.gauge_set(Gauge::WindowOccupancy, (pulled - completed) as u64);
            match outcome {
                Ok(result) => {
                    failed |= result.is_err();
                    slots[index] = Some(result);
                }
                // Surface the worker's own panic payload to the caller.
                // Still-queued jobs finish against a dropped receiver and
                // are discarded; the pool itself stays healthy.
                Err(payload) => resume_unwind(payload),
            }
        }
        stats.jobs = pulled;
        stats.classes.sort_by_key(|c| c.plan_class);
        record_stream_totals(telemetry, &stats, &slots);
        let mut outputs = Vec::with_capacity(slots.len());
        for slot in slots {
            outputs.push(slot.expect("every submitted job was drained")?);
        }
        Ok((outputs, stats))
    }
}

/// Adds one finished dispatch's [`StreamStats`] tallies to the sink's
/// cumulative counters in a single batch — the sink's view is *derived from*
/// the per-call stats (never counted separately), so the two cannot drift.
/// Runs on the error path too: a dispatch whose k-th job failed still
/// reports every job it pulled.
fn record_stream_totals(
    telemetry: &TelemetrySink,
    stats: &StreamStats,
    slots: &[Option<Result<ExecOutput, GraphError>>],
) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.add(Counter::JobsPulled, stats.jobs as u64);
    telemetry.add(Counter::LaneBatchedJobs, stats.lane_batched_jobs as u64);
    telemetry.add(Counter::ScalarJobs, stats.scalar_jobs as u64);
    let failures = slots
        .iter()
        .filter(|slot| matches!(slot, Some(Err(_))))
        .count();
    telemetry.add(Counter::JobsFailed, failures as u64);
    for (i, &count) in stats.lane_group_fill.iter().enumerate() {
        telemetry.lane_fill_n(i + 1, count as u64);
    }
    for class in &stats.classes {
        telemetry.class_add_jobs(
            class.plan_class,
            class.lane_batched_jobs as u64,
            class.scalar_jobs as u64,
        );
        for (i, &count) in class.lane_group_fill.iter().enumerate() {
            telemetry.class_fill_n(class.plan_class, i + 1, count as u64);
        }
    }
}

/// Outcome of one pool-executed job: the worker's `catch_unwind` result
/// around the job's execution result.
type JobOutcome = std::thread::Result<Result<ExecOutput, GraphError>>;

/// Submits one group of `(index, job)` pairs to the pool as a single task:
/// the task wraps the whole group in one `catch_unwind` (lane-batched when
/// the group holds ≥ 2 jobs, scalar otherwise) and reports each job's
/// outcome individually. On a panic the group's first index carries the
/// payload — the caller resumes it immediately, so the remaining slots never
/// matter.
fn submit_group_to_pool(
    pool: &WorkerPool,
    tx: &mpsc::Sender<(usize, JobOutcome)>,
    n: usize,
    group: Vec<(usize, StreamJob)>,
    telemetry: &TelemetrySink,
) {
    let tx = tx.clone();
    let telemetry = telemetry.clone();
    pool.submit(Box::new(move || {
        let (indices, jobs): (Vec<usize>, Vec<StreamJob>) = group.into_iter().unzip();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if jobs.len() >= 2 {
                execute_plan_group(n, &jobs, &telemetry)
            } else {
                jobs.iter()
                    .map(|job| execute_job_scalar(n, job, &telemetry))
                    .collect()
            }
        }));
        // Free the jobs — and their plan handles — *before* the results
        // become visible, so the caller cannot over-fill the window while
        // plans linger on workers.
        drop(jobs);
        match outcome {
            Ok(results) => {
                for (index, result) in indices.into_iter().zip(results) {
                    let _ = tx.send((index, Ok(result)));
                }
            }
            Err(payload) => {
                let _ = tx.send((indices[0], Err(payload)));
            }
        }
    }));
}

/// The bucket class holding the smallest pending job index, if any bucket is
/// non-empty — the flush order that keeps inline lane grouping fair to the
/// oldest jobs.
fn oldest_bucket(buckets: &HashMap<u64, Vec<(usize, StreamJob)>>) -> Option<u64> {
    buckets
        .iter()
        .min_by_key(|(_, group)| group.first().map_or(usize::MAX, |(index, _)| *index))
        .map(|(&class, _)| class)
}

/// Executes one buffered group on the caller's thread — lane-batched when it
/// holds ≥ 2 jobs, scalar otherwise — filling each job's result slot.
/// Returns whether any job in the group failed.
fn run_group_inline(
    n: usize,
    group: Vec<(usize, StreamJob)>,
    slots: &mut [Option<Result<ExecOutput, GraphError>>],
    stats: &mut StreamStats,
    telemetry: &TelemetrySink,
) -> bool {
    let (indices, jobs): (Vec<usize>, Vec<StreamJob>) = group.into_iter().unzip();
    stats.lane_group_fill[(jobs.len() - 1).min(LANES - 1)] += 1;
    let entry = stats.class_mut(jobs[0].plan.plan_class());
    entry.lane_group_fill[(jobs.len() - 1).min(LANES - 1)] += 1;
    if jobs.len() >= 2 {
        entry.lane_batched_jobs += jobs.len();
    } else {
        entry.scalar_jobs += jobs.len();
    }
    let results = if jobs.len() >= 2 {
        stats.lane_batched_jobs += jobs.len();
        execute_plan_group(n, &jobs, telemetry)
    } else {
        stats.scalar_jobs += jobs.len();
        jobs.iter()
            .map(|job| execute_job_scalar(n, job, telemetry))
            .collect()
    };
    let mut failed = false;
    for (index, result) in indices.into_iter().zip(results) {
        failed |= result.is_err();
        slots[index] = Some(result);
    }
    failed
}

/// One `(plan, input)` pairing of a heterogeneous [`Executor::run_group`]
/// dispatch.
#[derive(Clone, Copy)]
pub struct ExecJob<'a> {
    /// The compiled plan to execute.
    pub plan: &'a CompiledGraph,
    /// The input set to feed it.
    pub input: &'a BatchInput,
}

/// Splits `0..len` into exactly `min(workers, len).max(1)` contiguous spans
/// whose lengths differ by at most one.
///
/// This replaces `chunks(len.div_ceil(workers))` sharding, which could
/// produce *fewer* chunks than workers and leave the rest idle: 9 inputs on
/// 8 threads made five 2-item chunks — three idle workers and a ~2× tail
/// latency — where this division makes eight chunks of 1–2 items. The
/// per-job streaming engine made it obsolete as the internal dispatch
/// mechanism, but it remains the canonical work division for callers that
/// shard contiguous index ranges themselves (benchmark harnesses, external
/// batch splitters).
#[must_use]
pub fn balanced_spans(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = workers.min(len).max(1);
    let base = len / chunks;
    let extra = len % chunks;
    let mut spans = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        spans.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    spans
}

/// Applies a binary operator through the `sc_arith` word-parallel kernels.
fn apply_binary(
    op: crate::node::BinaryOp,
    x: &Bitstream,
    y: &Bitstream,
) -> Result<Bitstream, GraphError> {
    use crate::node::BinaryOp as B;
    let z = match op {
        B::AndMultiply => sc_arith::multiply::and_multiply(x, y)?,
        B::XnorMultiply => sc_arith::multiply::xnor_multiply(x, y)?,
        B::OrMax => sc_arith::maxmin::or_max(x, y)?,
        B::AndMin => sc_arith::maxmin::and_min(x, y)?,
        B::SaturatingAdd => sc_arith::add::saturating_add(x, y)?,
        B::XorSubtract => sc_arith::subtract::xor_subtract(x, y)?,
        B::CaAdd => sc_arith::add::ca_add(x, y)?,
        B::CaMax => sc_arith::maxmin::ca_max(x, y)?,
        B::CaMin => sc_arith::maxmin::ca_min(x, y)?,
    };
    Ok(z)
}

/// The weighted multiplexer tree: each cycle one input is sampled with
/// probability equal to its weight (cumulative walk over `weights`; leftover
/// mass falls to the last input). The selection sequence is data-independent,
/// so the gather runs word-parallel: per 64 cycles one selection mask is
/// built per input and the output word is one AND-OR per input over the
/// packed words — the generalisation of the `sc_image` Gaussian-blur kernel.
fn weighted_mux(
    inputs: &[&Bitstream],
    weights: &[f64],
    source: &mut dyn RandomSource,
) -> Result<Bitstream, GraphError> {
    let n = inputs[0].len();
    for s in inputs {
        if s.len() != n {
            return Err(GraphError::Stream(sc_bitstream::Error::LengthMismatch {
                left: n,
                right: s.len(),
            }));
        }
    }
    let mut masks = vec![0u64; weights.len()];
    Ok(Bitstream::from_word_fn(n, |w| {
        let valid = inputs[0].word_len(w);
        masks.iter_mut().for_each(|m| *m = 0);
        for i in 0..valid {
            let mut u = source.next_unit();
            let mut selected = weights.len() - 1;
            for (idx, weight) in weights.iter().enumerate() {
                if u < *weight {
                    selected = idx;
                    break;
                }
                u -= weight;
            }
            masks[selected] |= 1u64 << i;
        }
        masks.iter().enumerate().fold(0u64, |out, (k, &mask)| {
            out | (inputs[k].as_words()[w] & mask)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{BinaryOp, ManipulatorKind};
    use crate::{Graph, PlannerOptions};
    use proptest::prelude::*;
    use sc_rng::SourceSpec;

    fn sobol(d: u32) -> SourceSpec {
        SourceSpec::Sobol { dimension: d }
    }

    #[test]
    fn generate_and_sink_round_trip() {
        let mut g = Graph::new();
        let x = g.generate(0, SourceSpec::VanDerCorput { offset: 0 });
        g.sink_value("v", x);
        g.sink_count("c", x);
        g.sink_stream("s", x);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let out = Executor::new(256)
            .run(&plan, &BatchInput::with_values(vec![0.25]))
            .unwrap();
        assert!((out.value("v").unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(out.value("c").unwrap(), 64.0);
        assert_eq!(out.stream("s").unwrap().len(), 256);
        assert_eq!(out.streams().count(), 1);
        assert_eq!(out.values().count(), 2);
    }

    #[test]
    fn missing_inputs_are_reported() {
        let mut g = Graph::new();
        let x = g.generate(2, sobol(1));
        g.sink_value("v", x);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let err = Executor::new(64)
            .run(&plan, &BatchInput::with_values(vec![0.5]))
            .unwrap_err();
        assert!(matches!(err, GraphError::ValueSlotOutOfRange { .. }));

        let mut g = Graph::new();
        let s = g.input_stream(0);
        g.sink_value("v", s);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let err = Executor::new(64)
            .run(&plan, &BatchInput::new())
            .unwrap_err();
        assert!(matches!(err, GraphError::StreamSlotOutOfRange { .. }));
    }

    #[test]
    fn mismatched_input_streams_error() {
        let mut g = Graph::new();
        let a = g.input_stream(0);
        let b = g.input_stream(1);
        let z = g.binary(BinaryOp::CaAdd, a, b);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let bad = BatchInput::with_streams(vec![Bitstream::zeros(64), Bitstream::zeros(65)]);
        assert!(matches!(
            Executor::new(64).run(&plan, &bad),
            Err(GraphError::Stream(_))
        ));
    }

    #[test]
    fn scc_probe_and_sum_sinks() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(1)); // shared spec: positively correlated
        g.scc_probe("scc", x, y);
        g.sink_sum("sum", &[x, y]);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let out = Executor::new(256)
            .run(&plan, &BatchInput::with_values(vec![0.5, 0.5]))
            .unwrap();
        assert!(out.value("scc").unwrap() > 0.99);
        assert!((out.value("sum").unwrap() - 1.0).abs() < 0.02);
    }

    #[test]
    fn auto_inserted_synchronizer_fixes_xor_accuracy() {
        let (px, py) = (0.6, 0.6);
        let build = |options: &PlannerOptions| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(3));
            let z = g.binary(BinaryOp::XorSubtract, x, y);
            g.sink_value("z", z);
            g.compile(options).unwrap()
        };
        let exec = Executor::new(1024);
        let input = BatchInput::with_values(vec![px, py]);
        let broken = exec
            .run(&build(&PlannerOptions::no_repair()), &input)
            .unwrap();
        let repaired = exec
            .run(&build(&PlannerOptions::default()), &input)
            .unwrap();
        // |0.6 − 0.6| = 0: uncorrelated XOR instead computes ≈ 2·p(1−p).
        assert!(broken.value("z").unwrap() > 0.3);
        assert!(repaired.value("z").unwrap() < 0.05);
    }

    #[test]
    fn fused_chain_matches_unfused_bits() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let (a0, a1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 2 }, x, y);
        let (b0, b1) = g.manipulate(ManipulatorKind::Desynchronizer { depth: 1 }, a0, a1);
        g.sink_stream("x", b0);
        g.sink_stream("y", b1);
        let fused = g.compile(&PlannerOptions::default()).unwrap();
        let unfused = g
            .compile(&PlannerOptions {
                fuse: false,
                ..PlannerOptions::default()
            })
            .unwrap();
        let input = BatchInput::with_streams(vec![
            Bitstream::from_fn(301, |i| (i * 7 + 1) % 3 == 0),
            Bitstream::from_fn(301, |i| (i * 5 + 2) % 4 < 2),
        ]);
        let exec = Executor::new(301);
        assert_eq!(
            exec.run(&fused, &input).unwrap(),
            exec.run(&unfused, &input).unwrap()
        );
    }

    #[test]
    fn divide_and_unary_fsm_nodes_execute() {
        let mut g = Graph::new();
        // Positively correlated pair (shared spec): divide needs no repair.
        let x = g.generate(0, SourceSpec::VanDerCorput { offset: 0 });
        let y = g.generate(1, SourceSpec::VanDerCorput { offset: 0 });
        let q = g.divide(
            x,
            y,
            SourceSpec::Lfsr {
                width: 16,
                seed: 0x5A5A,
            },
        );
        g.sink_value("q", q);
        // Bipolar stanh/slinear over an LFSR-generated stream.
        let a = g.generate(
            2,
            SourceSpec::Lfsr {
                width: 16,
                seed: 0xACE1,
            },
        );
        let t = g.stanh(4, a);
        let l = g.slinear(8, a);
        g.sink_value("t", t);
        g.sink_value("l", l);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert!(plan.report().inserted.is_empty(), "{:?}", plan.report());
        let out = Executor::new(2048)
            .run(&plan, &BatchInput::with_values(vec![0.3, 0.6, 0.9]))
            .unwrap();
        assert!(
            (out.value("q").unwrap() - 0.5).abs() < 0.1,
            "0.3 / 0.6 = 0.5, got {}",
            out.value("q").unwrap()
        );
        // Bipolar input value 2·0.9 − 1 = 0.8 saturates stanh high.
        assert!(out.value("t").unwrap() > 0.8);
        assert!(out.value("l").unwrap() > 0.7);
    }

    #[test]
    fn divider_precondition_is_planned() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2)); // independent ⇒ uncorrelated
        let q = g.divide(
            x,
            y,
            SourceSpec::Lfsr {
                width: 16,
                seed: 0x5A5A,
            },
        );
        g.sink_value("q", q);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.report().inserted.len(), 1);
        assert!(plan.report().inserted[0].contains("divide"));
    }

    #[test]
    fn shared_source_cache_matches_per_step_positioning() {
        // Two MUX adders drawing from one logically shared select LFSR via
        // per-node skips, in one plan (cache continues one instance) vs in
        // two separate plans (each positions a fresh instance): identical.
        let n = 301usize;
        let select = SourceSpec::Lfsr {
            width: 16,
            seed: 0x1234,
        };
        let mut shared = Graph::new();
        let a = shared.generate(0, sobol(1));
        let b = shared.generate(1, sobol(2));
        let z0 = shared.mux_add_skipped(a, b, select.clone(), 0);
        let z1 = shared.mux_add_skipped(a, b, select.clone(), n as u64);
        shared.sink_stream("z0", z0);
        shared.sink_stream("z1", z1);
        let plan = shared.compile(&PlannerOptions::default()).unwrap();
        let out = Executor::new(n)
            .run(&plan, &BatchInput::with_values(vec![0.4, 0.7]))
            .unwrap();

        let solo = |skip: u64| {
            let mut g = Graph::new();
            let a = g.generate(0, sobol(1));
            let b = g.generate(1, sobol(2));
            let z = g.mux_add_skipped(a, b, select.clone(), skip);
            g.sink_stream("z", z);
            let plan = g.compile(&PlannerOptions::default()).unwrap();
            Executor::new(n)
                .run(&plan, &BatchInput::with_values(vec![0.4, 0.7]))
                .unwrap()
                .stream("z")
                .unwrap()
                .clone()
        };
        assert_eq!(out.stream("z0").unwrap(), &solo(0));
        assert_eq!(out.stream("z1").unwrap(), &solo(n as u64));
    }

    #[test]
    fn sharded_batch_matches_sequential() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, SourceSpec::Halton { base: 3, offset: 0 });
        let (sx, sy) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        let z = g.binary(BinaryOp::CaAdd, sx, sy);
        g.sink_stream("z", z);
        g.sink_value("zv", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let inputs: Vec<BatchInput> = (0..13)
            .map(|i| BatchInput::with_values(vec![i as f64 / 13.0, 1.0 - i as f64 / 13.0]))
            .collect();
        let sequential = Executor::new(257).run_batch(&plan, &inputs).unwrap();
        let sharded = Executor::new(257)
            .with_threads(4)
            .run_batch(&plan, &inputs)
            .unwrap();
        assert_eq!(sequential, sharded);
        assert_eq!(sequential.len(), 13);
    }

    #[test]
    fn batch_error_propagates_from_workers() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        g.sink_value("v", x);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let mut inputs = vec![BatchInput::with_values(vec![0.5]); 6];
        inputs[4] = BatchInput::new(); // missing value slot
        let err = Executor::new(64)
            .with_threads(3)
            .run_batch(&plan, &inputs)
            .unwrap_err();
        assert!(matches!(err, GraphError::ValueSlotOutOfRange { .. }));
    }

    /// Work is divided into exactly `min(workers, len)` near-equal spans:
    /// the awkward sizes that used to strand workers idle (9 inputs on 8
    /// threads → five `div_ceil`-sized chunks, three idle threads) now
    /// produce one span per worker, covering `0..len` in order.
    #[test]
    fn balanced_spans_use_every_worker() {
        for (len, workers) in [
            (9usize, 8usize),
            (17, 16),
            (65, 64),
            (13, 4),
            (8, 8),
            (3, 8),
        ] {
            let spans = balanced_spans(len, workers);
            assert_eq!(
                spans.len(),
                workers.min(len),
                "chunk count for {len} items on {workers} workers"
            );
            let sizes: Vec<usize> = spans.iter().map(|s| s.end - s.start).collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(min >= 1, "{len}/{workers}: no empty spans");
            assert!(
                max - min <= 1,
                "{len}/{workers}: near-equal sizes {sizes:?}"
            );
            let mut next = 0;
            for span in &spans {
                assert_eq!(span.start, next, "{len}/{workers}: contiguous in order");
                next = span.end;
            }
            assert_eq!(next, len, "{len}/{workers}: full coverage");
        }
        assert!(balanced_spans(0, 4).len() == 1 && balanced_spans(0, 4)[0].is_empty());
    }

    /// A poisoned `InputStream` (length mismatch) on one shard must surface
    /// as an error — not a panic — while a run without the poisoned item
    /// keeps every shard's results in input order.
    #[test]
    fn poisoned_shard_errors_while_others_stay_ordered() {
        let mut g = Graph::new();
        let s = g.input_stream(0);
        let t = g.input_stream(1);
        let z = g.binary(BinaryOp::CaAdd, s, t);
        g.sink_count("ones", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let n = 96usize;
        let item = |ones: usize| {
            BatchInput::with_streams(vec![
                Bitstream::from_fn(n, |i| i < ones),
                Bitstream::zeros(n),
            ])
        };
        // 9 items on 8 workers: the balanced division gives every worker a
        // shard; item 3's second stream is poisoned with a bad length.
        let mut inputs: Vec<BatchInput> = (0..9).map(item).collect();
        inputs[3].streams[1] = Bitstream::zeros(n + 1);
        let exec = Executor::new(n).with_threads(8);
        let err = exec.run_batch(&plan, &inputs).unwrap_err();
        assert!(matches!(err, GraphError::Stream(_)), "errors, not panics");
        // Healthy inputs: results arrive in input order across all shards,
        // identical to the sequential reference, and item-distinct (so a
        // mis-stitched order could not pass by coincidence).
        let inputs: Vec<BatchInput> = (0..9).map(item).collect();
        let sharded = exec.run_batch(&plan, &inputs).unwrap();
        let sequential = Executor::new(n).run_batch(&plan, &inputs).unwrap();
        assert_eq!(sharded, sequential, "shard results stitched in input order");
        let counts: Vec<f64> = sharded.iter().map(|o| o.value("ones").unwrap()).collect();
        let mut sorted = counts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(counts, sorted, "per-item counts grow with input index");
    }

    /// Heterogeneous dispatch: different plans in one sharded call produce
    /// exactly what running each plan alone produces, in job order, at any
    /// thread count.
    #[test]
    fn run_group_matches_individual_runs() {
        let make_plan = |flip: bool| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let z = if flip {
                g.binary(BinaryOp::AndMultiply, x, y)
            } else {
                g.binary(BinaryOp::CaAdd, x, y)
            };
            g.sink_value("z", z);
            g.compile(&PlannerOptions::default()).unwrap()
        };
        let plans: Vec<CompiledGraph> = (0..7).map(|i| make_plan(i % 2 == 0)).collect();
        let inputs: Vec<BatchInput> = (0..7)
            .map(|i| BatchInput::with_values(vec![i as f64 / 7.0, 1.0 - i as f64 / 9.0]))
            .collect();
        let jobs: Vec<ExecJob<'_>> = plans
            .iter()
            .zip(&inputs)
            .map(|(plan, input)| ExecJob { plan, input })
            .collect();
        let solo: Vec<ExecOutput> = jobs
            .iter()
            .map(|j| Executor::new(193).run(j.plan, j.input).unwrap())
            .collect();
        for threads in [1usize, 3, 8] {
            let grouped = Executor::new(193)
                .with_threads(threads)
                .run_group(&jobs)
                .unwrap();
            assert_eq!(grouped, solo, "threads={threads}");
        }
        assert!(Executor::new(193).run_group(&[]).unwrap().is_empty());
    }

    #[test]
    fn executor_accessors() {
        let exec = Executor::new(128).with_threads(0);
        assert_eq!(exec.stream_length(), 128);
        assert_eq!(exec.threads(), 1);
        assert_eq!(exec.default_window(), DEFAULT_WINDOW_FACTOR);
        assert_eq!(
            Executor::new(128).with_threads(3).default_window(),
            3 * DEFAULT_WINDOW_FACTOR
        );
        assert_eq!(Executor::new(128), Executor::new(128).clone());
        assert_ne!(Executor::new(128), Executor::new(129));
    }

    /// A small family of distinct plans plus inputs for streaming tests.
    fn stream_fixture(len: usize) -> (Vec<Arc<CompiledGraph>>, Vec<BatchInput>) {
        let make_plan = |flip: bool| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let z = if flip {
                g.binary(BinaryOp::AndMultiply, x, y)
            } else {
                g.binary(BinaryOp::CaAdd, x, y)
            };
            g.sink_value("z", z);
            g.sink_stream("s", z);
            Arc::new(g.compile(&PlannerOptions::default()).unwrap())
        };
        let plans: Vec<Arc<CompiledGraph>> = (0..len).map(|i| make_plan(i % 2 == 0)).collect();
        let inputs: Vec<BatchInput> = (0..len)
            .map(|i| {
                BatchInput::with_values(vec![
                    (i + 1) as f64 / (len + 1) as f64,
                    1.0 - i as f64 / (len + 2) as f64,
                ])
            })
            .collect();
        (plans, inputs)
    }

    /// The acceptance matrix: streaming with windows {1, threads, 4×threads,
    /// unbounded} is bit-identical to the full `run_group` dispatch and to
    /// the sequential per-job loop, at 1 and N threads, and the engine never
    /// reports more in-flight jobs than the window admits.
    #[test]
    fn run_stream_matches_group_and_sequential_at_all_windows() {
        let n = 193usize;
        let (plans, inputs) = stream_fixture(11);
        let solo: Vec<ExecOutput> = plans
            .iter()
            .zip(&inputs)
            .map(|(plan, input)| Executor::new(n).run(plan, input).unwrap())
            .collect();
        let jobs: Vec<ExecJob<'_>> = plans
            .iter()
            .zip(&inputs)
            .map(|(plan, input)| ExecJob { plan, input })
            .collect();
        for threads in [1usize, 3, 8] {
            let exec = Executor::new(n).with_threads(threads);
            let grouped = exec.run_group(&jobs).unwrap();
            assert_eq!(grouped, solo, "run_group, threads={threads}");
            for window in [1usize, threads, 4 * threads, usize::MAX] {
                let stream_jobs = plans.iter().zip(&inputs).map(|(plan, input)| StreamJob {
                    plan: Arc::clone(plan),
                    input: input.clone(),
                });
                let (streamed, stats) = exec.run_stream_with_stats(stream_jobs, window).unwrap();
                assert_eq!(streamed, solo, "threads={threads}, window={window}");
                assert_eq!(stats.jobs, plans.len());
                assert!(
                    stats.peak_in_flight <= window.max(1),
                    "threads={threads}, window={window}: peak {} in flight",
                    stats.peak_in_flight
                );
                assert!(stats.peak_in_flight >= 1);
            }
        }
    }

    /// Streaming edge case: an empty job iterator completes immediately with
    /// no results — on the inline path and on the pool path alike.
    #[test]
    fn run_stream_empty_job_list() {
        for threads in [1usize, 4] {
            let exec = Executor::new(64).with_threads(threads);
            let (outputs, stats) = exec.run_stream_with_stats(std::iter::empty(), 7).unwrap();
            assert!(outputs.is_empty());
            assert_eq!(stats, StreamStats::default());
        }
        assert!(Executor::new(64).run_group(&[]).unwrap().is_empty());
    }

    /// Streaming edge case: zero-length streams execute (every op yields an
    /// empty stream; counts are 0) rather than panicking in the word kernels.
    #[test]
    fn run_stream_zero_length_streams() {
        let mut g = Graph::new();
        let a = g.input_stream(0);
        let b = g.input_stream(1);
        let z = g.binary(BinaryOp::CaAdd, a, b);
        g.sink_stream("s", z);
        g.sink_count("c", z);
        let plan = Arc::new(g.compile(&PlannerOptions::default()).unwrap());
        for threads in [1usize, 3] {
            let exec = Executor::new(0).with_threads(threads);
            let jobs = (0..5).map(|_| StreamJob {
                plan: Arc::clone(&plan),
                input: BatchInput::with_streams(vec![Bitstream::zeros(0), Bitstream::zeros(0)]),
            });
            let (outputs, stats) = exec.run_stream_with_stats(jobs, 2).unwrap();
            assert_eq!(outputs.len(), 5);
            assert!(stats.peak_in_flight <= 2);
            for out in &outputs {
                assert_eq!(out.stream("s").unwrap().len(), 0);
                assert_eq!(out.value("c").unwrap(), 0.0);
            }
        }
    }

    /// A window of 1 serialises planning against execution completely and
    /// still matches the unbounded dispatch bit for bit.
    #[test]
    fn run_stream_window_of_one() {
        let n = 257usize;
        let (plans, inputs) = stream_fixture(6);
        let job_iter = || {
            plans
                .iter()
                .zip(&inputs)
                .map(|(plan, input)| StreamJob {
                    plan: Arc::clone(plan),
                    input: input.clone(),
                })
                .collect::<Vec<_>>()
        };
        let exec = Executor::new(n).with_threads(4);
        let (narrow, narrow_stats) = exec.run_stream_with_stats(job_iter(), 1).unwrap();
        let (wide, _) = exec.run_stream_with_stats(job_iter(), usize::MAX).unwrap();
        assert_eq!(narrow, wide);
        assert_eq!(narrow_stats.peak_in_flight, 1);
    }

    /// The lane-batched path: a family of same-class jobs (one shared plan
    /// with manipulator, counter-max, and activation steps) groups into
    /// lockstep lanes at 1 and N threads and stays bit-identical to solo
    /// execution, leftover partial groups included.
    #[test]
    fn lane_batched_stream_matches_solo() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, SourceSpec::Halton { base: 3, offset: 0 });
        let (sx, sy) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        let (dx, dy) = g.manipulate(ManipulatorKind::Decorrelator { depth: 4 }, sx, sy);
        let z = g.binary(BinaryOp::CaMax, dx, dy);
        let t = g.stanh(2, z);
        g.sink_stream("z", z);
        g.sink_stream("t", t);
        let plan = Arc::new(g.compile(&PlannerOptions::default()).unwrap());
        assert!(plan.lane_batchable());
        let n = 257usize;
        let inputs: Vec<BatchInput> = (0..11)
            .map(|i| BatchInput::with_values(vec![i as f64 / 11.0, 1.0 - i as f64 / 13.0]))
            .collect();
        let solo: Vec<ExecOutput> = inputs
            .iter()
            .map(|input| Executor::new(n).run(&plan, input).unwrap())
            .collect();
        for threads in [1usize, 4] {
            let exec = Executor::new(n).with_threads(threads);
            let jobs = inputs.iter().map(|input| StreamJob {
                plan: Arc::clone(&plan),
                input: input.clone(),
            });
            let (streamed, stats) = exec.run_stream_with_stats(jobs, 8).unwrap();
            assert_eq!(streamed, solo, "threads={threads}");
            assert_eq!(stats.lane_batched_jobs + stats.scalar_jobs, inputs.len());
            // 11 same-class jobs at window 8: two full lane groups plus a
            // leftover group of 3, all lane-batched.
            assert_eq!(stats.lane_batched_jobs, inputs.len(), "threads={threads}");
            // run_batch routes through the same engine, lanes included.
            assert_eq!(exec.run_batch(&plan, &inputs).unwrap(), solo);
        }
        // A window of 1 disables grouping entirely.
        let jobs = inputs.iter().map(|input| StreamJob {
            plan: Arc::clone(&plan),
            input: input.clone(),
        });
        let (narrow, stats) = Executor::new(n).run_stream_with_stats(jobs, 1).unwrap();
        assert_eq!(narrow, solo);
        assert_eq!(stats.lane_batched_jobs, 0);
        assert_eq!(stats.scalar_jobs, inputs.len());
    }

    /// A failing lane (missing value slot) drops out of its group with the
    /// same error the scalar path reports, without disturbing its peers.
    #[test]
    fn lane_batched_group_isolates_failing_lane() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let (sx, sy) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        g.sink_stream("x", sx);
        g.sink_stream("y", sy);
        let plan = Arc::new(g.compile(&PlannerOptions::default()).unwrap());
        let good = BatchInput::with_values(vec![0.4, 0.7]);
        let jobs = vec![
            StreamJob {
                plan: Arc::clone(&plan),
                input: good.clone(),
            },
            StreamJob {
                plan: Arc::clone(&plan),
                input: BatchInput::new(), // missing both value slots
            },
            StreamJob {
                plan: Arc::clone(&plan),
                input: good.clone(),
            },
        ];
        let results = execute_plan_group(64, &jobs, &TelemetrySink::default());
        assert_eq!(results.len(), 3);
        let expected = Executor::new(64).run(&plan, &good).unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &expected);
        assert!(matches!(
            results[1],
            Err(GraphError::ValueSlotOutOfRange { .. })
        ));
        assert_eq!(results[2].as_ref().unwrap(), &expected);
    }

    /// Once a job fails, the error returned is deterministically the failing
    /// job with the smallest index, regardless of scheduling.
    #[test]
    fn run_stream_reports_first_error_in_job_order() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        g.sink_value("v", x);
        let plan = Arc::new(g.compile(&PlannerOptions::default()).unwrap());
        let exec = Executor::new(64).with_threads(4);
        for _ in 0..16 {
            let jobs = (0..12).map(|i| StreamJob {
                plan: Arc::clone(&plan),
                // Jobs 3 and 7 are missing their value slot.
                input: if i == 3 || i == 7 {
                    BatchInput::new()
                } else {
                    BatchInput::with_values(vec![0.5])
                },
            });
            let err = exec.run_stream(jobs, 4).unwrap_err();
            assert!(
                matches!(err, GraphError::ValueSlotOutOfRange { provided: 0, .. }),
                "unexpected error {err:?}"
            );
        }
    }

    /// A lane-batchable plan (synchronizer step) for the streaming tests.
    fn batchable_plan() -> Arc<CompiledGraph> {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let (sx, sy) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        g.sink_stream("x", sx);
        g.sink_stream("y", sy);
        Arc::new(g.compile(&PlannerOptions::default()).unwrap())
    }

    /// Jobs a report says were executed: one [`Stage::ScalarExecute`] span
    /// per scalar job plus each [`Stage::LaneGroupExecute`] span's group size
    /// carried in its arg.
    fn executed_jobs(report: &sc_telemetry::TelemetryReport) -> u64 {
        report.stage_totals(Stage::ScalarExecute).0
            + report.stage_args_total(Stage::LaneGroupExecute)
    }

    /// `peak_in_flight` is exact on the inline path: a buffered
    /// lane-grouping job counts from its pull to its group's flush, so the
    /// peak equals the window while grouping is active (not 1, as a
    /// count-at-execute would report), and caps at [`LANES`] under an
    /// unbounded window.
    #[test]
    fn inline_peak_in_flight_is_exact() {
        let plan = batchable_plan();
        let exec = Executor::new(64);
        let jobs = |count: usize| {
            let plan = Arc::clone(&plan);
            (0..count).map(move |_| StreamJob {
                plan: Arc::clone(&plan),
                input: BatchInput::with_values(vec![0.4, 0.7]),
            })
        };

        // Window 3 never fills a LANES-sized bucket: every group flushes at
        // the window boundary with 3 members, and the peak is the window.
        let (_, stats) = exec.run_stream_with_stats(jobs(9), 3).unwrap();
        assert_eq!(stats.peak_in_flight, 3);
        assert_eq!(stats.lane_group_fill, [0, 0, 3, 0]);
        assert_eq!(stats.lane_batched_jobs, 9);
        assert_eq!(stats.scalar_jobs, 0);

        // Unbounded window: buckets flush at LANES, so the peak is LANES and
        // 9 jobs split into two full groups plus a singleton flush (which
        // executes scalar).
        let (_, stats) = exec.run_stream_with_stats(jobs(9), usize::MAX).unwrap();
        assert_eq!(stats.peak_in_flight, LANES);
        assert_eq!(stats.lane_group_fill, [1, 0, 0, 2]);
        assert_eq!(stats.lane_batched_jobs, 2 * LANES);
        assert_eq!(stats.scalar_jobs, 1);

        // A window of 1 disables grouping entirely: scalar, peak 1.
        let (_, stats) = exec.run_stream_with_stats(jobs(9), 1).unwrap();
        assert_eq!(stats.peak_in_flight, 1);
        assert_eq!(stats.lane_group_fill, [0; LANES]);
        assert_eq!(stats.scalar_jobs, 9);
    }

    /// The `StreamStats.classes` breakdown partitions the global tallies on
    /// both dispatch paths — per-class lane/scalar/fill sums reproduce the
    /// global fields — and the sink's bounded class table carries the same
    /// numbers plus one latency sample per job of the class.
    #[test]
    fn stream_stats_attribute_jobs_per_plan_class() {
        let a = batchable_plan();
        let b = batchable_plan(); // same shape, fresh compile → distinct class
        assert_ne!(a.plan_class(), b.plan_class());
        for threads in [1usize, 4] {
            let sink = TelemetrySink::new();
            let exec = Executor::new(64)
                .with_threads(threads)
                .with_telemetry(sink.clone());
            let jobs = (0..12).map(|i| StreamJob {
                plan: Arc::clone(if i % 3 == 0 { &a } else { &b }),
                input: BatchInput::with_values(vec![0.4, 0.7]),
            });
            let (_, stats) = exec.run_stream_with_stats(jobs, usize::MAX).unwrap();

            assert_eq!(stats.classes.len(), 2, "{threads} threads");
            assert!(
                stats
                    .classes
                    .windows(2)
                    .all(|w| w[0].plan_class < w[1].plan_class),
                "classes are sorted by id"
            );
            assert_eq!(
                stats
                    .classes
                    .iter()
                    .map(PlanClassStats::jobs)
                    .sum::<usize>(),
                stats.jobs
            );
            assert_eq!(
                stats
                    .classes
                    .iter()
                    .map(|c| c.lane_batched_jobs)
                    .sum::<usize>(),
                stats.lane_batched_jobs
            );
            assert_eq!(
                stats.classes.iter().map(|c| c.scalar_jobs).sum::<usize>(),
                stats.scalar_jobs
            );
            for k in 0..LANES {
                assert_eq!(
                    stats
                        .classes
                        .iter()
                        .map(|c| c.lane_group_fill[k])
                        .sum::<usize>(),
                    stats.lane_group_fill[k],
                    "fill-{} groups partition per class",
                    k + 1
                );
            }
            let jobs_of = |class: u64| {
                stats
                    .classes
                    .iter()
                    .find(|c| c.plan_class == class)
                    .map_or(0, PlanClassStats::jobs)
            };
            assert_eq!(jobs_of(a.plan_class()), 4);
            assert_eq!(jobs_of(b.plan_class()), 8);

            // The sink's class table is the cumulative view of the same
            // tallies, with a latency observation per executed job.
            let report = sink.drain();
            assert_eq!(report.classes().len(), 2);
            for class in &stats.classes {
                let reported = report.class(class.plan_class).expect("class reported");
                assert_eq!(reported.lane_batched_jobs, class.lane_batched_jobs as u64);
                assert_eq!(reported.scalar_jobs, class.scalar_jobs as u64);
                assert_eq!(reported.latency.count, class.jobs() as u64);
                for (k, &count) in class.lane_group_fill.iter().enumerate() {
                    assert_eq!(reported.lane_group_fill[k], count as u64);
                }
            }
        }
    }

    /// The documented window bound `peak_in_flight ≤ window.max(1)` holds on
    /// both dispatch paths, for successful runs and for runs whose k-th job
    /// fails. On the error path the stats struct never comes back, so the
    /// bound is read from the sink's window-occupancy gauge peak — the same
    /// tally, sampled at the same points.
    #[test]
    fn peak_in_flight_bounded_by_window_on_both_paths() {
        let plan = batchable_plan();
        for threads in [1usize, 4] {
            for window in [1usize, 3, usize::MAX] {
                for fail_at in [None, Some(5usize)] {
                    let sink = TelemetrySink::new();
                    let exec = Executor::new(64)
                        .with_threads(threads)
                        .with_telemetry(sink.clone());
                    let jobs = (0..10).map(|i| StreamJob {
                        plan: Arc::clone(&plan),
                        input: if fail_at == Some(i) {
                            BatchInput::new() // missing both value slots
                        } else {
                            BatchInput::with_values(vec![0.4, 0.7])
                        },
                    });
                    let result = exec.run_stream_with_stats(jobs, window);
                    let peak = match (&result, fail_at) {
                        (Ok((_, stats)), None) => stats.peak_in_flight as u64,
                        (Err(GraphError::ValueSlotOutOfRange { .. }), Some(_)) => {
                            sink.drain().gauge(Gauge::WindowOccupancy).1
                        }
                        other => panic!(
                            "unexpected outcome at {threads} threads, \
                             window {window}: {other:?}"
                        ),
                    };
                    assert!(
                        peak as usize <= window.clamp(1, 10),
                        "{threads} threads, window {window}, fail {fail_at:?}: \
                         peak {peak} exceeds the window"
                    );
                    assert!(peak >= 1);
                }
            }
        }
    }

    /// A stream whose k-th job fails still yields a drainable, *consistent*
    /// report: every pulled job was executed under a closed span
    /// (scalar-span count plus lane-group span args == `JobsPulled` == the
    /// job-latency histogram count), exactly one failure is counted, and the
    /// path-split counters partition the pulled jobs — at 1 and 4 threads,
    /// window 1 and unbounded.
    #[test]
    fn failing_stream_telemetry_is_consistent() {
        let plan = batchable_plan();
        for threads in [1usize, 4] {
            for window in [1usize, usize::MAX] {
                let sink = TelemetrySink::new();
                let exec = Executor::new(64)
                    .with_threads(threads)
                    .with_telemetry(sink.clone());
                let jobs = (0..10).map(|i| StreamJob {
                    plan: Arc::clone(&plan),
                    input: if i == 5 {
                        BatchInput::new()
                    } else {
                        BatchInput::with_values(vec![0.4, 0.7])
                    },
                });
                let err = exec.run_stream(jobs, window).unwrap_err();
                assert!(matches!(err, GraphError::ValueSlotOutOfRange { .. }));

                let report = sink.drain();
                let pulled = report.counter(Counter::JobsPulled);
                assert!(
                    pulled >= 6,
                    "the failing job itself must have been pulled, got {pulled}"
                );
                assert_eq!(
                    executed_jobs(&report),
                    pulled,
                    "{threads} threads, window {window}: every pulled job \
                     closes a span even when the stream errors"
                );
                assert_eq!(report.histogram(Hist::JobLatencyNs).count, pulled);
                assert_eq!(report.counter(Counter::JobsFailed), 1);
                assert_eq!(
                    report.counter(Counter::LaneBatchedJobs) + report.counter(Counter::ScalarJobs),
                    pulled,
                    "the lane/scalar split partitions the pulled jobs"
                );
            }
        }
    }

    /// The sink's counters are *derived from* [`StreamStats`] — one flush per
    /// dispatch — so after any number of dispatches the cumulative counters
    /// equal the sum of the per-call stats, field for field.
    #[test]
    fn sink_counters_are_derived_from_stream_stats() {
        let plan = batchable_plan();
        let sink = TelemetrySink::new();
        let exec = Executor::new(64).with_telemetry(sink.clone());
        let mut total_jobs = 0u64;
        let mut total_batched = 0u64;
        let mut total_scalar = 0u64;
        let mut total_fill = [0u64; LANES];
        for count in [9usize, 5] {
            let jobs = (0..count).map(|_| StreamJob {
                plan: Arc::clone(&plan),
                input: BatchInput::with_values(vec![0.4, 0.7]),
            });
            let (_, stats) = exec.run_stream_with_stats(jobs, usize::MAX).unwrap();
            total_jobs += stats.jobs as u64;
            total_batched += stats.lane_batched_jobs as u64;
            total_scalar += stats.scalar_jobs as u64;
            for (t, s) in total_fill.iter_mut().zip(stats.lane_group_fill) {
                *t += s as u64;
            }
        }
        let report = sink.drain();
        assert_eq!(report.counter(Counter::JobsPulled), total_jobs);
        assert_eq!(report.counter(Counter::LaneBatchedJobs), total_batched);
        assert_eq!(report.counter(Counter::ScalarJobs), total_scalar);
        assert_eq!(report.counter(Counter::JobsFailed), 0);
        assert_eq!(&report.lane_group_fill()[..LANES], &total_fill);
        assert_eq!(executed_jobs(&report), total_jobs);
    }

    /// The pool is persistent: repeated dispatches on one executor reuse its
    /// warm workers and stay bit-identical call after call.
    #[test]
    fn worker_pool_persists_across_dispatches() {
        let n = 129usize;
        let (plans, inputs) = stream_fixture(9);
        let exec = Executor::new(n).with_threads(4);
        let jobs: Vec<ExecJob<'_>> = plans
            .iter()
            .zip(&inputs)
            .map(|(plan, input)| ExecJob { plan, input })
            .collect();
        let first = exec.run_group(&jobs).unwrap();
        for _ in 0..5 {
            assert_eq!(exec.run_group(&jobs).unwrap(), first);
        }
        // A standalone pool drains and joins cleanly on drop.
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        drop(pool);
    }

    proptest! {
        /// `balanced_spans` across random shapes up to 1000: exactly
        /// `min(workers, len)` spans, covering `0..len` contiguously in
        /// order, with sizes differing by at most one.
        #[test]
        fn balanced_spans_properties(len in 0usize..=1000, workers in 1usize..=64) {
            let spans = balanced_spans(len, workers);
            prop_assert_eq!(spans.len(), workers.min(len).max(1));
            let mut next = 0usize;
            let mut min_size = usize::MAX;
            let mut max_size = 0usize;
            for span in &spans {
                prop_assert_eq!(span.start, next, "contiguous, in order");
                next = span.end;
                let size = span.end - span.start;
                min_size = min_size.min(size);
                max_size = max_size.max(size);
            }
            prop_assert_eq!(next, len, "full coverage");
            prop_assert!(max_size - min_size <= 1, "near-equal sizes");
            if len >= workers {
                prop_assert!(min_size >= 1, "no stranded worker");
            }
        }

        /// Random job counts, windows, and thread counts: streaming always
        /// matches the sequential per-job reference.
        #[test]
        fn run_stream_random_shapes_match_sequential(
            len in 0usize..20,
            window in 1usize..8,
            threads in 1usize..6,
        ) {
            let n = 97usize;
            let (plans, inputs) = stream_fixture(len);
            let solo: Vec<ExecOutput> = plans
                .iter()
                .zip(&inputs)
                .map(|(plan, input)| Executor::new(n).run(plan, input).unwrap())
                .collect();
            let jobs = plans.iter().zip(&inputs).map(|(plan, input)| StreamJob {
                plan: Arc::clone(plan),
                input: input.clone(),
            });
            let (streamed, stats) = Executor::new(n)
                .with_threads(threads)
                .run_stream_with_stats(jobs, window)
                .unwrap();
            prop_assert_eq!(streamed, solo);
            prop_assert!(stats.peak_in_flight <= window);
        }
    }
}
