//! The `sc_graph` → `sc_hwcost` bridge: derive a gate-level area / power /
//! energy report for a compiled plan.
//!
//! Every operation of a [`CompiledGraph`] — including manipulators the
//! planner auto-inserted — maps to the netlist of the hardware block that
//! would implement it (the `sc_hwcost::characterize` library), and the plan's
//! cost is the merge of all of them. Sinks that merely observe streams in
//! software (`SinkStream`) are free; value sinks are S/D converters; probes
//! are costed as the pair of counters they would need.
//!
//! The absolute numbers inherit the calibration caveats of `sc_hwcost`:
//! consume them as ratios between designs, exactly like the paper's
//! Table III / Table IV columns.

use crate::compile::{CompiledGraph, Step};
use crate::node::{BinaryOp, ManipulatorKind, NodeOp, UnaryFsmOp};
use sc_hwcost::{characterize, Netlist, Primitive};
use sc_rng::SourceSpec;

/// Default binary precision assumed for converters (`log2 N` for the paper's
/// `N = 256`).
pub const DEFAULT_CONVERTER_BITS: u32 = 8;

/// Netlist of the hardware source a [`SourceSpec`] describes.
#[must_use]
pub fn source_netlist(spec: &SourceSpec, converter_bits: u32) -> Netlist {
    match spec {
        SourceSpec::Lfsr { width, .. } => characterize::lfsr_rng(*width),
        SourceSpec::VanDerCorput { .. } | SourceSpec::Halton { .. } | SourceSpec::Sobol { .. } => {
            characterize::low_discrepancy_rng(converter_bits)
        }
        SourceSpec::Counter { .. } => {
            Netlist::new("counter-src").with(Primitive::Counter(converter_bits), 1)
        }
        // SourceSpec is non_exhaustive: cost any future family like the
        // low-discrepancy generators until a dedicated model exists.
        _ => characterize::low_discrepancy_rng(converter_bits),
    }
}

/// Netlist of one manipulator node.
#[must_use]
pub fn manipulator_netlist(kind: &ManipulatorKind) -> Netlist {
    match *kind {
        ManipulatorKind::Identity => Netlist::new("identity"),
        ManipulatorKind::Isolator { delay } => characterize::isolator(delay as u32),
        ManipulatorKind::Synchronizer { depth } => characterize::synchronizer(depth),
        ManipulatorKind::Desynchronizer { depth } => characterize::desynchronizer(depth),
        ManipulatorKind::Decorrelator { depth } => characterize::decorrelator(depth as u32),
    }
}

/// Netlist of one node operation (sources include their RNG hardware).
#[must_use]
pub fn node_netlist(op: &NodeOp, converter_bits: u32) -> Netlist {
    match op {
        // Ready streams arrive from outside the accelerator: free.
        NodeOp::InputStream { .. } | NodeOp::SinkStream { .. } => Netlist::new("wire"),
        NodeOp::Generate { source, .. } | NodeOp::ConstStream { source, .. } => {
            let mut n = characterize::ds_converter(converter_bits);
            n.merge(&source_netlist(source, converter_bits));
            n
        }
        NodeOp::Manipulate(kind) => manipulator_netlist(kind),
        NodeOp::Regenerate { source, .. } => {
            let mut n = characterize::regeneration_unit(converter_bits);
            n.merge(&source_netlist(source, converter_bits));
            n
        }
        NodeOp::Not => Netlist::new("not").with(Primitive::Inverter, 1),
        NodeOp::Binary(op) => binary_netlist(*op),
        NodeOp::UnaryFsm(op) => unary_fsm_netlist(*op),
        NodeOp::Divide {
            source,
            counter_bits,
            ..
        } => {
            let mut n = divider_netlist(*counter_bits);
            n.merge(&source_netlist(source, converter_bits));
            n
        }
        NodeOp::MuxAdd { select, .. } => {
            let mut n = characterize::mux_adder_netlist();
            n.merge(&source_netlist(select, converter_bits));
            n
        }
        // A k-way weighted MUX tree needs k − 1 two-way muxes plus its
        // selection source (the Gaussian-blur kernel shape of §IV).
        NodeOp::WeightedMux {
            weights, select, ..
        } => {
            let mut n = Netlist::new("weighted-mux").with(
                Primitive::Mux2,
                weights.len().saturating_sub(1).max(1) as u64,
            );
            n.merge(&source_netlist(select, converter_bits));
            n
        }
        NodeOp::SinkValue { .. } | NodeOp::SinkCount { .. } => {
            characterize::sd_converter(converter_bits)
        }
        // The APC sums its lanes into one wider accumulator.
        NodeOp::SinkSum { .. } => characterize::sd_converter(converter_bits + 2),
        // An SCC probe counts both streams and their overlap (one AND gate
        // feeding the joint counter).
        NodeOp::SccProbe { .. } => characterize::sd_converter(converter_bits)
            .scaled("scc-probe", 3)
            .with(Primitive::And2, 1),
    }
}

/// Netlist of one saturating-counter FSM activation.
#[must_use]
pub fn unary_fsm_netlist(op: UnaryFsmOp) -> Netlist {
    let state_bits = |states: u32| 32 - states.saturating_sub(1).leading_zeros();
    match op {
        // Saturating up/down counter plus the upper-half output comparison.
        UnaryFsmOp::Stanh { half_states } => {
            let bits = state_bits(2 * half_states).max(1);
            Netlist::new(format!("stanh-{}s", 2 * half_states))
                .with(Primitive::Counter(bits), 1)
                .with(Primitive::Comparator(bits), 1)
        }
        // As stanh, plus the mid-state toggle flip-flop.
        UnaryFsmOp::Slinear { states } => {
            let bits = state_bits(states).max(1);
            Netlist::new(format!("slinear-{states}s"))
                .with(Primitive::Counter(bits), 1)
                .with(Primitive::Comparator(bits), 1)
                .with(Primitive::DFlipFlop, 1)
        }
    }
}

/// Netlist of the feedback SC divider (excluding its comparison source):
/// integration counter, output comparator, and the feedback AND gate.
#[must_use]
pub fn divider_netlist(counter_bits: u32) -> Netlist {
    Netlist::new(format!("divider-{counter_bits}b"))
        .with(Primitive::Counter(counter_bits), 1)
        .with(Primitive::Comparator(counter_bits), 1)
        .with(Primitive::And2, 1)
}

/// Netlist of one binary arithmetic operator.
#[must_use]
pub fn binary_netlist(op: BinaryOp) -> Netlist {
    match op {
        BinaryOp::AndMultiply | BinaryOp::AndMin => {
            Netlist::new(op.to_string()).with(Primitive::And2, 1)
        }
        BinaryOp::XnorMultiply => Netlist::new(op.to_string()).with(Primitive::Xnor2, 1),
        BinaryOp::OrMax | BinaryOp::SaturatingAdd => {
            Netlist::new(op.to_string()).with(Primitive::Or2, 1)
        }
        BinaryOp::XorSubtract => characterize::xor_subtract_netlist(),
        BinaryOp::CaAdd => characterize::correlation_agnostic_adder_netlist(),
        BinaryOp::CaMax | BinaryOp::CaMin => characterize::correlation_agnostic_max_netlist(),
    }
}

/// The dedicated sample source a step draws from, if it has one.
#[must_use]
pub fn step_source(step: &Step) -> Option<&SourceSpec> {
    match step {
        Step::Generate { source, .. }
        | Step::Constant { source, .. }
        | Step::Regenerate { source, .. }
        | Step::Divide { source, .. } => Some(source),
        Step::MuxAdd { select, .. } | Step::WeightedMux { select, .. } => Some(select),
        _ => None,
    }
}

/// Netlist of one step's *logic* — everything except its sample source
/// (see [`step_source`]). A fused span sums its sub-steps' logic.
#[must_use]
pub fn step_logic_netlist(step: &Step, converter_bits: u32) -> Netlist {
    match step {
        Step::Input { .. } | Step::SinkStream { .. } => Netlist::new("wire"),
        Step::Generate { .. } | Step::Constant { .. } => characterize::ds_converter(converter_bits),
        Step::Manipulate { kinds, .. } => {
            let mut n = Netlist::new("manipulator-chain");
            for kind in kinds {
                n.merge(&manipulator_netlist(kind));
            }
            n
        }
        Step::Regenerate { .. } => characterize::regeneration_unit(converter_bits),
        Step::Not { .. } => Netlist::new("not").with(Primitive::Inverter, 1),
        Step::Binary { op, .. } => binary_netlist(*op),
        Step::UnaryFsm { op, .. } => unary_fsm_netlist(*op),
        Step::Divide { counter_bits, .. } => divider_netlist(*counter_bits),
        Step::MuxAdd { .. } => characterize::mux_adder_netlist(),
        Step::WeightedMux { weights, .. } => Netlist::new("weighted-mux").with(
            Primitive::Mux2,
            weights.len().saturating_sub(1).max(1) as u64,
        ),
        Step::SinkValue { .. } | Step::SinkCount { .. } => {
            characterize::sd_converter(converter_bits)
        }
        // A k-lane APC: full-adder reduction tree into one wider accumulator.
        Step::SinkSum { srcs, .. } => characterize::sd_converter(converter_bits + 2)
            .with(Primitive::FullAdder, srcs.len().saturating_sub(1) as u64),
        Step::SccProbe { .. } => characterize::sd_converter(converter_bits)
            .scaled("scc-probe", 3)
            .with(Primitive::And2, 1),
        Step::Fused { steps } => {
            let mut n = Netlist::new("fused-span");
            for sub in steps {
                n.merge(&step_logic_netlist(sub, converter_bits));
            }
            n
        }
    }
}

/// Netlist of one *scheduled step* of a compiled plan: its logic plus its
/// own sample source. Equivalent to summing [`node_netlist`] over the step's
/// operations, but with access to execution arity: a fused manipulator run is
/// the sum of its chained circuits, an APC sum sink over `k` lanes includes
/// its `k − 1`-adder reduction tree, and a fused span is the sum of its
/// sub-steps (so fused and unfused plans cost identically).
#[must_use]
pub fn step_netlist(step: &Step, converter_bits: u32) -> Netlist {
    if let Step::Fused { steps } = step {
        let mut n = Netlist::new("fused-span");
        for sub in steps {
            n.merge(&step_netlist(sub, converter_bits));
        }
        return n;
    }
    let mut n = step_logic_netlist(step, converter_bits);
    if let Some(spec) = step_source(step) {
        n.merge(&source_netlist(spec, converter_bits));
    }
    n
}

/// Netlist of everything a compiled plan executes, including auto-inserted
/// repair manipulators, derived from the scheduled steps (see
/// [`step_netlist`]). Every step is priced in full — each source-drawing
/// step carries its own generator, the paper's per-converter baseline.
#[must_use]
pub fn compiled_netlist(plan: &CompiledGraph, name: &str, converter_bits: u32) -> Netlist {
    let mut total = Netlist::new(name);
    for step in plan.steps() {
        total.merge(&step_netlist(step, converter_bits));
    }
    total
}

/// [`compiled_netlist`] under the executor's source-sharing model: every
/// step's logic is priced in full, but each distinct [`SourceSpec`] is priced
/// **once** — exactly one physical sample generator per spec, which is how
/// the executor's `SourceCache` (and the shared-RNG hardware of §II.B)
/// actually instantiates them. This is the honest cost view for CSE'd plans,
/// where merged subgraphs deliberately lean on repeated specs.
#[must_use]
pub fn compiled_netlist_shared(plan: &CompiledGraph, name: &str, converter_bits: u32) -> Netlist {
    fn add_step<'a>(
        step: &'a Step,
        converter_bits: u32,
        total: &mut Netlist,
        seen: &mut std::collections::HashSet<&'a SourceSpec>,
    ) {
        if let Step::Fused { steps } = step {
            for sub in steps {
                add_step(sub, converter_bits, total, seen);
            }
            return;
        }
        total.merge(&step_logic_netlist(step, converter_bits));
        if let Some(spec) = step_source(step) {
            if seen.insert(spec) {
                total.merge(&source_netlist(spec, converter_bits));
            }
        }
    }
    let mut total = Netlist::new(name);
    let mut seen = std::collections::HashSet::new();
    for step in plan.steps() {
        add_step(step, converter_bits, &mut total, &mut seen);
    }
    total
}

impl CompiledGraph {
    /// The plan's hardware netlist at the default converter precision
    /// (see [`compiled_netlist`]).
    #[must_use]
    pub fn netlist(&self, name: &str) -> Netlist {
        compiled_netlist(self, name, DEFAULT_CONVERTER_BITS)
    }

    /// The plan's netlist with one physical generator per distinct source
    /// spec, at the default converter precision (see
    /// [`compiled_netlist_shared`]).
    #[must_use]
    pub fn shared_netlist(&self, name: &str) -> Netlist {
        compiled_netlist_shared(self, name, DEFAULT_CONVERTER_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryOp, Graph, PlannerOptions};
    use sc_rng::SourceSpec;

    /// Satellite acceptance check: a 2-op graph's bridged netlist equals the
    /// hand-computed sum of the `sc_hwcost` blocks it is made of.
    #[test]
    fn two_op_graph_matches_hand_computed_hwcost() {
        let mut g = Graph::new();
        let x = g.generate(0, SourceSpec::Sobol { dimension: 1 });
        let y = g.generate(1, SourceSpec::Halton { base: 3, offset: 0 });
        let p = g.binary(BinaryOp::AndMultiply, x, y); // op 1: AND multiply
        let q = g.binary(BinaryOp::CaAdd, p, x); // op 2: CA adder
        g.sink_value("q", q);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        // and_multiply sees (generated, generated-from-different-spec) =
        // Uncorrelated: satisfied, nothing inserted. ca_add is agnostic.
        assert!(plan.report().inserted.is_empty());

        let bridged = plan.netlist("two-op");

        // Hand-computed from the sc_hwcost characterisation library:
        // 2 × (D/S converter + low-discrepancy source) feeding one AND gate
        // and one CA adder, drained by one S/D converter.
        let mut expected = Netlist::new("expected");
        expected.merge(&characterize::ds_converter(8));
        expected.merge(&characterize::low_discrepancy_rng(8));
        expected.merge(&characterize::ds_converter(8));
        expected.merge(&characterize::low_discrepancy_rng(8));
        expected.merge(&Netlist::new("and").with(Primitive::And2, 1));
        expected.merge(&characterize::correlation_agnostic_adder_netlist());
        expected.merge(&characterize::sd_converter(8));

        assert!((bridged.area_um2() - expected.area_um2()).abs() < 1e-9);
        assert!((bridged.power_uw() - expected.power_uw()).abs() < 1e-9);
        assert_eq!(bridged.cell_count(), expected.cell_count());
        // And against fully hand-expanded numbers, so a characterisation
        // regression cannot silently cancel out:
        // D/S = CMP8 (24.0) + REG8 (46.08); LD-RNG8 = 80.0; AND2 = 2.16;
        // CA adder = FA (6.48) + REG2 (11.52) + 2×INV (1.44); S/D = CNT8 (72.0).
        let hand = 2.0 * (24.0 + 46.08 + 80.0) + 2.16 + (6.48 + 11.52 + 1.44) + 72.0;
        assert!(
            (bridged.area_um2() - hand).abs() < 1e-9,
            "bridged {} vs hand {hand}",
            bridged.area_um2()
        );
    }

    #[test]
    fn inserted_repairs_are_costed() {
        let build = |options: &PlannerOptions| {
            let mut g = Graph::new();
            let x = g.generate(0, SourceSpec::Sobol { dimension: 1 });
            let y = g.generate(1, SourceSpec::Sobol { dimension: 2 });
            let z = g.binary(BinaryOp::XorSubtract, x, y);
            g.sink_value("z", z);
            g.compile(options).unwrap()
        };
        let without = build(&PlannerOptions::no_repair()).netlist("no-repair");
        let with = build(&PlannerOptions::default()).netlist("repaired");
        let sync = characterize::synchronizer(1);
        assert!(
            (with.area_um2() - without.area_um2() - sync.area_um2()).abs() < 1e-9,
            "repair cost should be exactly one synchronizer"
        );
    }

    #[test]
    fn source_netlists_cover_families() {
        assert!(source_netlist(&SourceSpec::Lfsr { width: 16, seed: 1 }, 8).area_um2() > 0.0);
        assert!(source_netlist(&SourceSpec::VanDerCorput { offset: 0 }, 8).area_um2() > 0.0);
        assert!(
            source_netlist(
                &SourceSpec::Counter {
                    modulus: 256,
                    phase: 0
                },
                8
            )
            .area_um2()
                > 0.0
        );
    }

    #[test]
    fn binary_netlists_match_characterization() {
        assert!(
            (binary_netlist(BinaryOp::OrMax).area_um2()
                - characterize::or_max_netlist().area_um2())
            .abs()
                < 1e-12
        );
        assert!(
            (binary_netlist(BinaryOp::CaMax).area_um2()
                - characterize::correlation_agnostic_max_netlist().area_um2())
            .abs()
                < 1e-12
        );
        assert!(
            binary_netlist(BinaryOp::CaAdd).area_um2()
                > binary_netlist(BinaryOp::AndMin).area_um2()
        );
    }

    /// Span fusion is cost-transparent: a fused plan's full netlist equals
    /// its unfused twin's, cell for cell.
    #[test]
    fn fused_plans_cost_identically_to_unfused() {
        use crate::PassSet;
        let build = |passes: PassSet| {
            let mut g = Graph::new();
            let x = g.generate(0, SourceSpec::Sobol { dimension: 1 });
            let y = g.generate(1, SourceSpec::Sobol { dimension: 2 });
            let z = g.binary(BinaryOp::XorSubtract, x, y);
            let n = g.not(z);
            g.sink_value("z", n);
            g.compile(&PlannerOptions::with_passes(passes)).unwrap()
        };
        let fused = build(PassSet::all()).netlist("fused");
        let flat = build(PassSet::none()).netlist("flat");
        assert!((fused.area_um2() - flat.area_um2()).abs() < 1e-9);
        assert_eq!(fused.cell_count(), flat.cell_count());
    }

    /// The shared-source view prices each distinct spec once, so a plan
    /// drawing twice from one spec costs one generator less than the
    /// per-step view — and never more.
    #[test]
    fn shared_netlist_prices_each_source_once() {
        let mut g = Graph::new();
        let x = g.generate(0, SourceSpec::Sobol { dimension: 1 });
        let y = g.generate(1, SourceSpec::Sobol { dimension: 1 }); // same spec
        let z = g.binary(BinaryOp::OrMax, x, y); // Positive: satisfied
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let per_step = plan.netlist("per-step");
        let shared = plan.shared_netlist("shared");
        let rng = characterize::low_discrepancy_rng(8);
        assert!(
            (per_step.area_um2() - shared.area_um2() - rng.area_um2()).abs() < 1e-9,
            "sharing should save exactly one generator: per-step {} shared {}",
            per_step.area_um2(),
            shared.area_um2()
        );
    }

    #[test]
    fn identity_and_wires_are_free() {
        assert_eq!(
            manipulator_netlist(&ManipulatorKind::Identity).cell_count(),
            0
        );
        assert_eq!(node_netlist(&NodeOp::Not, 8).cell_count(), 1);
        assert_eq!(
            node_netlist(
                &NodeOp::SinkStream {
                    name: "s".to_string()
                },
                8
            )
            .cell_count(),
            0
        );
    }
}
