//! The graph compiler: validation, correlation planning, fusion, scheduling.
//!
//! Compilation proceeds in four passes:
//!
//! 1. **Validation** — wires must reference existing nodes/ports, arities
//!    must match, sink names must be unique, and the graph must be acyclic
//!    (Kahn topological sort; only [`crate::Graph::rewire`] can introduce a
//!    cycle).
//! 2. **Correlation planning** — every binary operator declares the SCC class
//!    its inputs must have (paper Fig. 2). The planner derives the class of
//!    each input pair *structurally*: streams from equal source specs are
//!    positively correlated (shared-RNG, §II.B), streams from different specs
//!    are uncorrelated, and a manipulator pins its output pair to the class it
//!    establishes (+1 synchronizer / −1 desynchronizer / 0 decorrelator,
//!    §III). Where a precondition is not met and
//!    [`PlannerOptions::auto_repair`] is on, the pass inserts the
//!    establishing manipulator in front of the operator — the paper's core
//!    insight, applied automatically.
//! 3. **Fusion** — maximal linear runs of manipulator nodes (each feeding
//!    both outputs exclusively to the next) collapse into one
//!    [`sc_core::ManipulatorChain`] step, so a run of `k` circuits makes a
//!    single register-staged pass per 64-bit word instead of materialising
//!    `k − 1` intermediate stream pairs.
//! 4. **Scheduling** — nodes are laid out in topological order as a flat
//!    step list over dense stream slots, ready for the batch executor.

use crate::graph::{Graph, GraphError};
use crate::node::{BinaryOp, ManipulatorKind, Node, NodeOp, SccClass, UnaryFsmOp, Wire};
use sc_bitstream::Bitstream;
use sc_rng::SourceSpec;
use sc_telemetry::{Counter, Stage, TelemetrySink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide monotonic counter behind [`CompiledGraph::plan_class`]: every
/// `compile` call mints a fresh class, and clones / retargeted copies keep
/// their template's class.
static PLAN_CLASS: AtomicU64 = AtomicU64::new(0);

/// Knobs of the correlation-planning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerOptions {
    /// Insert correlation-establishing manipulators where a binary operator's
    /// SCC precondition is not structurally guaranteed (default `true`).
    /// When `false`, unmet preconditions are only recorded in the
    /// [`CompileReport`].
    pub auto_repair: bool,
    /// Save depth of auto-inserted synchronizers.
    pub synchronizer_depth: u32,
    /// Save depth of auto-inserted desynchronizers.
    pub desynchronizer_depth: u32,
    /// Shuffle-buffer depth of auto-inserted decorrelators.
    pub decorrelator_depth: usize,
    /// Fuse linear manipulator runs into single chain steps (default `true`).
    pub fuse: bool,
    /// Measured-SCC feedback: when an operator's input pair has structural
    /// class [`SccClass::Unknown`], run a short [`sc_core::SccTracker`]-style
    /// probe execution of this length over representative inputs and use the
    /// *measured* class for the repair decision instead of pessimistically
    /// treating the pair as unknown. `None` (the default) keeps the purely
    /// structural behaviour.
    pub measure_unknown: Option<usize>,
    /// The digital value fed to every `Generate` slot during a measured-SCC
    /// probe execution (default `0.5`, the maximum-entropy stimulus). Set
    /// this to a representative batch statistic — e.g. the mean pixel value
    /// of the images a tile pipeline will process — so repair decisions are
    /// driven by the operating point the design actually sees.
    pub probe_value: f64,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            auto_repair: true,
            synchronizer_depth: 1,
            desynchronizer_depth: 1,
            decorrelator_depth: 4,
            fuse: true,
            measure_unknown: None,
            probe_value: 0.5,
        }
    }
}

impl PlannerOptions {
    /// Options with auto-repair disabled (preconditions only reported).
    #[must_use]
    pub fn no_repair() -> Self {
        PlannerOptions {
            auto_repair: false,
            ..PlannerOptions::default()
        }
    }

    /// Options with measured-SCC feedback enabled at the given probe length.
    #[must_use]
    pub fn with_measurement(probe_length: usize) -> Self {
        PlannerOptions {
            measure_unknown: Some(probe_length.max(1)),
            ..PlannerOptions::default()
        }
    }
}

/// What the planner did to a graph during compilation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileReport {
    /// One entry per auto-inserted repair manipulator.
    pub inserted: Vec<String>,
    /// One entry per binary operator whose precondition is not structurally
    /// guaranteed and was *not* repaired (auto-repair off).
    pub unsatisfied: Vec<String>,
    /// Number of fused manipulator runs of length ≥ 2.
    pub fused_runs: usize,
    /// One entry per structurally-unknown input pair whose class was resolved
    /// by a measured-SCC probe ([`PlannerOptions::measure_unknown`]).
    pub measured: Vec<String>,
}

/// One executable step of a compiled plan. Slot indices address the dense
/// per-execution stream environment (`0..CompiledGraph::slot_count()`).
///
/// Steps are public so lowering backends (the `sc_rtl` gate-level elaborator
/// in particular) can walk a plan's exact execution structure — including
/// fused manipulator runs and planner-inserted repairs — without re-deriving
/// it from the source graph. The enum is `#[non_exhaustive]`: consumers must
/// handle unknown future step kinds (typically by reporting the plan as
/// unsupported).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Step {
    /// Copy `BatchInput::streams[slot]` into `dst`.
    Input {
        /// Index into the batch item's stream list.
        slot: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// D/S-convert `BatchInput::values[slot]` into `dst`.
    Generate {
        /// Index into the batch item's value list.
        slot: usize,
        /// Comparator sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Destination stream slot.
        dst: usize,
    },
    /// D/S-convert a constant probability into `dst`.
    Constant {
        /// The encoded probability.
        probability: f64,
        /// Comparator sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Destination stream slot.
        dst: usize,
    },
    /// Run a (possibly fused) chain of correlation manipulators.
    Manipulate {
        /// The chained circuit kinds, in dataflow order.
        kinds: Vec<ManipulatorKind>,
        /// X input slot.
        x: usize,
        /// Y input slot.
        y: usize,
        /// Manipulated-X destination slot.
        dst_x: usize,
        /// Manipulated-Y destination slot.
        dst_y: usize,
    },
    /// S/D + D/S regeneration from a fresh source.
    Regenerate {
        /// Re-encoding sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Input stream slot.
        src: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// Stream complement.
    Not {
        /// Input stream slot.
        src: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// A two-input arithmetic operator.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// X input slot.
        x: usize,
        /// Y input slot.
        y: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// A saturating-counter FSM activation.
    UnaryFsm {
        /// The FSM design.
        op: UnaryFsmOp,
        /// Input stream slot.
        src: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// The feedback SC divider.
    Divide {
        /// Comparison sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Integration counter width.
        counter_bits: u32,
        /// Numerator input slot.
        x: usize,
        /// Denominator input slot.
        y: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// MUX scaled adder with a dedicated 0.5-valued select source.
    MuxAdd {
        /// Select-stream source.
        select: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// X input slot (picked when the select bit is 1).
        x: usize,
        /// Y input slot.
        y: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// Weighted multiplexer tree.
    WeightedMux {
        /// Per-input selection probabilities, in input order.
        weights: Vec<f64>,
        /// Selection sample source.
        select: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Input stream slots, one per weight.
        srcs: Vec<usize>,
        /// Destination stream slot.
        dst: usize,
    },
    /// Sink: expose the stream itself.
    SinkStream {
        /// Output name.
        name: String,
        /// Input stream slot.
        src: usize,
    },
    /// Sink: S/D conversion to the stream's unipolar value.
    SinkValue {
        /// Output name.
        name: String,
        /// Input stream slot.
        src: usize,
    },
    /// Sink: S/D conversion to the raw 1s count.
    SinkCount {
        /// Output name.
        name: String,
        /// Input stream slot.
        src: usize,
    },
    /// Sink: accumulative parallel counter over all inputs.
    SinkSum {
        /// Output name.
        name: String,
        /// Input stream slots.
        srcs: Vec<usize>,
    },
    /// Sink: SCC probe over a stream pair.
    SccProbe {
        /// Output name.
        name: String,
        /// X input slot.
        x: usize,
        /// Y input slot.
        y: usize,
    },
}

/// A validated, planned, fused, topologically ordered execution plan.
///
/// Produced by [`Graph::compile`]; executed by [`crate::Executor`]. The plan
/// is immutable and `Send + Sync`, so one compiled graph can drive many
/// worker threads at once.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    pub(crate) steps: Vec<Step>,
    pub(crate) slot_count: usize,
    pub(crate) value_slots: usize,
    pub(crate) stream_slots: usize,
    report: CompileReport,
    /// Every operation the plan executes (graph nodes plus planner-inserted
    /// repairs), for introspection and the `sc_hwcost` bridge.
    ops: Vec<NodeOp>,
    /// Template-class id: fresh per `compile` call, preserved by `Clone` and
    /// [`CompiledGraph::retarget_sources`]. Two plans of one class are
    /// structurally identical step for step (only their [`SourceSpec`]s may
    /// differ), which is what lets the executor run same-class jobs in
    /// lockstep lanes.
    class: u64,
}

impl CompiledGraph {
    /// What the planner inserted, left unrepaired, and fused.
    #[must_use]
    pub fn report(&self) -> &CompileReport {
        &self.report
    }

    /// Every operation the plan executes, including auto-inserted repair
    /// manipulators.
    #[must_use]
    pub fn ops(&self) -> &[NodeOp] {
        &self.ops
    }

    /// Number of executable steps (fused runs count once).
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// The executable steps, in scheduled order — the exact structure the
    /// executor runs and lowering backends elaborate.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of dense stream slots an execution environment needs.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The plan's template class: a process-unique id minted per
    /// [`Graph::compile`] call and *shared* by every clone and
    /// [`CompiledGraph::retarget_sources`] copy of that plan. Plans of one
    /// class are structurally identical (same steps, slots, and scheduling;
    /// only source seeding may differ), so the executor can transpose a
    /// group of same-class jobs into lanes and step them in lockstep.
    #[must_use]
    pub fn plan_class(&self) -> u64 {
        self.class
    }

    /// Whether the plan contains at least one step with a lane-batched
    /// kernel — a manipulator (solo or fused run), a saturating-counter FSM
    /// activation, or a counter-based max/min — so grouping same-class jobs
    /// into lanes can actually amortise an FSM dependency chain. Plans of
    /// pure bitwise ops gain nothing from lane transposition (they are
    /// already word-parallel) and are executed solo.
    #[must_use]
    pub fn lane_batchable(&self) -> bool {
        self.steps.iter().any(|step| {
            matches!(
                step,
                Step::Manipulate { .. }
                    | Step::UnaryFsm { .. }
                    | Step::Binary {
                        op: BinaryOp::CaMax | BinaryOp::CaMin,
                        ..
                    }
            )
        })
    }

    /// Returns a copy of the plan with every stored [`SourceSpec`] rewritten
    /// by `retarget` (`None` keeps the spec unchanged). Wiring, slots, skips,
    /// and scheduling are untouched, so the copy is exactly as valid as the
    /// original.
    ///
    /// This exists so one compiled plan can serve as a *template* for a
    /// family of structurally identical designs that differ only in source
    /// seeding — e.g. `sc_image` compiles one plan per tile shape and
    /// retargets the per-tile select-LFSR seeds, instead of re-running the
    /// whole compiler per tile. Retargeting must preserve the spec *equality
    /// structure* the planner reasoned about (two equal specs must stay
    /// equal, two different specs must stay different); seed-only rewrites
    /// within one family do.
    #[must_use]
    pub fn retarget_sources<F: Fn(&SourceSpec) -> Option<SourceSpec>>(
        &self,
        retarget: F,
    ) -> CompiledGraph {
        let swap = |spec: &mut SourceSpec| {
            if let Some(new) = retarget(spec) {
                *spec = new;
            }
        };
        let mut plan = self.clone();
        for step in &mut plan.steps {
            match step {
                Step::Generate { source, .. }
                | Step::Constant { source, .. }
                | Step::Regenerate { source, .. }
                | Step::Divide { source, .. } => swap(source),
                Step::MuxAdd { select, .. } | Step::WeightedMux { select, .. } => swap(select),
                _ => {}
            }
        }
        for op in &mut plan.ops {
            match op {
                NodeOp::Generate { source, .. }
                | NodeOp::ConstStream { source, .. }
                | NodeOp::Regenerate { source, .. }
                | NodeOp::Divide { source, .. } => swap(source),
                NodeOp::MuxAdd { select, .. } | NodeOp::WeightedMux { select, .. } => swap(select),
                _ => {}
            }
        }
        plan
    }

    /// Number of digital value slots the batch items must provide.
    #[must_use]
    pub fn value_slots(&self) -> usize {
        self.value_slots
    }

    /// Number of input stream slots the batch items must provide.
    #[must_use]
    pub fn stream_slots(&self) -> usize {
        self.stream_slots
    }
}

impl Graph {
    /// Compiles the graph into an executable plan.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`], [`GraphError::Cycle`],
    /// [`GraphError::BadArity`] (a `WeightedMux` whose weight count drifted
    /// from its input count via [`Graph::rewire`] misuse cannot occur, but
    /// the check is kept for defence), or [`GraphError::DuplicateSink`].
    pub fn compile(&self, options: &PlannerOptions) -> Result<CompiledGraph, GraphError> {
        self.compile_with_telemetry(options, &TelemetrySink::default())
    }

    /// [`Graph::compile`] with per-pass profiling: records one
    /// [`Stage::Compile`] span over the whole call with nested
    /// [`Stage::CompileValidate`] / [`Stage::CompilePlan`] /
    /// [`Stage::CompileEmit`] spans (plus one [`Stage::MeasuredProbe`] span
    /// per planner probe execution), and on success bumps the sink's
    /// compilation, repair-insertion, measured-probe, and fused-run
    /// counters straight from the plan's [`CompileReport`] — the counters
    /// are derived from the report, so the two cannot drift.
    ///
    /// # Errors
    ///
    /// Exactly as [`Graph::compile`].
    pub fn compile_with_telemetry(
        &self,
        options: &PlannerOptions,
        telemetry: &TelemetrySink,
    ) -> Result<CompiledGraph, GraphError> {
        let _compile = telemetry.span(Stage::Compile);
        if self.nodes.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        // Pass 1: structural validation (wires are builder-validated; arity
        // and sink uniqueness are re-checked here to cover future mutation
        // APIs).
        let validate = telemetry.span(Stage::CompileValidate);
        let mut sink_names: Vec<&str> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(expected) = node.op.input_arity() {
                if node.inputs.len() != expected {
                    return Err(GraphError::BadArity {
                        node: i,
                        expected,
                        got: node.inputs.len(),
                    });
                }
            }
            if let Some(name) = node.op.sink_name() {
                if sink_names.contains(&name) {
                    return Err(GraphError::DuplicateSink {
                        name: name.to_string(),
                    });
                }
                sink_names.push(name);
            }
        }

        // Cycle check up front: the correlation planner's class derivation
        // recurses through identity manipulators and must only ever see a DAG.
        topo_order(&self.nodes)?;
        drop(validate);

        // Pass 2: correlation planning over a mutable copy of the node list.
        let plan_span = telemetry.span(Stage::CompilePlan);
        let mut nodes: Vec<Node> = self.nodes.to_vec();
        let mut report = CompileReport::default();
        plan_correlation(&mut nodes, options, &mut report, telemetry);
        drop(plan_span);

        let emit_span = telemetry.span(Stage::CompileEmit);
        // Topological order recomputed after planning so inserted repair
        // nodes participate in scheduling (insertion cannot create cycles:
        // a repair only splices into existing edges).
        let order = topo_order(&nodes)?;

        // Pass 3 + 4: fusion and step emission.
        let result = emit_steps(&nodes, &order, options, report);
        drop(emit_span);
        if telemetry.is_enabled() {
            if let Ok(plan) = &result {
                telemetry.add(Counter::Compilations, 1);
                telemetry.add(Counter::RepairsInserted, plan.report.inserted.len() as u64);
                telemetry.add(Counter::FusedRuns, plan.report.fused_runs as u64);
            }
        }
        result
    }
}

/// Kahn topological sort; errors with a node on a cycle if one exists.
fn topo_order(nodes: &[Node]) -> Result<Vec<usize>, GraphError> {
    let mut indegree: Vec<usize> = nodes.iter().map(|n| n.inputs.len()).collect();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        for wire in &node.inputs {
            consumers[wire.node().index()].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..nodes.len()).filter(|&i| indegree[i] == 0).collect();
    // Keep deterministic (insertion-order) scheduling: treat `ready` as a
    // min-ordered queue over node indices.
    ready.sort_unstable();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(&next) = ready.first() {
        ready.remove(0);
        order.push(next);
        for &consumer in &consumers[next] {
            indegree[consumer] -= 1;
            if indegree[consumer] == 0 {
                let pos = ready.binary_search(&consumer).unwrap_err();
                ready.insert(pos, consumer);
            }
        }
    }
    if order.len() != nodes.len() {
        let node = (0..nodes.len())
            .find(|&i| indegree[i] > 0)
            .expect("incomplete order implies a node with remaining indegree");
        return Err(GraphError::Cycle { node });
    }
    Ok(order)
}

/// Structural SCC class of a pair of wires (see the module docs for rules).
fn pair_class(nodes: &[Node], a: Wire, b: Wire) -> SccClass {
    if a == b {
        return SccClass::Positive;
    }
    let na = &nodes[a.node().index()];
    let nb = &nodes[b.node().index()];
    // Unwrap identity manipulators: they preserve their input pair's class.
    if let NodeOp::Manipulate(ManipulatorKind::Identity) = na.op {
        return pair_class(nodes, na.inputs[a.port() as usize], b);
    }
    if let NodeOp::Manipulate(ManipulatorKind::Identity) = nb.op {
        return pair_class(nodes, a, nb.inputs[b.port() as usize]);
    }
    // The two output ports of one manipulator carry the class it establishes.
    if a.node() == b.node() {
        if let NodeOp::Manipulate(kind) = &na.op {
            return kind.output_class().unwrap_or(SccClass::Unknown);
        }
        return SccClass::Unknown;
    }
    let source_of = |op: &NodeOp| -> Option<(SourceSpec, u64)> {
        match op {
            NodeOp::Generate { source, skip, .. } | NodeOp::ConstStream { source, skip, .. } => {
                Some((source.clone(), *skip))
            }
            _ => None,
        }
    };
    // Two generated streams: equal spec + position ⇒ every comparator sample
    // is shared ⇒ maximal positive correlation (§II.B); otherwise the sample
    // sequences are independent ⇒ (close to) uncorrelated.
    if let (Some(sa), Some(sb)) = (source_of(&na.op), source_of(&nb.op)) {
        return if sa == sb {
            SccClass::Positive
        } else {
            SccClass::Uncorrelated
        };
    }
    // Two regenerated streams behave like generated streams of their
    // re-encoding source.
    if let (
        NodeOp::Regenerate {
            source: sa,
            skip: ka,
        },
        NodeOp::Regenerate {
            source: sb,
            skip: kb,
        },
    ) = (&na.op, &nb.op)
    {
        return if sa == sb && ka == kb {
            SccClass::Positive
        } else {
            SccClass::Uncorrelated
        };
    }
    SccClass::Unknown
}

/// The correlation-planning pass: checks every tracked operator's SCC
/// precondition and (optionally) inserts the establishing manipulator.
fn plan_correlation(
    nodes: &mut Vec<Node>,
    options: &PlannerOptions,
    report: &mut CompileReport,
    telemetry: &TelemetrySink,
) {
    for i in 0..nodes.len() {
        let Some((label, requirement)) = nodes[i].op.correlation_requirement() else {
            continue;
        };
        let (a, b) = (nodes[i].inputs[0], nodes[i].inputs[1]);
        let mut class = pair_class(nodes, a, b);
        // Measured-SCC feedback: a structurally unknown pair (e.g. two
        // arithmetic-operator outputs) is probed with a short execution over
        // representative inputs, and the repair decision uses the measured
        // class — the SccTracker-in-the-loop design the ROADMAP calls for.
        if class == SccClass::Unknown {
            if let Some(probe_length) = options.measure_unknown {
                let probe_span = telemetry.span(Stage::MeasuredProbe);
                telemetry.add(Counter::MeasuredProbes, 1);
                let outcome = measured_class(nodes, a, b, probe_length, options.probe_value);
                drop(probe_span);
                if let Some((scc, measured)) = outcome {
                    report.measured.push(format!(
                        "inputs of {label} (node n{i}) measured SCC {scc:.3} over {probe_length} \
                         cycles: treating pair as {measured:?}"
                    ));
                    class = measured;
                }
            }
        }
        if requirement.satisfied_by(class) {
            continue;
        }
        let Some(kind) = requirement.establishing_manipulator(options) else {
            continue;
        };
        if options.auto_repair {
            let repair = crate::node::NodeId(nodes.len());
            nodes.push(Node {
                op: NodeOp::Manipulate(kind),
                inputs: vec![a, b],
            });
            nodes[i].inputs[0] = Wire {
                node: repair,
                port: 0,
            };
            nodes[i].inputs[1] = Wire {
                node: repair,
                port: 1,
            };
            report.inserted.push(format!(
                "{kind} inserted before {label} (node n{i}): inputs are {class:?}, {requirement:?} required"
            ));
        } else {
            report.unsatisfied.push(format!(
                "{label} (node n{i}) requires {requirement:?} inputs but gets {class:?}"
            ));
        }
    }
}

/// Probes the actual SCC of a wire pair by compiling the current node list
/// (auto-repair and measurement off, so this cannot recurse) with an SCC
/// probe appended, and executing it for `probe_length` cycles over
/// representative inputs: every digital value slot is driven at the
/// configured [`PlannerOptions::probe_value`] stimulus and every ready-stream
/// slot with a phase-shifted alternating stream. Returns `None` if the probe
/// graph fails to compile or execute.
fn measured_class(
    nodes: &[Node],
    a: Wire,
    b: Wire,
    probe_length: usize,
    probe_value: f64,
) -> Option<(f64, SccClass)> {
    // Trim to the pair's ancestor cone: the probe executes only the logic
    // that actually feeds the two wires (and none of the graph's own sinks),
    // so each measurement costs the cone, not the whole design.
    let mut needed = vec![false; nodes.len()];
    let mut stack = vec![a.node().index(), b.node().index()];
    while let Some(i) = stack.pop() {
        if needed[i] {
            continue;
        }
        needed[i] = true;
        for wire in &nodes[i].inputs {
            stack.push(wire.node().index());
        }
    }
    // Two passes — repair nodes appended by earlier planning iterations sit
    // at high indices but are referenced by lower-indexed consumers — so
    // assign dense indices first, then clone with rewritten wires.
    let mut remap = vec![usize::MAX; nodes.len()];
    let mut count = 0usize;
    for (i, include) in needed.iter().enumerate() {
        if *include {
            remap[i] = count;
            count += 1;
        }
    }
    let probe_wire = |w: Wire| Wire {
        node: crate::node::NodeId(remap[w.node().index()]),
        port: w.port(),
    };
    let mut probe_nodes: Vec<Node> = Vec::with_capacity(count + 1);
    for (i, node) in nodes.iter().enumerate() {
        if !needed[i] {
            continue;
        }
        let mut clone = node.clone();
        for wire in &mut clone.inputs {
            *wire = probe_wire(*wire);
        }
        probe_nodes.push(clone);
    }
    // Sinks have no outputs, so the cone never contains one: the probe's
    // sink name is free by construction.
    let name = "__scc_probe".to_string();
    probe_nodes.push(Node {
        op: NodeOp::SccProbe { name: name.clone() },
        inputs: vec![probe_wire(a), probe_wire(b)],
    });
    let probe_graph = Graph { nodes: probe_nodes };
    let probe_options = PlannerOptions {
        auto_repair: false,
        measure_unknown: None,
        fuse: false,
        ..PlannerOptions::default()
    };
    let plan = probe_graph.compile(&probe_options).ok()?;
    let input = crate::exec::BatchInput {
        values: vec![probe_value; plan.value_slots()],
        streams: (0..plan.stream_slots())
            .map(|slot| Bitstream::from_fn(probe_length, |i| (i + slot) % 2 == 0))
            .collect(),
    };
    let out = crate::exec::Executor::new(probe_length)
        .run(&plan, &input)
        .ok()?;
    let scc = out.value(&name)?;
    let class = if scc >= 0.5 {
        SccClass::Positive
    } else if scc <= -0.5 {
        SccClass::Negative
    } else {
        SccClass::Uncorrelated
    };
    Some((scc, class))
}

/// Fusion + scheduling: walks the topological order, collapses linear
/// manipulator runs, assigns dense slots, and emits the step list.
fn emit_steps(
    nodes: &[Node],
    order: &[usize],
    options: &PlannerOptions,
    mut report: CompileReport,
) -> Result<CompiledGraph, GraphError> {
    // Count consumers of every wire to find fusible runs.
    let mut consumer_count: HashMap<Wire, usize> = HashMap::new();
    let mut sole_consumer: HashMap<Wire, usize> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        for wire in &node.inputs {
            *consumer_count.entry(*wire).or_insert(0) += 1;
            sole_consumer.insert(*wire, i);
        }
    }
    let port = |i: usize, p: u8| Wire {
        node: crate::node::NodeId(i),
        port: p,
    };
    // A manipulator run `m → q` can fuse when both of m's outputs are
    // consumed exactly once, by q's inputs 0/1 in order, and q is itself a
    // manipulator.
    let fuse_next = |i: usize| -> Option<usize> {
        if !options.fuse {
            return None;
        }
        let (p0, p1) = (port(i, 0), port(i, 1));
        if consumer_count.get(&p0) != Some(&1) || consumer_count.get(&p1) != Some(&1) {
            return None;
        }
        let q = *sole_consumer.get(&p0)?;
        if sole_consumer.get(&p1) != Some(&q) {
            return None;
        }
        let qn = &nodes[q];
        if !matches!(qn.op, NodeOp::Manipulate(_)) || qn.inputs != vec![p0, p1] {
            return None;
        }
        Some(q)
    };

    let mut slots: HashMap<Wire, usize> = HashMap::new();
    let mut slot_count = 0usize;
    let mut slot_of = |w: Wire, slots: &mut HashMap<Wire, usize>| -> usize {
        *slots.entry(w).or_insert_with(|| {
            let s = slot_count;
            slot_count += 1;
            s
        })
    };

    let mut steps = Vec::new();
    let mut ops = Vec::new();
    let mut fused: Vec<bool> = vec![false; nodes.len()];
    let mut value_slots = 0usize;
    let mut stream_slots = 0usize;

    for &i in order {
        if fused[i] {
            continue;
        }
        let node = &nodes[i];
        ops.push(node.op.clone());
        let inputs = &node.inputs;
        match &node.op {
            NodeOp::InputStream { slot } => {
                stream_slots = stream_slots.max(slot + 1);
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::Input { slot: *slot, dst });
            }
            NodeOp::Generate { slot, source, skip } => {
                value_slots = value_slots.max(slot + 1);
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::Generate {
                    slot: *slot,
                    source: source.clone(),
                    skip: *skip,
                    dst,
                });
            }
            NodeOp::ConstStream {
                probability,
                source,
                skip,
            } => {
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::Constant {
                    probability: *probability,
                    source: source.clone(),
                    skip: *skip,
                    dst,
                });
            }
            NodeOp::Manipulate(kind) => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                let mut kinds = vec![*kind];
                let mut last = i;
                while let Some(next) = fuse_next(last) {
                    fused[next] = true;
                    let NodeOp::Manipulate(next_kind) = &nodes[next].op else {
                        unreachable!("fuse_next only follows manipulator nodes");
                    };
                    let next_kind = *next_kind;
                    ops.push(nodes[next].op.clone());
                    kinds.push(next_kind);
                    last = next;
                }
                if kinds.len() > 1 {
                    report.fused_runs += 1;
                }
                let dst_x = slot_of(port(last, 0), &mut slots);
                let dst_y = slot_of(port(last, 1), &mut slots);
                steps.push(Step::Manipulate {
                    kinds,
                    x,
                    y,
                    dst_x,
                    dst_y,
                });
            }
            NodeOp::Regenerate { source, skip } => {
                let src = slot_of(inputs[0], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::Regenerate {
                    source: source.clone(),
                    skip: *skip,
                    src,
                    dst,
                });
            }
            NodeOp::Not => {
                let src = slot_of(inputs[0], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::Not { src, dst });
            }
            NodeOp::Binary(op) => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::Binary { op: *op, x, y, dst });
            }
            NodeOp::UnaryFsm(op) => {
                let src = slot_of(inputs[0], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::UnaryFsm { op: *op, src, dst });
            }
            NodeOp::Divide {
                source,
                skip,
                counter_bits,
            } => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::Divide {
                    source: source.clone(),
                    skip: *skip,
                    counter_bits: *counter_bits,
                    x,
                    y,
                    dst,
                });
            }
            NodeOp::MuxAdd { select, skip } => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::MuxAdd {
                    select: select.clone(),
                    skip: *skip,
                    x,
                    y,
                    dst,
                });
            }
            NodeOp::WeightedMux {
                weights,
                select,
                skip,
            } => {
                let srcs: Vec<usize> = inputs.iter().map(|w| slot_of(*w, &mut slots)).collect();
                let dst = slot_of(port(i, 0), &mut slots);
                steps.push(Step::WeightedMux {
                    weights: weights.clone(),
                    select: select.clone(),
                    skip: *skip,
                    srcs,
                    dst,
                });
            }
            NodeOp::SinkStream { name } => {
                let src = slot_of(inputs[0], &mut slots);
                steps.push(Step::SinkStream {
                    name: name.clone(),
                    src,
                });
            }
            NodeOp::SinkValue { name } => {
                let src = slot_of(inputs[0], &mut slots);
                steps.push(Step::SinkValue {
                    name: name.clone(),
                    src,
                });
            }
            NodeOp::SinkCount { name } => {
                let src = slot_of(inputs[0], &mut slots);
                steps.push(Step::SinkCount {
                    name: name.clone(),
                    src,
                });
            }
            NodeOp::SinkSum { name } => {
                let srcs: Vec<usize> = inputs.iter().map(|w| slot_of(*w, &mut slots)).collect();
                steps.push(Step::SinkSum {
                    name: name.clone(),
                    srcs,
                });
            }
            NodeOp::SccProbe { name } => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                steps.push(Step::SccProbe {
                    name: name.clone(),
                    x,
                    y,
                });
            }
        }
    }

    Ok(CompiledGraph {
        steps,
        slot_count,
        value_slots,
        stream_slots,
        report,
        ops,
        class: PLAN_CLASS.fetch_add(1, Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{BinaryOp, ManipulatorKind};
    use sc_rng::SourceSpec;

    fn sobol(d: u32) -> SourceSpec {
        SourceSpec::Sobol { dimension: d }
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::new();
        assert!(matches!(
            g.compile(&PlannerOptions::default()),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn plan_class_marks_templates_and_lane_batchable_plans() {
        let build = || {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let (sx, sy) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
            g.sink_stream("x", sx);
            g.sink_stream("y", sy);
            g
        };
        let a = build().compile(&PlannerOptions::default()).unwrap();
        let b = build().compile(&PlannerOptions::default()).unwrap();
        // Every compile mints a fresh class; clones and retargeted copies
        // keep their template's class (that sharing is what the executor's
        // lane grouping keys on).
        assert_ne!(a.plan_class(), b.plan_class());
        assert_eq!(a.clone().plan_class(), a.plan_class());
        let retargeted = a.retarget_sources(|_| {
            Some(SourceSpec::Lfsr {
                width: 16,
                seed: 0x1234,
            })
        });
        assert_eq!(retargeted.plan_class(), a.plan_class());
        // Manipulator steps make a plan lane batchable; a pure bitwise plan
        // (CaAdd is correlation-agnostic, so no repair is inserted) is not.
        assert!(a.lane_batchable());
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::CaAdd, x, y);
        g.sink_value("z", z);
        let plain = g.compile(&PlannerOptions::default()).unwrap();
        assert!(!plain.lane_batchable());
        // Counter-based max and activation FSMs are lane batchable too.
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let t = g.stanh(3, x);
        g.sink_value("t", t);
        assert!(g
            .compile(&PlannerOptions::default())
            .unwrap()
            .lane_batchable());
    }

    #[test]
    fn duplicate_sink_rejected() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        g.sink_value("z", x);
        g.sink_count("z", x);
        assert!(matches!(
            g.compile(&PlannerOptions::default()),
            Err(GraphError::DuplicateSink { .. })
        ));
    }

    #[test]
    fn rewired_cycle_detected() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let a = g.binary(BinaryOp::CaAdd, x, y);
        let b = g.not(a);
        // Make a depend on b: a → b → a.
        g.rewire(a.node(), 0, b).unwrap();
        assert!(matches!(
            g.compile(&PlannerOptions::default()),
            Err(GraphError::Cycle { .. })
        ));
    }

    #[test]
    fn identity_cycle_is_rejected_not_overflowed() {
        // Regression: pair_class recurses through identity manipulators, so a
        // rewired identity self-loop must be caught by the up-front cycle
        // check instead of overflowing the stack inside the planner.
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let (i0, i1) = g.manipulate(ManipulatorKind::Identity, x, y);
        let z = g.binary(BinaryOp::AndMultiply, i0, i1);
        g.sink_value("z", z);
        // Make the identity node consume its own output.
        g.rewire(i0.node(), 0, i0).unwrap();
        assert!(matches!(
            g.compile(&PlannerOptions::default()),
            Err(GraphError::Cycle { .. })
        ));
    }

    #[test]
    fn planner_inserts_synchronizer_for_xor_on_uncorrelated_inputs() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::XorSubtract, x, y);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.report().inserted.len(), 1);
        assert!(plan.report().inserted[0].contains("synchronizer"));
        assert!(plan
            .ops()
            .iter()
            .any(|op| matches!(op, NodeOp::Manipulate(ManipulatorKind::Synchronizer { .. }))));
    }

    #[test]
    fn planner_skips_satisfied_preconditions() {
        let mut g = Graph::new();
        // Shared spec ⇒ positively correlated ⇒ or_max satisfied directly.
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(1));
        let z = g.binary(BinaryOp::OrMax, x, y);
        g.sink_value("max", z);
        // Different specs ⇒ uncorrelated ⇒ and_multiply satisfied directly.
        let a = g.generate(2, sobol(3));
        let b = g.generate(3, sobol(4));
        let m = g.binary(BinaryOp::AndMultiply, a, b);
        g.sink_value("prod", m);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert!(plan.report().inserted.is_empty());
        assert!(plan.report().unsatisfied.is_empty());
    }

    #[test]
    fn planner_tracks_manipulator_output_classes() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        // Desynchronizer pins the pair to Negative: saturating add satisfied.
        let (dx, dy) = g.manipulate(ManipulatorKind::Desynchronizer { depth: 1 }, x, y);
        let s = g.binary(BinaryOp::SaturatingAdd, dx, dy);
        g.sink_value("sat", s);
        // Identity preserves the underlying Uncorrelated class.
        let (ix, iy) = g.manipulate(ManipulatorKind::Identity, x, y);
        let p = g.binary(BinaryOp::AndMultiply, ix, iy);
        g.sink_value("prod", p);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert!(
            plan.report().inserted.is_empty(),
            "unexpected inserts: {:?}",
            plan.report().inserted
        );
    }

    #[test]
    fn no_repair_records_unsatisfied() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::XorSubtract, x, y);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::no_repair()).unwrap();
        assert!(plan.report().inserted.is_empty());
        assert_eq!(plan.report().unsatisfied.len(), 1);
        assert!(plan.report().unsatisfied[0].contains("Positive"));
    }

    #[test]
    fn measured_scc_feedback_resolves_unknown_pairs() {
        // or_max and and_min over a shared-spec (positively correlated) pair
        // produce two operator outputs whose mutual class is structurally
        // Unknown — but their actual SCC is strongly positive (both outputs
        // are supersets/subsets of the same streams). The XOR subtractor over
        // them therefore needs no repair once the pair is measured.
        let build = |options: &PlannerOptions| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(1)); // shared spec ⇒ SCC +1
            let hi = g.binary(BinaryOp::OrMax, x, y);
            let lo = g.binary(BinaryOp::AndMin, x, y);
            let z = g.binary(BinaryOp::XorSubtract, hi, lo);
            g.sink_value("range", z);
            g.compile(options).unwrap()
        };
        let structural = build(&PlannerOptions::default());
        assert_eq!(
            structural.report().inserted.len(),
            1,
            "without measurement the Unknown pair is pessimistically repaired"
        );
        assert!(structural.report().measured.is_empty());
        let measured = build(&PlannerOptions::with_measurement(256));
        assert!(
            measured.report().inserted.is_empty(),
            "measured SCC ≈ +1 satisfies the XOR precondition: {:?}",
            measured.report().inserted
        );
        assert_eq!(measured.report().measured.len(), 1);
        assert!(measured.report().measured[0].contains("Positive"));
    }

    #[test]
    fn measurement_still_repairs_truly_uncorrelated_pairs() {
        // Two unrelated multiplies: the pair really is uncorrelated, so the
        // measured class must still trigger a synchronizer for the XOR.
        let mut g = Graph::new();
        let a = g.generate(0, sobol(1));
        let b = g.generate(1, sobol(2));
        let c = g.generate(2, sobol(3));
        let d = g.generate(3, sobol(4));
        let p = g.binary(BinaryOp::AndMultiply, a, b);
        let q = g.binary(BinaryOp::AndMultiply, c, d);
        let z = g.binary(BinaryOp::XorSubtract, p, q);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::with_measurement(256)).unwrap();
        assert_eq!(plan.report().measured.len(), 1);
        assert!(plan.report().measured[0].contains("Uncorrelated"));
        assert_eq!(plan.report().inserted.len(), 1);
    }

    /// The configurable probe stimulus defaults to 0.5 and, at 0.5,
    /// reproduces the decisions the planner made before the knob existed —
    /// for both the skip-repair and the must-repair measured outcomes.
    #[test]
    fn probe_value_half_reproduces_current_decisions() {
        assert!((PlannerOptions::default().probe_value - 0.5).abs() < f64::EPSILON);
        let build = |options: &PlannerOptions| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(1));
            let hi = g.binary(BinaryOp::OrMax, x, y);
            let lo = g.binary(BinaryOp::AndMin, x, y);
            let z = g.binary(BinaryOp::XorSubtract, hi, lo);
            g.sink_value("range", z);
            g.compile(options).unwrap()
        };
        let implicit = build(&PlannerOptions::with_measurement(256));
        let explicit = build(&PlannerOptions {
            probe_value: 0.5,
            ..PlannerOptions::with_measurement(256)
        });
        assert_eq!(implicit.report(), explicit.report());
        assert!(explicit.report().inserted.is_empty());
        // A different stimulus still measures (and here reaches the same
        // strongly-positive verdict — the pair is shared-source at any value).
        let shifted = build(&PlannerOptions {
            probe_value: 0.8,
            ..PlannerOptions::with_measurement(256)
        });
        assert_eq!(shifted.report().measured.len(), 1);
        assert!(shifted.report().measured[0].contains("Positive"));
    }

    #[test]
    fn retargeted_plan_matches_directly_compiled_plan() {
        use crate::exec::{BatchInput, Executor};
        let build = |seed: u64| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let z = g.mux_add(x, y, SourceSpec::Lfsr { width: 16, seed });
            g.sink_stream("z", z);
            g.compile(&PlannerOptions::default()).unwrap()
        };
        let template = build(0xACE1);
        let retargeted = template.retarget_sources(|spec| match spec {
            SourceSpec::Lfsr { width: 16, seed } if *seed == 0xACE1 => Some(SourceSpec::Lfsr {
                width: 16,
                seed: 0xBEEF,
            }),
            _ => None,
        });
        let direct = build(0xBEEF);
        let input = BatchInput::with_values(vec![0.3, 0.8]);
        let exec = Executor::new(257);
        assert_eq!(
            exec.run(&retargeted, &input).unwrap(),
            exec.run(&direct, &input).unwrap()
        );
        // And the retargeted plan really differs from the template.
        assert_ne!(
            exec.run(&retargeted, &input).unwrap(),
            exec.run(&template, &input).unwrap()
        );
    }

    #[test]
    fn steps_are_introspectable() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::CaAdd, x, y);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.steps().len(), plan.step_count());
        assert!(plan.slot_count() >= 3);
        assert!(plan.steps().iter().any(|s| matches!(
            s,
            Step::Binary {
                op: BinaryOp::CaAdd,
                ..
            }
        )));
    }

    #[test]
    fn linear_manipulator_runs_fuse() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let (a0, a1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        let (b0, b1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 2 }, a0, a1);
        let (c0, c1) = g.manipulate(ManipulatorKind::Isolator { delay: 2 }, b0, b1);
        g.sink_stream("x", c0);
        g.sink_stream("y", c1);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.report().fused_runs, 1);
        // 2 inputs + 1 fused manipulator step + 2 sinks.
        assert_eq!(plan.step_count(), 5);
        let unfused = g.compile(&PlannerOptions {
            fuse: false,
            ..PlannerOptions::default()
        });
        assert_eq!(unfused.unwrap().step_count(), 7);
    }

    #[test]
    fn branching_runs_do_not_fuse() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let (a0, a1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        let (_, b1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, a0, a1);
        // a0 feeds the second manipulator AND a sink: the run must not fuse.
        g.sink_stream("tap", a0);
        g.sink_stream("out", b1);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.report().fused_runs, 0);
    }

    #[test]
    fn slot_counts_reflect_batch_requirements() {
        let mut g = Graph::new();
        let x = g.generate(3, sobol(1));
        let s = g.input_stream(1);
        let z = g.binary(BinaryOp::CaAdd, x, s);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.value_slots(), 4);
        assert_eq!(plan.stream_slots(), 2);
    }
}
