//! The graph compiler: public plan types and the entry point of the staged
//! optimizer pass pipeline.
//!
//! Compilation runs the pass pipeline in `crate::passes`:
//!
//! 1. **validate** — wires must reference existing nodes/ports, arities
//!    must match, sink names must be unique, and the graph must be acyclic
//!    (Kahn topological sort; only [`crate::Graph::rewire`] can introduce a
//!    cycle).
//! 2. **scc-infer** — every binary operator declares the SCC class its
//!    inputs must have (paper Fig. 2). The pass derives the class of each
//!    input pair *structurally*: streams from equal source specs are
//!    positively correlated (shared-RNG, §II.B), streams from different
//!    specs are uncorrelated, and a manipulator pins its output pair to the
//!    class it establishes (+1 synchronizer / −1 desynchronizer / 0
//!    decorrelator, §III). Structurally unknown pairs can be resolved by a
//!    measured-SCC probe execution ([`PlannerOptions::measure_unknown`]).
//! 3. **subgraph-cse** — structurally identical subgraphs (same ops, same
//!    [`SourceSpec`]s, and therefore the same SCC classes) merge into one,
//!    extending the executor's per-spec source sharing to whole repeated
//!    structure.
//! 4. **repair-placement** — where a precondition is not met and
//!    [`PlannerOptions::auto_repair`] is on, the legal repairs are
//!    enumerated, priced through the `sc_hwcost` bridge, and the cheapest is
//!    applied (the paper's core insight, applied automatically — and at
//!    minimum hardware cost).
//! 5. **span-fusion** — maximal linear source→gate→sink spans collapse into
//!    single [`Step::Fused`] steps; independently, maximal linear runs of
//!    manipulator nodes collapse into one [`sc_core::ManipulatorChain`]
//!    step at emission, so a run of `k` circuits makes a single
//!    register-staged pass per 64-bit word.
//! 6. **emit** — nodes are laid out in topological order as a flat step
//!    list over dense stream slots, ready for the batch executor.
//!
//! Individual optimizer passes toggle through [`PassSet`]; every pass
//! preserves bit-identity, so a fully optimized plan and a pass-disabled
//! plan produce the same output bit for bit.

use crate::graph::{Graph, GraphError};
use crate::node::{BinaryOp, ManipulatorKind, NodeOp, SccClass, UnaryFsmOp};
use sc_rng::SourceSpec;
use sc_telemetry::TelemetrySink;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide monotonic counter behind [`CompiledGraph::plan_class`]: every
/// `compile` call mints a fresh class, and clones / retargeted copies keep
/// their template's class.
static PLAN_CLASS: AtomicU64 = AtomicU64::new(0);

/// Mints the class id for a freshly compiled plan: a process-unique sequence
/// number tagged (in the low bits) with the enabled pass set, so plans
/// compiled under different optimizer configurations can never share a
/// class even if a future cache grows collision-prone.
pub(crate) fn next_plan_class(passes: PassSet) -> u64 {
    (PLAN_CLASS.fetch_add(1, Ordering::Relaxed) << 4) | passes.bits()
}

/// Selects which optimizer passes of the compile pipeline run. The
/// always-on stages (validate, scc-infer, repair insertion itself, emit)
/// are not gated — only the optimizations are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PassSet {
    /// Merge structurally identical subgraphs (subgraph-cse pass).
    pub cse: bool,
    /// Price repair placements through `sc_hwcost` and reuse identical
    /// repairs instead of always inserting a fresh circuit
    /// (repair-placement pass).
    pub cost_repair: bool,
    /// Collapse linear spans into [`Step::Fused`] steps and manipulator
    /// runs into chain steps (span-fusion pass; also requires the
    /// deprecated [`PlannerOptions::fuse`] alias to stay `true`).
    pub fusion: bool,
    /// Drop dead interior nodes — nodes no sink transitively consumes,
    /// including inputs of CSE-merged losers that lost their last consumer —
    /// from scheduling entirely (dead-node-elimination pass).
    pub dce: bool,
}

impl Default for PassSet {
    fn default() -> Self {
        PassSet::all()
    }
}

impl PassSet {
    /// Every optimizer pass enabled (the default).
    #[must_use]
    pub fn all() -> Self {
        PassSet {
            cse: true,
            cost_repair: true,
            fusion: true,
            dce: true,
        }
    }

    /// Every optimizer pass disabled: the plain validate → infer → repair →
    /// emit baseline.
    #[must_use]
    pub fn none() -> Self {
        PassSet {
            cse: false,
            cost_repair: false,
            fusion: false,
            dce: false,
        }
    }

    /// Compact bit encoding (4 bits), folded into
    /// [`CompiledGraph::plan_class`].
    #[must_use]
    pub fn bits(self) -> u64 {
        u64::from(self.cse)
            | (u64::from(self.cost_repair) << 1)
            | (u64::from(self.fusion) << 2)
            | (u64::from(self.dce) << 3)
    }
}

/// Knobs of the compile pipeline's planning passes.
///
/// `PartialEq` compares every planning knob but ignores the
/// [`PlannerOptions::dump_ir`] debug hook (function pointer addresses are
/// not meaningful to compare, and the hook never influences the compiled
/// plan).
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Insert correlation-establishing manipulators where a binary operator's
    /// SCC precondition is not structurally guaranteed (default `true`).
    /// When `false`, unmet preconditions are only recorded in the
    /// [`CompileReport`].
    pub auto_repair: bool,
    /// Save depth of auto-inserted synchronizers.
    pub synchronizer_depth: u32,
    /// Save depth of auto-inserted desynchronizers.
    pub desynchronizer_depth: u32,
    /// Shuffle-buffer depth of auto-inserted decorrelators.
    pub decorrelator_depth: usize,
    /// Deprecated alias for [`PassSet::fusion`], kept so callers predating
    /// the pass pipeline keep compiling: fusion (manipulator chains and
    /// span fusion alike) runs only when **both** this and
    /// [`PlannerOptions::passes`]`.fusion` are `true`. New code should
    /// leave this `true` and steer through `passes`.
    pub fuse: bool,
    /// Measured-SCC feedback: when an operator's input pair has structural
    /// class [`SccClass::Unknown`], run a short [`sc_core::SccTracker`]-style
    /// probe execution of this length over representative inputs and use the
    /// *measured* class for the repair decision instead of pessimistically
    /// treating the pair as unknown. `None` (the default) keeps the purely
    /// structural behaviour.
    pub measure_unknown: Option<usize>,
    /// The digital value fed to every `Generate` slot during a measured-SCC
    /// probe execution (default `0.5`, the maximum-entropy stimulus). Set
    /// this to a representative batch statistic — e.g. the mean pixel value
    /// of the images a tile pipeline will process — so repair decisions are
    /// driven by the operating point the design actually sees.
    pub probe_value: f64,
    /// Which optimizer passes run (default: all of them).
    pub passes: PassSet,
    /// Debug hook: called after every executed pass with the pass name and
    /// a pretty-printed dump of the IR it produced, for bug reports and
    /// compiler archaeology. `None` (the default) prints nothing.
    pub dump_ir: Option<fn(pass: &str, ir: &str)>,
}

impl PartialEq for PlannerOptions {
    fn eq(&self, other: &Self) -> bool {
        self.auto_repair == other.auto_repair
            && self.synchronizer_depth == other.synchronizer_depth
            && self.desynchronizer_depth == other.desynchronizer_depth
            && self.decorrelator_depth == other.decorrelator_depth
            && self.fuse == other.fuse
            && self.measure_unknown == other.measure_unknown
            && self.probe_value == other.probe_value
            && self.passes == other.passes
    }
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            auto_repair: true,
            synchronizer_depth: 1,
            desynchronizer_depth: 1,
            decorrelator_depth: 4,
            fuse: true,
            measure_unknown: None,
            probe_value: 0.5,
            passes: PassSet::default(),
            dump_ir: None,
        }
    }
}

impl PlannerOptions {
    /// Options with auto-repair disabled (preconditions only reported).
    #[must_use]
    pub fn no_repair() -> Self {
        PlannerOptions {
            auto_repair: false,
            ..PlannerOptions::default()
        }
    }

    /// Options with measured-SCC feedback enabled at the given probe length.
    #[must_use]
    pub fn with_measurement(probe_length: usize) -> Self {
        PlannerOptions {
            measure_unknown: Some(probe_length.max(1)),
            ..PlannerOptions::default()
        }
    }

    /// Options with the given optimizer pass set (all other knobs default).
    #[must_use]
    pub fn with_passes(passes: PassSet) -> Self {
        PlannerOptions {
            passes,
            ..PlannerOptions::default()
        }
    }

    /// Whether fusion actually runs: both the modern [`PassSet::fusion`]
    /// switch and the deprecated [`PlannerOptions::fuse`] alias must be on.
    #[must_use]
    pub fn fusion_enabled(&self) -> bool {
        self.fuse && self.passes.fusion
    }
}

/// One structurally-unknown input pair whose class was resolved by a
/// measured-SCC probe ([`PlannerOptions::measure_unknown`]). The `Display`
/// impl reproduces the pre-structured report text.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPair {
    /// The operator whose input pair was probed (e.g. `xor_subtract`).
    pub label: String,
    /// The operator's node index.
    pub node: usize,
    /// The measured stochastic cross-correlation, in `[-1, 1]`.
    pub scc: f64,
    /// Probe execution length in cycles.
    pub probe_length: usize,
    /// The class the measurement resolved the pair to.
    pub class: SccClass,
}

impl fmt::Display for MeasuredPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let MeasuredPair {
            label,
            node,
            scc,
            probe_length,
            class,
        } = self;
        write!(
            f,
            "inputs of {label} (node n{node}) measured SCC {scc:.3} over {probe_length} \
             cycles: treating pair as {class:?}"
        )
    }
}

/// What one executed compile pass did to the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassDelta {
    /// The pass name (e.g. `subgraph-cse`).
    pub pass: &'static str,
    /// Nodes the pass appended (repair circuits).
    pub nodes_added: usize,
    /// Live nodes the pass eliminated (CSE merges).
    pub nodes_removed: usize,
    /// Short human-readable summary of the pass's effect.
    pub detail: String,
}

/// What the pipeline did to a graph during compilation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileReport {
    /// One entry per auto-inserted repair manipulator.
    pub inserted: Vec<String>,
    /// One entry per binary operator whose precondition is not structurally
    /// guaranteed and was *not* repaired (auto-repair off).
    pub unsatisfied: Vec<String>,
    /// Number of fused manipulator runs of length ≥ 2.
    pub fused_runs: usize,
    /// One entry per structurally-unknown input pair whose class was resolved
    /// by a measured-SCC probe ([`PlannerOptions::measure_unknown`]).
    pub measured: Vec<MeasuredPair>,
    /// Duplicate subgraph nodes the CSE pass merged away.
    pub shared_subgraphs: usize,
    /// Failing operators repaired by *reusing* an existing identical
    /// manipulator instead of inserting a fresh one (cost-driven placement).
    pub shared_repairs: usize,
    /// Source-drawing steps whose [`SourceSpec`] is shared with an earlier
    /// step — generator hardware the plan does not have to duplicate
    /// (tallied when the CSE pass is enabled).
    pub shared_sources: usize,
    /// Linear spans the span-fusion pass collapsed into [`Step::Fused`]
    /// steps.
    pub fused_spans: usize,
    /// Dead interior nodes the dead-node-elimination pass dropped from
    /// scheduling (nodes no sink transitively consumes).
    pub dead_nodes: usize,
    /// Executable steps eliminated by span fusion (nodes folded into a
    /// fused step minus the fused steps themselves).
    pub steps_eliminated: usize,
    /// Per-pass before/after deltas, in execution order.
    pub pass_deltas: Vec<PassDelta>,
}

/// One executable step of a compiled plan. Slot indices address the dense
/// per-execution stream environment (`0..CompiledGraph::slot_count()`).
///
/// Steps are public so lowering backends (the `sc_rtl` gate-level elaborator
/// in particular) can walk a plan's exact execution structure — including
/// fused manipulator runs, fused spans, and planner-inserted repairs —
/// without re-deriving it from the source graph. The enum is
/// `#[non_exhaustive]`: consumers must handle unknown future step kinds
/// (typically by reporting the plan as unsupported).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Step {
    /// Copy `BatchInput::streams[slot]` into `dst`.
    Input {
        /// Index into the batch item's stream list.
        slot: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// D/S-convert `BatchInput::values[slot]` into `dst`.
    Generate {
        /// Index into the batch item's value list.
        slot: usize,
        /// Comparator sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Destination stream slot.
        dst: usize,
    },
    /// D/S-convert a constant probability into `dst`.
    Constant {
        /// The encoded probability.
        probability: f64,
        /// Comparator sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Destination stream slot.
        dst: usize,
    },
    /// Run a (possibly fused) chain of correlation manipulators.
    Manipulate {
        /// The chained circuit kinds, in dataflow order.
        kinds: Vec<ManipulatorKind>,
        /// X input slot.
        x: usize,
        /// Y input slot.
        y: usize,
        /// Manipulated-X destination slot.
        dst_x: usize,
        /// Manipulated-Y destination slot.
        dst_y: usize,
    },
    /// S/D + D/S regeneration from a fresh source.
    Regenerate {
        /// Re-encoding sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Input stream slot.
        src: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// Stream complement.
    Not {
        /// Input stream slot.
        src: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// A two-input arithmetic operator.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// X input slot.
        x: usize,
        /// Y input slot.
        y: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// A saturating-counter FSM activation.
    UnaryFsm {
        /// The FSM design.
        op: UnaryFsmOp,
        /// Input stream slot.
        src: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// The feedback SC divider.
    Divide {
        /// Comparison sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Integration counter width.
        counter_bits: u32,
        /// Numerator input slot.
        x: usize,
        /// Denominator input slot.
        y: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// MUX scaled adder with a dedicated 0.5-valued select source.
    MuxAdd {
        /// Select-stream source.
        select: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// X input slot (picked when the select bit is 1).
        x: usize,
        /// Y input slot.
        y: usize,
        /// Destination stream slot.
        dst: usize,
    },
    /// Weighted multiplexer tree.
    WeightedMux {
        /// Per-input selection probabilities, in input order.
        weights: Vec<f64>,
        /// Selection sample source.
        select: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Input stream slots, one per weight.
        srcs: Vec<usize>,
        /// Destination stream slot.
        dst: usize,
    },
    /// Sink: expose the stream itself.
    SinkStream {
        /// Output name.
        name: String,
        /// Input stream slot.
        src: usize,
    },
    /// Sink: S/D conversion to the stream's unipolar value.
    SinkValue {
        /// Output name.
        name: String,
        /// Input stream slot.
        src: usize,
    },
    /// Sink: S/D conversion to the raw 1s count.
    SinkCount {
        /// Output name.
        name: String,
        /// Input stream slot.
        src: usize,
    },
    /// Sink: accumulative parallel counter over all inputs.
    SinkSum {
        /// Output name.
        name: String,
        /// Input stream slots.
        srcs: Vec<usize>,
    },
    /// Sink: SCC probe over a stream pair.
    SccProbe {
        /// Output name.
        name: String,
        /// X input slot.
        x: usize,
        /// Y input slot.
        y: usize,
    },
    /// A span-fusion group: the contained steps execute back to back as one
    /// scheduled step, in dataflow order, over the same dense slots they
    /// would use unfused. Produced by the span-fusion pass for maximal
    /// linear source→gate→sink spans.
    Fused {
        /// The collapsed steps, in scheduling (dataflow) order.
        steps: Vec<Step>,
    },
}

/// A validated, planned, optimized, topologically ordered execution plan.
///
/// Produced by [`Graph::compile`]; executed by [`crate::Executor`]. The plan
/// is immutable and `Send + Sync`, so one compiled graph can drive many
/// worker threads at once.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    pub(crate) steps: Vec<Step>,
    pub(crate) slot_count: usize,
    pub(crate) value_slots: usize,
    pub(crate) stream_slots: usize,
    report: CompileReport,
    /// Every operation the plan executes (graph nodes plus planner-inserted
    /// repairs), for introspection and the `sc_hwcost` bridge.
    ops: Vec<NodeOp>,
    /// The optimizer pass set the plan was compiled under.
    passes: PassSet,
    /// Template-class id: fresh per `compile` call, preserved by `Clone` and
    /// [`CompiledGraph::retarget_sources`]. Two plans of one class are
    /// structurally identical step for step (only their [`SourceSpec`]s may
    /// differ), which is what lets the executor run same-class jobs in
    /// lockstep lanes. The low bits encode [`PassSet::bits`].
    class: u64,
}

impl CompiledGraph {
    /// Builds a plan from the emit stage's artifacts, minting its class id.
    pub(crate) fn assemble(
        steps: Vec<Step>,
        slot_count: usize,
        value_slots: usize,
        stream_slots: usize,
        report: CompileReport,
        ops: Vec<NodeOp>,
        passes: PassSet,
    ) -> CompiledGraph {
        CompiledGraph {
            steps,
            slot_count,
            value_slots,
            stream_slots,
            report,
            ops,
            passes,
            class: next_plan_class(passes),
        }
    }

    /// What the pipeline inserted, merged, left unrepaired, and fused.
    #[must_use]
    pub fn report(&self) -> &CompileReport {
        &self.report
    }

    /// Every operation the plan executes, including auto-inserted repair
    /// manipulators.
    #[must_use]
    pub fn ops(&self) -> &[NodeOp] {
        &self.ops
    }

    /// The optimizer pass set the plan was compiled under.
    #[must_use]
    pub fn passes(&self) -> PassSet {
        self.passes
    }

    /// Number of executable steps (fused runs and fused spans count once).
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// The executable steps, in scheduled order — the exact structure the
    /// executor runs and lowering backends elaborate.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of dense stream slots an execution environment needs.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The plan's template class: a process-unique id minted per
    /// [`Graph::compile`] call and *shared* by every clone and
    /// [`CompiledGraph::retarget_sources`] copy of that plan. Plans of one
    /// class are structurally identical (same steps, slots, and scheduling;
    /// only source seeding may differ), so the executor can transpose a
    /// group of same-class jobs into lanes and step them in lockstep. The
    /// low four bits encode the compiled [`PassSet`], so differently
    /// optimized builds of one graph can never collide.
    #[must_use]
    pub fn plan_class(&self) -> u64 {
        self.class
    }

    /// Whether the plan contains at least one step with a lane-batched
    /// kernel — a manipulator (solo or fused run), a saturating-counter FSM
    /// activation, or a counter-based max/min — so grouping same-class jobs
    /// into lanes can actually amortise an FSM dependency chain. Plans of
    /// pure bitwise ops gain nothing from lane transposition (they are
    /// already word-parallel) and are executed solo. Span fusion never
    /// captures these step kinds, so the scan does not need to recurse into
    /// [`Step::Fused`].
    #[must_use]
    pub fn lane_batchable(&self) -> bool {
        self.steps.iter().any(|step| {
            matches!(
                step,
                Step::Manipulate { .. }
                    | Step::UnaryFsm { .. }
                    | Step::Binary {
                        op: BinaryOp::CaMax | BinaryOp::CaMin,
                        ..
                    }
            )
        })
    }

    /// Returns a copy of the plan with every stored [`SourceSpec`] rewritten
    /// by `retarget` (`None` keeps the spec unchanged). Wiring, slots, skips,
    /// and scheduling are untouched, so the copy is exactly as valid as the
    /// original.
    ///
    /// This exists so one compiled plan can serve as a *template* for a
    /// family of structurally identical designs that differ only in source
    /// seeding — e.g. `sc_image` compiles one plan per tile shape and
    /// retargets the per-tile select-LFSR seeds, instead of re-running the
    /// whole compiler per tile. Retargeting must preserve the spec *equality
    /// structure* the planner reasoned about (two equal specs must stay
    /// equal, two different specs must stay different); seed-only rewrites
    /// within one family do.
    #[must_use]
    pub fn retarget_sources<F: Fn(&SourceSpec) -> Option<SourceSpec>>(
        &self,
        retarget: F,
    ) -> CompiledGraph {
        fn swap_step<F: Fn(&SourceSpec) -> Option<SourceSpec>>(step: &mut Step, retarget: &F) {
            match step {
                Step::Generate { source, .. }
                | Step::Constant { source, .. }
                | Step::Regenerate { source, .. }
                | Step::Divide { source, .. } => {
                    if let Some(new) = retarget(source) {
                        *source = new;
                    }
                }
                Step::MuxAdd { select, .. } | Step::WeightedMux { select, .. } => {
                    if let Some(new) = retarget(select) {
                        *select = new;
                    }
                }
                Step::Fused { steps } => {
                    for sub in steps {
                        swap_step(sub, retarget);
                    }
                }
                _ => {}
            }
        }
        let swap = |spec: &mut SourceSpec| {
            if let Some(new) = retarget(spec) {
                *spec = new;
            }
        };
        let mut plan = self.clone();
        for step in &mut plan.steps {
            swap_step(step, &retarget);
        }
        for op in &mut plan.ops {
            match op {
                NodeOp::Generate { source, .. }
                | NodeOp::ConstStream { source, .. }
                | NodeOp::Regenerate { source, .. }
                | NodeOp::Divide { source, .. } => swap(source),
                NodeOp::MuxAdd { select, .. } | NodeOp::WeightedMux { select, .. } => swap(select),
                _ => {}
            }
        }
        plan
    }

    /// Number of digital value slots the batch items must provide.
    #[must_use]
    pub fn value_slots(&self) -> usize {
        self.value_slots
    }

    /// Number of input stream slots the batch items must provide.
    #[must_use]
    pub fn stream_slots(&self) -> usize {
        self.stream_slots
    }
}

impl Graph {
    /// Compiles the graph into an executable plan by running the staged
    /// optimizer pass pipeline (see the `crate::passes` module).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`], [`GraphError::Cycle`],
    /// [`GraphError::BadArity`] (a `WeightedMux` whose weight count drifted
    /// from its input count via [`Graph::rewire`] misuse cannot occur, but
    /// the check is kept for defence), or [`GraphError::DuplicateSink`].
    pub fn compile(&self, options: &PlannerOptions) -> Result<CompiledGraph, GraphError> {
        self.compile_with_telemetry(options, &TelemetrySink::default())
    }

    /// [`Graph::compile`] with per-pass profiling: records one
    /// [`sc_telemetry::Stage::Compile`] span over the whole call with one
    /// nested span per executed pass ([`sc_telemetry::Stage::CompileValidate`],
    /// [`sc_telemetry::Stage::CompilePlan`],
    /// [`sc_telemetry::Stage::CompileCse`],
    /// [`sc_telemetry::Stage::CompileRepair`],
    /// [`sc_telemetry::Stage::CompileFuse`],
    /// [`sc_telemetry::Stage::CompileEmit`], plus one
    /// [`sc_telemetry::Stage::MeasuredProbe`] span per planner probe
    /// execution), and on success bumps the sink's compilation,
    /// repair-insertion, measured-probe, and fused-run counters straight
    /// from the plan's [`CompileReport`] — the counters are derived from
    /// the report, so the two cannot drift.
    ///
    /// # Errors
    ///
    /// Exactly as [`Graph::compile`].
    pub fn compile_with_telemetry(
        &self,
        options: &PlannerOptions,
        telemetry: &TelemetrySink,
    ) -> Result<CompiledGraph, GraphError> {
        crate::passes::run_pipeline(self, options, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{BinaryOp, ManipulatorKind};
    use sc_rng::SourceSpec;

    fn sobol(d: u32) -> SourceSpec {
        SourceSpec::Sobol { dimension: d }
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::new();
        assert!(matches!(
            g.compile(&PlannerOptions::default()),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn plan_class_marks_templates_and_lane_batchable_plans() {
        let build = || {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let (sx, sy) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
            g.sink_stream("x", sx);
            g.sink_stream("y", sy);
            g
        };
        let a = build().compile(&PlannerOptions::default()).unwrap();
        let b = build().compile(&PlannerOptions::default()).unwrap();
        // Every compile mints a fresh class; clones and retargeted copies
        // keep their template's class (that sharing is what the executor's
        // lane grouping keys on).
        assert_ne!(a.plan_class(), b.plan_class());
        assert_eq!(a.clone().plan_class(), a.plan_class());
        let retargeted = a.retarget_sources(|_| {
            Some(SourceSpec::Lfsr {
                width: 16,
                seed: 0x1234,
            })
        });
        assert_eq!(retargeted.plan_class(), a.plan_class());
        // Manipulator steps make a plan lane batchable; a pure bitwise plan
        // (CaAdd is correlation-agnostic, so no repair is inserted) is not.
        assert!(a.lane_batchable());
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::CaAdd, x, y);
        g.sink_value("z", z);
        let plain = g.compile(&PlannerOptions::default()).unwrap();
        assert!(!plain.lane_batchable());
        // Counter-based max and activation FSMs are lane batchable too.
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let t = g.stanh(3, x);
        g.sink_value("t", t);
        assert!(g
            .compile(&PlannerOptions::default())
            .unwrap()
            .lane_batchable());
    }

    #[test]
    fn plan_class_low_bits_encode_the_pass_set() {
        let build = |passes: PassSet| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let z = g.binary(BinaryOp::CaAdd, x, y);
            g.sink_value("z", z);
            g.compile(&PlannerOptions::with_passes(passes)).unwrap()
        };
        let optimized = build(PassSet::all());
        let baseline = build(PassSet::none());
        assert_eq!(optimized.plan_class() & 0b1111, PassSet::all().bits());
        assert_eq!(baseline.plan_class() & 0b1111, 0);
        assert_eq!(optimized.passes(), PassSet::all());
        assert_eq!(baseline.passes(), PassSet::none());
    }

    #[test]
    fn duplicate_sink_rejected() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        g.sink_value("z", x);
        g.sink_count("z", x);
        assert!(matches!(
            g.compile(&PlannerOptions::default()),
            Err(GraphError::DuplicateSink { .. })
        ));
    }

    #[test]
    fn rewired_cycle_detected() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let a = g.binary(BinaryOp::CaAdd, x, y);
        let b = g.not(a);
        // Make a depend on b: a → b → a.
        g.rewire(a.node(), 0, b).unwrap();
        assert!(matches!(
            g.compile(&PlannerOptions::default()),
            Err(GraphError::Cycle { .. })
        ));
    }

    #[test]
    fn identity_cycle_is_rejected_not_overflowed() {
        // Regression: pair_class recurses through identity manipulators, so a
        // rewired identity self-loop must be caught by the up-front cycle
        // check instead of overflowing the stack inside the planner.
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let (i0, i1) = g.manipulate(ManipulatorKind::Identity, x, y);
        let z = g.binary(BinaryOp::AndMultiply, i0, i1);
        g.sink_value("z", z);
        // Make the identity node consume its own output.
        g.rewire(i0.node(), 0, i0).unwrap();
        assert!(matches!(
            g.compile(&PlannerOptions::default()),
            Err(GraphError::Cycle { .. })
        ));
    }

    #[test]
    fn planner_inserts_synchronizer_for_xor_on_uncorrelated_inputs() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::XorSubtract, x, y);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.report().inserted.len(), 1);
        assert!(plan.report().inserted[0].contains("synchronizer"));
        assert!(plan
            .ops()
            .iter()
            .any(|op| matches!(op, NodeOp::Manipulate(ManipulatorKind::Synchronizer { .. }))));
    }

    #[test]
    fn planner_skips_satisfied_preconditions() {
        let mut g = Graph::new();
        // Shared spec ⇒ positively correlated ⇒ or_max satisfied directly.
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(1));
        let z = g.binary(BinaryOp::OrMax, x, y);
        g.sink_value("max", z);
        // Different specs ⇒ uncorrelated ⇒ and_multiply satisfied directly.
        let a = g.generate(2, sobol(3));
        let b = g.generate(3, sobol(4));
        let m = g.binary(BinaryOp::AndMultiply, a, b);
        g.sink_value("prod", m);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert!(plan.report().inserted.is_empty());
        assert!(plan.report().unsatisfied.is_empty());
    }

    #[test]
    fn planner_tracks_manipulator_output_classes() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        // Desynchronizer pins the pair to Negative: saturating add satisfied.
        let (dx, dy) = g.manipulate(ManipulatorKind::Desynchronizer { depth: 1 }, x, y);
        let s = g.binary(BinaryOp::SaturatingAdd, dx, dy);
        g.sink_value("sat", s);
        // Identity preserves the underlying Uncorrelated class.
        let (ix, iy) = g.manipulate(ManipulatorKind::Identity, x, y);
        let p = g.binary(BinaryOp::AndMultiply, ix, iy);
        g.sink_value("prod", p);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert!(
            plan.report().inserted.is_empty(),
            "unexpected inserts: {:?}",
            plan.report().inserted
        );
    }

    #[test]
    fn no_repair_records_unsatisfied() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::XorSubtract, x, y);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::no_repair()).unwrap();
        assert!(plan.report().inserted.is_empty());
        assert_eq!(plan.report().unsatisfied.len(), 1);
        assert!(plan.report().unsatisfied[0].contains("Positive"));
    }

    #[test]
    fn measured_scc_feedback_resolves_unknown_pairs() {
        // or_max and and_min over a shared-spec (positively correlated) pair
        // produce two operator outputs whose mutual class is structurally
        // Unknown — but their actual SCC is strongly positive (both outputs
        // are supersets/subsets of the same streams). The XOR subtractor over
        // them therefore needs no repair once the pair is measured.
        let build = |options: &PlannerOptions| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(1)); // shared spec ⇒ SCC +1
            let hi = g.binary(BinaryOp::OrMax, x, y);
            let lo = g.binary(BinaryOp::AndMin, x, y);
            let z = g.binary(BinaryOp::XorSubtract, hi, lo);
            g.sink_value("range", z);
            g.compile(options).unwrap()
        };
        let structural = build(&PlannerOptions::default());
        assert_eq!(
            structural.report().inserted.len(),
            1,
            "without measurement the Unknown pair is pessimistically repaired"
        );
        assert!(structural.report().measured.is_empty());
        let measured = build(&PlannerOptions::with_measurement(256));
        assert!(
            measured.report().inserted.is_empty(),
            "measured SCC ≈ +1 satisfies the XOR precondition: {:?}",
            measured.report().inserted
        );
        assert_eq!(measured.report().measured.len(), 1);
        assert_eq!(measured.report().measured[0].class, SccClass::Positive);
        assert!(measured.report().measured[0]
            .to_string()
            .contains("Positive"));
    }

    #[test]
    fn measurement_still_repairs_truly_uncorrelated_pairs() {
        // Two unrelated multiplies: the pair really is uncorrelated, so the
        // measured class must still trigger a synchronizer for the XOR.
        let mut g = Graph::new();
        let a = g.generate(0, sobol(1));
        let b = g.generate(1, sobol(2));
        let c = g.generate(2, sobol(3));
        let d = g.generate(3, sobol(4));
        let p = g.binary(BinaryOp::AndMultiply, a, b);
        let q = g.binary(BinaryOp::AndMultiply, c, d);
        let z = g.binary(BinaryOp::XorSubtract, p, q);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::with_measurement(256)).unwrap();
        assert_eq!(plan.report().measured.len(), 1);
        assert_eq!(plan.report().measured[0].class, SccClass::Uncorrelated);
        assert!(plan.report().measured[0]
            .to_string()
            .contains("Uncorrelated"));
        assert_eq!(plan.report().inserted.len(), 1);
    }

    /// The structured [`MeasuredPair`] record renders exactly the legacy
    /// report line, so log consumers see unchanged text.
    #[test]
    fn measured_pair_display_reproduces_legacy_text() {
        let pair = MeasuredPair {
            label: "xor_subtract".to_string(),
            node: 7,
            scc: 0.98765,
            probe_length: 256,
            class: SccClass::Positive,
        };
        assert_eq!(
            pair.to_string(),
            "inputs of xor_subtract (node n7) measured SCC 0.988 over 256 cycles: \
             treating pair as Positive"
        );
    }

    /// The configurable probe stimulus defaults to 0.5 and, at 0.5,
    /// reproduces the decisions the planner made before the knob existed —
    /// for both the skip-repair and the must-repair measured outcomes.
    #[test]
    fn probe_value_half_reproduces_current_decisions() {
        assert!((PlannerOptions::default().probe_value - 0.5).abs() < f64::EPSILON);
        let build = |options: &PlannerOptions| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(1));
            let hi = g.binary(BinaryOp::OrMax, x, y);
            let lo = g.binary(BinaryOp::AndMin, x, y);
            let z = g.binary(BinaryOp::XorSubtract, hi, lo);
            g.sink_value("range", z);
            g.compile(options).unwrap()
        };
        let implicit = build(&PlannerOptions::with_measurement(256));
        let explicit = build(&PlannerOptions {
            probe_value: 0.5,
            ..PlannerOptions::with_measurement(256)
        });
        assert_eq!(implicit.report(), explicit.report());
        assert!(explicit.report().inserted.is_empty());
        // A different stimulus still measures (and here reaches the same
        // strongly-positive verdict — the pair is shared-source at any value).
        let shifted = build(&PlannerOptions {
            probe_value: 0.8,
            ..PlannerOptions::with_measurement(256)
        });
        assert_eq!(shifted.report().measured.len(), 1);
        assert_eq!(shifted.report().measured[0].class, SccClass::Positive);
    }

    #[test]
    fn retargeted_plan_matches_directly_compiled_plan() {
        use crate::exec::{BatchInput, Executor};
        let build = |seed: u64| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let z = g.mux_add(x, y, SourceSpec::Lfsr { width: 16, seed });
            g.sink_stream("z", z);
            g.compile(&PlannerOptions::default()).unwrap()
        };
        let template = build(0xACE1);
        let retargeted = template.retarget_sources(|spec| match spec {
            SourceSpec::Lfsr { width: 16, seed } if *seed == 0xACE1 => Some(SourceSpec::Lfsr {
                width: 16,
                seed: 0xBEEF,
            }),
            _ => None,
        });
        let direct = build(0xBEEF);
        let input = BatchInput::with_values(vec![0.3, 0.8]);
        let exec = Executor::new(257);
        assert_eq!(
            exec.run(&retargeted, &input).unwrap(),
            exec.run(&direct, &input).unwrap()
        );
        // And the retargeted plan really differs from the template.
        assert_ne!(
            exec.run(&retargeted, &input).unwrap(),
            exec.run(&template, &input).unwrap()
        );
    }

    #[test]
    fn retargeting_recurses_into_fused_spans() {
        use crate::exec::{BatchInput, Executor};
        // A linear gen → mux_add → sink graph span-fuses under the default
        // pass set, so the MuxAdd select spec lives *inside* a Fused step;
        // retargeting must still reach it.
        let build = |seed: u64| {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let z = g.mux_add(x, y, SourceSpec::Lfsr { width: 16, seed });
            g.sink_stream("z", z);
            g.compile(&PlannerOptions::default()).unwrap()
        };
        let template = build(0xACE1);
        assert!(
            template
                .steps()
                .iter()
                .any(|s| matches!(s, Step::Fused { .. })),
            "expected the linear span to fuse: {:?}",
            template.steps()
        );
        let retargeted = template.retarget_sources(|spec| match spec {
            SourceSpec::Lfsr { width: 16, seed } if *seed == 0xACE1 => Some(SourceSpec::Lfsr {
                width: 16,
                seed: 0xBEEF,
            }),
            _ => None,
        });
        let direct = build(0xBEEF);
        let input = BatchInput::with_values(vec![0.3, 0.8]);
        let exec = Executor::new(257);
        assert_eq!(
            exec.run(&retargeted, &input).unwrap(),
            exec.run(&direct, &input).unwrap()
        );
    }

    #[test]
    fn steps_are_introspectable() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::CaAdd, x, y);
        g.sink_value("z", z);
        let plan = g
            .compile(&PlannerOptions::with_passes(PassSet::none()))
            .unwrap();
        assert_eq!(plan.steps().len(), plan.step_count());
        assert!(plan.slot_count() >= 3);
        assert!(plan.steps().iter().any(|s| matches!(
            s,
            Step::Binary {
                op: BinaryOp::CaAdd,
                ..
            }
        )));
    }

    #[test]
    fn linear_manipulator_runs_fuse() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let (a0, a1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        let (b0, b1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 2 }, a0, a1);
        let (c0, c1) = g.manipulate(ManipulatorKind::Isolator { delay: 2 }, b0, b1);
        g.sink_stream("x", c0);
        g.sink_stream("y", c1);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.report().fused_runs, 1);
        // 2 inputs + 1 fused manipulator step + 2 sinks.
        assert_eq!(plan.step_count(), 5);
        let unfused = g.compile(&PlannerOptions {
            fuse: false,
            ..PlannerOptions::default()
        });
        assert_eq!(unfused.unwrap().step_count(), 7);
    }

    #[test]
    fn branching_runs_do_not_fuse() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let (a0, a1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        let (_, b1) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, a0, a1);
        // a0 feeds the second manipulator AND a sink: the run must not fuse.
        g.sink_stream("tap", a0);
        g.sink_stream("out", b1);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.report().fused_runs, 0);
    }

    #[test]
    fn slot_counts_reflect_batch_requirements() {
        let mut g = Graph::new();
        let x = g.generate(3, sobol(1));
        let s = g.input_stream(1);
        let z = g.binary(BinaryOp::CaAdd, x, s);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(plan.value_slots(), 4);
        assert_eq!(plan.stream_slots(), 2);
    }

    #[test]
    fn subgraph_cse_merges_identical_subgraphs() {
        use crate::exec::{BatchInput, Executor};
        // Two byte-identical generate→multiply subgraphs: CSE merges both
        // the duplicated generator and the duplicated multiply.
        let build = || {
            let mut g = Graph::new();
            let a1 = g.generate(0, sobol(1));
            let a2 = g.generate(0, sobol(1)); // duplicate of a1
            let b = g.generate(1, sobol(2));
            let p = g.binary(BinaryOp::AndMultiply, a1, b);
            let q = g.binary(BinaryOp::AndMultiply, a2, b); // duplicate of p
            g.sink_value("p", p);
            g.sink_value("q", q);
            g
        };
        let cse_only = PassSet {
            cse: true,
            ..PassSet::none()
        };
        let optimized = build()
            .compile(&PlannerOptions::with_passes(cse_only))
            .unwrap();
        let baseline = build()
            .compile(&PlannerOptions::with_passes(PassSet::none()))
            .unwrap();
        assert_eq!(optimized.report().shared_subgraphs, 2);
        assert_eq!(baseline.report().shared_subgraphs, 0);
        // 3 generates + 2 multiplies + 2 sinks, minus the two merged nodes.
        assert_eq!(baseline.step_count(), 7);
        assert_eq!(optimized.step_count(), 5);
        // Bit-identity: the merged plan computes the same outputs.
        let input = BatchInput::with_values(vec![0.7, 0.4]);
        let exec = Executor::new(1000);
        assert_eq!(
            exec.run(&optimized, &input).unwrap(),
            exec.run(&baseline, &input).unwrap()
        );
    }

    #[test]
    fn cost_driven_placement_reuses_identical_repairs() {
        use crate::exec::{BatchInput, Executor};
        // Two operators that both require Positive inputs over the same
        // uncorrelated pair: cost-driven placement inserts one synchronizer
        // and reuses it for the second operator (reuse is free).
        let build = || {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let d = g.binary(BinaryOp::XorSubtract, x, y);
            let m = g.binary(BinaryOp::OrMax, x, y);
            g.sink_value("diff", d);
            g.sink_value("max", m);
            g
        };
        let repair_only = PassSet {
            cost_repair: true,
            ..PassSet::none()
        };
        let optimized = build()
            .compile(&PlannerOptions::with_passes(repair_only))
            .unwrap();
        let baseline = build()
            .compile(&PlannerOptions::with_passes(PassSet::none()))
            .unwrap();
        assert_eq!(baseline.report().inserted.len(), 2);
        assert_eq!(baseline.report().shared_repairs, 0);
        assert_eq!(optimized.report().inserted.len(), 1);
        assert_eq!(optimized.report().shared_repairs, 1);
        // One fewer manipulator executes and is costed.
        assert_eq!(optimized.step_count() + 1, baseline.step_count());
        // A second synchronizer over identical inputs computes identical
        // streams, so sharing one is bit-identical.
        let input = BatchInput::with_values(vec![0.3, 0.8]);
        let exec = Executor::new(1000);
        assert_eq!(
            exec.run(&optimized, &input).unwrap(),
            exec.run(&baseline, &input).unwrap()
        );
    }

    #[test]
    fn span_fusion_collapses_linear_spans() {
        use crate::exec::{BatchInput, Executor};
        // gen → not → sink is one maximal linear span: three scheduled
        // steps collapse into a single Fused step.
        let build = || {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let n = g.not(x);
            g.sink_value("inv", n);
            g
        };
        let fuse_only = PassSet {
            fusion: true,
            ..PassSet::none()
        };
        let optimized = build()
            .compile(&PlannerOptions::with_passes(fuse_only))
            .unwrap();
        let baseline = build()
            .compile(&PlannerOptions::with_passes(PassSet::none()))
            .unwrap();
        assert_eq!(baseline.step_count(), 3);
        assert_eq!(optimized.step_count(), 1);
        assert_eq!(optimized.report().fused_spans, 1);
        assert_eq!(optimized.report().steps_eliminated, 2);
        let Step::Fused { steps } = &optimized.steps()[0] else {
            panic!("expected a fused span, got {:?}", optimized.steps());
        };
        assert_eq!(steps.len(), 3);
        let input = BatchInput::with_values(vec![0.25]);
        let exec = Executor::new(1000);
        assert_eq!(
            exec.run(&optimized, &input).unwrap(),
            exec.run(&baseline, &input).unwrap()
        );
    }

    #[test]
    fn span_fusion_keeps_lane_batchable_steps_solo() {
        // An FSM activation chain must not be captured by span fusion, or
        // the executor's lane transposition would lose its targets.
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let t = g.stanh(3, x);
        g.sink_value("t", t);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        assert!(plan.lane_batchable());
        assert!(plan
            .steps()
            .iter()
            .any(|s| matches!(s, Step::UnaryFsm { .. })));
    }

    #[test]
    fn pass_deltas_record_the_executed_pipeline() {
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::XorSubtract, x, y);
        g.sink_value("z", z);
        let plan = g.compile(&PlannerOptions::default()).unwrap();
        let passes: Vec<&str> = plan.report().pass_deltas.iter().map(|d| d.pass).collect();
        assert_eq!(
            passes,
            vec![
                "validate",
                "scc-infer",
                "subgraph-cse",
                "dead-node-elim",
                "repair-placement",
                "span-fusion",
                "emit"
            ]
        );
        let repair = plan
            .report()
            .pass_deltas
            .iter()
            .find(|d| d.pass == "repair-placement")
            .unwrap();
        assert_eq!(repair.nodes_added, 1);
        // Disabled passes leave no delta.
        let baseline = g
            .compile(&PlannerOptions::with_passes(PassSet::none()))
            .unwrap();
        let baseline_passes: Vec<&str> = baseline
            .report()
            .pass_deltas
            .iter()
            .map(|d| d.pass)
            .collect();
        assert_eq!(
            baseline_passes,
            vec!["validate", "scc-infer", "repair-placement", "emit"]
        );
    }

    #[test]
    fn dead_node_elim_drops_orphans_without_changing_output() {
        // An orphaned multiply chain never reaches the sink: DCE drops it
        // from scheduling, and the sink value is bit-identical either way.
        let build = || {
            let mut g = Graph::new();
            let x = g.generate(0, sobol(1));
            let y = g.generate(1, sobol(2));
            let z = g.binary(BinaryOp::XorSubtract, x, y);
            g.sink_value("z", z);
            let a = g.generate(2, sobol(3));
            let b = g.generate(3, sobol(4));
            g.binary(BinaryOp::AndMultiply, a, b); // orphan: no sink
            g
        };
        let g = build();
        let dce = g.compile(&PlannerOptions::default()).unwrap();
        assert_eq!(dce.report().dead_nodes, 3, "orphan chain (2 gens + AND)");
        let delta = dce
            .report()
            .pass_deltas
            .iter()
            .find(|d| d.pass == "dead-node-elim")
            .unwrap();
        assert_eq!(delta.nodes_removed, 3);
        let kept = g
            .compile(&PlannerOptions::with_passes(PassSet {
                dce: false,
                ..PassSet::all()
            }))
            .unwrap();
        assert_eq!(kept.report().dead_nodes, 0);
        assert!(
            dce.steps().len() < kept.steps().len(),
            "DCE should schedule fewer steps"
        );
        let exec = crate::Executor::new(256);
        let input = crate::exec::BatchInput::with_values(vec![0.8, 0.3, 0.5, 0.5]);
        let a = exec.run_batch(&dce, std::slice::from_ref(&input)).unwrap();
        let b = exec.run_batch(&kept, std::slice::from_ref(&input)).unwrap();
        assert_eq!(a[0].value("z"), b[0].value("z"));
    }

    #[test]
    fn dump_ir_hook_sees_every_executed_pass() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DUMPS: AtomicUsize = AtomicUsize::new(0);
        fn record(pass: &str, ir: &str) {
            assert!(!pass.is_empty());
            assert!(ir.contains("n0:"), "IR dump should list nodes: {ir:?}");
            DUMPS.fetch_add(1, Ordering::SeqCst);
        }
        let mut g = Graph::new();
        let x = g.generate(0, sobol(1));
        let y = g.generate(1, sobol(2));
        let z = g.binary(BinaryOp::XorSubtract, x, y);
        g.sink_value("z", z);
        let options = PlannerOptions {
            dump_ir: Some(record),
            ..PlannerOptions::default()
        };
        g.compile(&options).unwrap();
        // validate, scc-infer, subgraph-cse, dead-node-elim,
        // repair-placement, span-fusion.
        assert_eq!(DUMPS.load(Ordering::SeqCst), 6);
    }
}
