//! The serving tier: one warm executor shared by many concurrent request
//! streams.
//!
//! `run_stream` is a *call*: it owns the dispatch loop until its job
//! iterator drains, so two concurrent images either serialise behind one
//! call or split across two executors (and two worker pools, and two
//! windows that can never coalesce). [`Service`] inverts that shape into a
//! long-lived tier:
//!
//! * **One warm pool.** A dedicated dispatcher thread owns a persistent
//!   [`WorkerPool`] and the per-class coalescing
//!   buckets; every request multiplexes over the same threads, so
//!   back-to-back images reuse warm workers instead of respawning them.
//! * **Bounded intake with backpressure.** [`Service::submit`] blocks until
//!   the intake queue has room; [`Service::try_submit`] fails fast and
//!   returns the request, so open-loop producers slow down instead of
//!   buffering unboundedly ahead of the dispatch window. Intake depth is
//!   exported through [`Gauge::IntakeDepth`] for `watch`-driven shedding.
//! * **Cross-request tile coalescing.** The dispatcher drains admitted jobs
//!   round-robin across requests into the same heterogeneous dispatch
//!   window, so same-[`plan_class`](crate::CompiledGraph::plan_class) tiles
//!   from *different* requests fill one lane group and execute in lockstep
//!   — under concurrent traffic, per-image parallelism becomes sustained
//!   multi-user throughput. [`Counter::CrossRequestLaneJobs`] counts the
//!   lane-batched jobs whose group mixed two or more requests.
//! * **Deadlines and cancellation.** A [`Request`] may carry an absolute
//!   deadline: expired-at-submit requests are rejected without queueing,
//!   and in-flight expiry purges the request's remaining jobs.
//!   [`RequestHandle::cancel`] does the same on demand; results of
//!   already-executed tiles are discarded cleanly.
//! * **Attribution.** Every request's life is cut into consecutive
//!   segments — submit, queue-wait, execute, assemble — whose sum is the
//!   request's wall clock *by construction* ([`RequestAttribution`]), with
//!   matching [`Stage::ServeSubmit`] / [`Stage::ServeQueueWait`] /
//!   [`Stage::ServeCoalesce`] / [`Stage::ServeAssemble`] spans and a
//!   [`Hist::RequestLatencyNs`] histogram in the shared
//!   [`TelemetrySink`].
//!
//! Results are bit-identical to solo execution: the dispatcher reuses the
//! executor's own lane-group and scalar engines, and grouping never changes
//! a job's output, only its schedule.

use crate::exec::{execute_job_scalar, execute_plan_group, StreamJob, WorkerPool};
use crate::graph::GraphError;
use crate::ExecOutput;
use sc_core::LANES;
use sc_telemetry::{Counter, Gauge, Hist, Stage, TelemetrySink};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default intake capacity multiplier: the intake queue admits
/// `window × DEFAULT_INTAKE_FACTOR` jobs ahead of the dispatch window,
/// enough to keep the dispatcher fed across request-size jitter while
/// keeping producer memory bounded.
pub const DEFAULT_INTAKE_FACTOR: usize = 4;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Stream length `N` every job executes at.
    pub stream_length: usize,
    /// Worker threads in the shared pool (clamped to ≥ 1; the dispatcher
    /// thread is extra).
    pub threads: usize,
    /// Dispatch-window size: the maximum number of admitted-but-unfinished
    /// jobs (pool-submitted plus coalescing-buffered). `None` uses
    /// `threads ×`[`DEFAULT_WINDOW_FACTOR`](crate::exec::DEFAULT_WINDOW_FACTOR).
    pub window: Option<usize>,
    /// Intake capacity: the maximum number of admitted-but-undispatched
    /// jobs across all queued requests. `None` uses
    /// `window ×`[`DEFAULT_INTAKE_FACTOR`].
    pub intake_capacity: Option<usize>,
    /// The sink every serving stage, counter, and histogram records into
    /// (workers and compile calls included when callers share it).
    pub telemetry: TelemetrySink,
}

impl ServiceConfig {
    /// A single-threaded service at stream length `n` with default window
    /// and intake bounds and no telemetry.
    #[must_use]
    pub fn new(stream_length: usize) -> Self {
        ServiceConfig {
            stream_length,
            threads: 1,
            window: None,
            intake_capacity: None,
            telemetry: TelemetrySink::default(),
        }
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the dispatch-window size.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = Some(window.max(1));
        self
    }

    /// Sets the intake capacity.
    #[must_use]
    pub fn with_intake_capacity(mut self, capacity: usize) -> Self {
        self.intake_capacity = Some(capacity.max(1));
        self
    }

    /// Attaches a telemetry sink.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetrySink) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// One whole-request submission: an ordered list of jobs (an image's tiles,
/// say) plus an optional absolute deadline.
#[derive(Debug)]
pub struct Request {
    /// The jobs, in result order.
    pub jobs: Vec<StreamJob>,
    /// Absolute deadline: expired-at-submit requests are rejected without
    /// queueing, in-flight expiry drops the request's remaining jobs.
    pub deadline: Option<Instant>,
}

impl Request {
    /// A request with no deadline.
    #[must_use]
    pub fn new(jobs: Vec<StreamJob>) -> Self {
        Request {
            jobs,
            deadline: None,
        }
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let deadline = Instant::now() + timeout;
        self.with_deadline(deadline)
    }
}

/// Why a submission did not enter the intake queue. Every variant returns
/// the request so the producer can retry, shed, or re-deadline it.
#[derive(Debug)]
pub enum SubmitError {
    /// Non-blocking submit on a full intake queue.
    Rejected(Request),
    /// The request's deadline had already expired at submit time.
    Expired(Request),
    /// The service is shutting down.
    ShutDown(Request),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected(_) => write!(f, "intake queue full"),
            SubmitError::Expired(_) => write!(f, "deadline expired at submit"),
            SubmitError::ShutDown(_) => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a request produced no outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// A job failed; deterministically the error of the *smallest* failing
    /// job index — every job of the request still executes, so the report
    /// does not depend on scheduling.
    Job(GraphError),
    /// The request was cancelled via [`RequestHandle::cancel`].
    Cancelled,
    /// The request's deadline expired while it was queued or in flight.
    DeadlineExceeded,
    /// The service shut down before the request completed.
    ShutDown,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Job(e) => write!(f, "job failed: {e}"),
            RequestError::Cancelled => write!(f, "request cancelled"),
            RequestError::DeadlineExceeded => write!(f, "deadline exceeded"),
            RequestError::ShutDown => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Consecutive wall-clock segments of one request's life. The segments
/// partition `[submit start, response assembled]` exactly:
/// `submit_ns + queue_wait_ns + execute_ns + assemble_ns == wall_ns`
/// by construction (each is the difference of consecutive timestamps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestAttribution {
    /// Submit-call entry → admission into the intake queue (includes any
    /// time the producer spent blocked on backpressure).
    pub submit_ns: u64,
    /// Admission → the dispatcher moving the request's first job into the
    /// dispatch window.
    pub queue_wait_ns: u64,
    /// First job dispatched → last job's result received.
    pub execute_ns: u64,
    /// Last result → response assembled by [`RequestHandle::wait`].
    pub assemble_ns: u64,
    /// Submit-call entry → response assembled.
    pub wall_ns: u64,
}

/// A completed request's outputs plus its serving-tier accounting.
#[derive(Debug, Clone)]
pub struct RequestReport {
    /// Per-job outputs, in submission order.
    pub outputs: Vec<ExecOutput>,
    /// Wall-clock attribution across the serving stages.
    pub attribution: RequestAttribution,
    /// Jobs of this request executed through the lane-batched path.
    pub lane_batched_jobs: usize,
    /// Jobs of this request executed through the scalar path.
    pub scalar_jobs: usize,
    /// Lane-batched jobs of this request whose group mixed jobs from two or
    /// more requests — the cross-request coalescing the tier exists for.
    pub cross_request_lane_jobs: usize,
}

/// How a request ended (dispatcher-side verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Completed,
    Cancelled,
    Expired,
    ShutDown,
}

/// Per-request state shared by the submitting thread, the handle, and the
/// dispatcher.
struct RequestState {
    id: u64,
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    done: Mutex<Completion>,
    finished_cv: Condvar,
}

/// The dispatcher-written half of a request's state.
struct Completion {
    /// One slot per job, filled as results arrive.
    results: Vec<Option<Result<ExecOutput, GraphError>>>,
    /// Results still outstanding (never reaches zero on purged requests).
    remaining: usize,
    verdict: Option<Verdict>,
    /// A worker panic payload, resumed on the waiter's thread.
    panic: Option<Box<dyn std::any::Any + Send>>,
    t_start: Instant,
    t_admitted: Instant,
    t_first_dispatch: Option<Instant>,
    t_last_done: Option<Instant>,
    lane_batched: usize,
    scalar: usize,
    cross_request: usize,
}

impl RequestState {
    fn finished(&self) -> bool {
        self.done
            .lock()
            .expect("request completion lock is never poisoned")
            .verdict
            .is_some()
    }
}

/// A handle to one submitted request: wait for the response, or cancel it.
pub struct RequestHandle {
    state: Arc<RequestState>,
    telemetry: TelemetrySink,
}

impl std::fmt::Debug for RequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("id", &self.state.id)
            .field("finished", &self.state.finished())
            .finish_non_exhaustive()
    }
}

impl RequestHandle {
    /// Process-unique request id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// Whether the request has finished (completed, failed, cancelled, or
    /// expired).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.state.finished()
    }

    /// Requests cancellation: the dispatcher drops the request's remaining
    /// jobs on its next pass, and results of already-executed jobs are
    /// discarded. A no-op once the request has finished.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Release);
        let mut done = self
            .state
            .done
            .lock()
            .expect("request completion lock is never poisoned");
        if done.verdict.is_none() {
            done.verdict = Some(Verdict::Cancelled);
            self.telemetry.add(Counter::RequestsCancelled, 1);
            self.state.finished_cv.notify_all();
        }
    }

    /// Blocks until the request finishes and assembles the response,
    /// recording a [`Stage::ServeAssemble`] span.
    ///
    /// # Errors
    ///
    /// [`RequestError::Job`] with the smallest failing job index's error,
    /// [`RequestError::Cancelled`], [`RequestError::DeadlineExceeded`], or
    /// [`RequestError::ShutDown`].
    ///
    /// # Panics
    ///
    /// If a job of this request panicked on a worker thread, the original
    /// payload is resumed here.
    pub fn wait(self) -> Result<RequestReport, RequestError> {
        let mut done = self
            .state
            .done
            .lock()
            .expect("request completion lock is never poisoned");
        while done.verdict.is_none() {
            done = self
                .state
                .finished_cv
                .wait(done)
                .expect("request completion lock is never poisoned");
        }
        if let Some(payload) = done.panic.take() {
            drop(done);
            resume_unwind(payload);
        }
        let verdict = done.verdict.expect("loop exits only with a verdict");
        match verdict {
            Verdict::Cancelled => return Err(RequestError::Cancelled),
            Verdict::Expired => return Err(RequestError::DeadlineExceeded),
            Verdict::ShutDown => return Err(RequestError::ShutDown),
            Verdict::Completed => {}
        }
        let assemble = self.telemetry.span(Stage::ServeAssemble);
        // First-error ordering: every job of the request executed, so the
        // smallest failing index is deterministic at any thread count.
        let mut outputs = Vec::with_capacity(done.results.len());
        let mut first_error = None;
        for slot in done.results.drain(..) {
            match slot.expect("a completed request filled every slot") {
                Ok(output) => outputs.push(output),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        drop(assemble);
        let t_done = Instant::now();
        if let Some(e) = first_error {
            return Err(RequestError::Job(e));
        }
        let t_first = done.t_first_dispatch.unwrap_or(done.t_admitted);
        let t_last = done.t_last_done.unwrap_or(t_first);
        let attribution = RequestAttribution {
            submit_ns: ns_between(done.t_start, done.t_admitted),
            queue_wait_ns: ns_between(done.t_admitted, t_first),
            execute_ns: ns_between(t_first, t_last),
            assemble_ns: ns_between(t_last, t_done),
            wall_ns: ns_between(done.t_start, t_done),
        };
        Ok(RequestReport {
            outputs,
            attribution,
            lane_batched_jobs: done.lane_batched,
            scalar_jobs: done.scalar,
            cross_request_lane_jobs: done.cross_request,
        })
    }
}

/// Saturating nanoseconds from `a` to `b`.
fn ns_between(a: Instant, b: Instant) -> u64 {
    b.saturating_duration_since(a).as_nanos() as u64
}

/// One queued request inside the intake: its shared state plus the jobs not
/// yet moved into the dispatch window.
struct PendingRequest {
    state: Arc<RequestState>,
    jobs: VecDeque<(usize, StreamJob)>,
}

/// The intake queue the submitters and dispatcher share.
struct Intake {
    queue: VecDeque<PendingRequest>,
    /// Admitted-but-undispatched jobs across all queued requests.
    pending_jobs: usize,
    shutdown: bool,
}

/// Everything the submitters and the dispatcher share.
struct Shared {
    intake: Mutex<Intake>,
    /// Signalled when intake room frees up (blocking submit waits here).
    room: Condvar,
    capacity: usize,
    telemetry: TelemetrySink,
}

/// A message to the dispatcher thread.
enum Msg {
    /// One job's outcome: `(request id, job index, worker outcome)`.
    Done(
        u64,
        usize,
        std::thread::Result<Result<ExecOutput, GraphError>>,
    ),
    /// Intake changed (new request, cancellation, shutdown): re-scan.
    Wake,
}

/// The long-lived serving tier: a dispatcher thread multiplexing many
/// concurrent requests over one warm [`WorkerPool`], with bounded intake
/// and cross-request lane coalescing. See the [module docs](self).
pub struct Service {
    shared: Arc<Shared>,
    tx: mpsc::Sender<Msg>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Starts the serving tier: spawns the worker pool (lazily warm from
    /// the first dispatch on) and the dispatcher thread.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        let threads = config.threads.max(1);
        let window = config
            .window
            .unwrap_or(threads * crate::exec::DEFAULT_WINDOW_FACTOR)
            .max(1);
        let capacity = config
            .intake_capacity
            .unwrap_or(window * DEFAULT_INTAKE_FACTOR)
            .max(1);
        let shared = Arc::new(Shared {
            intake: Mutex::new(Intake {
                queue: VecDeque::new(),
                pending_jobs: 0,
                shutdown: false,
            }),
            room: Condvar::new(),
            capacity,
            telemetry: config.telemetry.clone(),
        });
        let (tx, rx) = mpsc::channel::<Msg>();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            let n = config.stream_length;
            std::thread::Builder::new()
                .name("sc-serve-dispatch".to_string())
                .spawn(move || dispatcher_loop(&shared, &tx, &rx, n, threads, window))
                .expect("dispatcher thread spawns")
        };
        Service {
            shared,
            tx,
            dispatcher: Some(dispatcher),
            next_id: AtomicU64::new(1),
        }
    }

    /// The sink the service records into.
    #[must_use]
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.shared.telemetry
    }

    /// Blocking submit: waits until the intake queue has room for all of
    /// the request's jobs, then admits it. A request larger than the whole
    /// intake capacity is admitted once the queue is empty (temporarily
    /// exceeding the bound) so it cannot deadlock.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Expired`] if the deadline has already passed,
    /// [`SubmitError::ShutDown`] if the service is stopping. Both return
    /// the request.
    pub fn submit(&self, request: Request) -> Result<RequestHandle, SubmitError> {
        self.admit(request, true)
    }

    /// Non-blocking submit: fails fast with [`SubmitError::Rejected`] when
    /// the intake queue cannot take all of the request's jobs right now, so
    /// open-loop producers shed instead of stalling.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] on a full intake queue,
    /// [`SubmitError::Expired`] / [`SubmitError::ShutDown`] as for
    /// [`Service::submit`]. All return the request.
    pub fn try_submit(&self, request: Request) -> Result<RequestHandle, SubmitError> {
        self.admit(request, false)
    }

    fn admit(&self, request: Request, block: bool) -> Result<RequestHandle, SubmitError> {
        let telemetry = &self.shared.telemetry;
        let t_start = Instant::now();
        if request.deadline.is_some_and(|d| d <= t_start) {
            telemetry.add(Counter::RequestsExpired, 1);
            return Err(SubmitError::Expired(request));
        }
        let span = telemetry.span(Stage::ServeSubmit);
        let mut intake = self
            .shared
            .intake
            .lock()
            .expect("intake lock is never poisoned");
        loop {
            if intake.shutdown {
                drop(span);
                return Err(SubmitError::ShutDown(request));
            }
            let fits = intake.pending_jobs + request.jobs.len() <= self.shared.capacity
                || intake.pending_jobs == 0;
            if fits {
                break;
            }
            if !block {
                drop(span);
                telemetry.add(Counter::RequestsRejected, 1);
                return Err(SubmitError::Rejected(request));
            }
            intake = self
                .shared
                .room
                .wait(intake)
                .expect("intake lock is never poisoned");
            // Re-check the deadline after a blocked wait: backpressure can
            // outlast the request's budget.
            if request.deadline.is_some_and(|d| d <= Instant::now()) {
                drop(span);
                telemetry.add(Counter::RequestsExpired, 1);
                return Err(SubmitError::Expired(request));
            }
        }
        let t_admitted = Instant::now();
        let jobs = request.jobs.len();
        let state = Arc::new(RequestState {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            deadline: request.deadline,
            cancelled: AtomicBool::new(false),
            done: Mutex::new(Completion {
                results: (0..jobs).map(|_| None).collect(),
                remaining: jobs,
                verdict: (jobs == 0).then_some(Verdict::Completed),
                panic: None,
                t_start,
                t_admitted,
                t_first_dispatch: None,
                t_last_done: None,
                lane_batched: 0,
                scalar: 0,
                cross_request: 0,
            }),
            finished_cv: Condvar::new(),
        });
        if jobs > 0 {
            intake.queue.push_back(PendingRequest {
                state: Arc::clone(&state),
                jobs: request.jobs.into_iter().enumerate().collect(),
            });
            intake.pending_jobs += jobs;
            telemetry.gauge_set(Gauge::IntakeDepth, intake.pending_jobs as u64);
        }
        drop(intake);
        drop(span);
        telemetry.add(Counter::RequestsSubmitted, 1);
        if jobs > 0 {
            let _ = self.tx.send(Msg::Wake);
        }
        Ok(RequestHandle {
            state,
            telemetry: telemetry.clone(),
        })
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        {
            let mut intake = self
                .shared
                .intake
                .lock()
                .expect("intake lock is never poisoned");
            intake.shutdown = true;
        }
        self.shared.room.notify_all();
        let _ = self.tx.send(Msg::Wake);
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// One live request's dispatcher-side bookkeeping.
struct LiveRequest {
    state: Arc<RequestState>,
    /// Jobs moved into the window (buffered or pool-side) but not yet
    /// completed or purged.
    outstanding: usize,
}

/// The dispatcher: drains the intake round-robin into per-class coalescing
/// buckets bounded by `window`, submits lane groups (and scalar singles) to
/// the pool, routes results back into each request's state, and enforces
/// deadlines and cancellation. Single-threaded by design — all scheduling
/// state is thread-local to this loop.
#[allow(clippy::too_many_lines)]
fn dispatcher_loop(
    shared: &Shared,
    tx: &mpsc::Sender<Msg>,
    rx: &mpsc::Receiver<Msg>,
    n: usize,
    threads: usize,
    window: usize,
) {
    let telemetry = &shared.telemetry;
    let pool = WorkerPool::with_telemetry(threads, telemetry.clone());
    // Per-class coalescing buckets: entries are (request id, job index, job).
    let mut buckets: HashMap<u64, Vec<(u64, usize, StreamJob)>> = HashMap::new();
    let mut live: HashMap<u64, LiveRequest> = HashMap::new();
    // Jobs moved out of intake (buffered or pool-side) minus completions.
    let mut in_window = 0usize;
    // Jobs handed to the pool minus completions (excludes buffered jobs).
    let mut on_pool = 0usize;
    loop {
        // Phase 1: enforce cancellation and deadlines — queued and
        // in-window requests alike. Purged requests lose their queued and
        // buffered jobs immediately; jobs already on the pool finish and
        // their results are discarded on arrival.
        let now = Instant::now();
        let mut purged: Vec<u64> = Vec::new();
        {
            let mut intake = shared.intake.lock().expect("intake lock is never poisoned");
            let mut kept = VecDeque::with_capacity(intake.queue.len());
            while let Some(pending) = intake.queue.pop_front() {
                let cancelled = pending.state.cancelled.load(Ordering::Acquire);
                let expired = pending.state.deadline.is_some_and(|d| d <= now);
                if cancelled || expired {
                    intake.pending_jobs -= pending.jobs.len();
                    let verdict = if cancelled {
                        Verdict::Cancelled
                    } else {
                        Verdict::Expired
                    };
                    finish(&pending.state, verdict, telemetry);
                    purged.push(pending.state.id);
                } else {
                    kept.push_back(pending);
                }
            }
            intake.queue = kept;
            telemetry.gauge_set(Gauge::IntakeDepth, intake.pending_jobs as u64);
        }
        for (&id, req) in &live {
            let cancelled = req.state.cancelled.load(Ordering::Acquire);
            let expired = req.state.deadline.is_some_and(|d| d <= now);
            if cancelled || expired {
                let verdict = if cancelled {
                    Verdict::Cancelled
                } else {
                    Verdict::Expired
                };
                finish(&req.state, verdict, telemetry);
                if !purged.contains(&id) {
                    purged.push(id);
                }
            }
        }
        if !purged.is_empty() {
            shared.room.notify_all();
            for id in &purged {
                for bucket in buckets.values_mut() {
                    let before = bucket.len();
                    bucket.retain(|(req, _, _)| req != id);
                    let dropped = before - bucket.len();
                    in_window -= dropped;
                    if dropped > 0 {
                        if let Some(req) = live.get_mut(id) {
                            req.outstanding -= dropped;
                        }
                    }
                }
            }
            buckets.retain(|_, bucket| !bucket.is_empty());
            live.retain(|_, req| req.outstanding > 0 || !req.state.finished());
        }

        // Phase 2: the coalesce pass — move intake jobs into the window,
        // round-robin across requests so concurrent same-class requests
        // interleave into the same lane buckets.
        let mut ready: Vec<Vec<(u64, usize, StreamJob)>> = Vec::new();
        let shutdown;
        {
            let mut span = telemetry.span_with(Stage::ServeCoalesce, 0);
            let mut intake = shared.intake.lock().expect("intake lock is never poisoned");
            shutdown = intake.shutdown;
            let mut moved = 0u64;
            let t_dispatch = Instant::now();
            while in_window < window {
                let Some(mut pending) = intake.queue.pop_front() else {
                    break;
                };
                let Some((index, job)) = pending.jobs.pop_front() else {
                    continue; // drained request: drop it from the rotation
                };
                intake.pending_jobs -= 1;
                moved += 1;
                in_window += 1;
                let id = pending.state.id;
                let entry = live.entry(id).or_insert_with(|| LiveRequest {
                    state: Arc::clone(&pending.state),
                    outstanding: 0,
                });
                entry.outstanding += 1;
                {
                    let mut done = pending
                        .state
                        .done
                        .lock()
                        .expect("request completion lock is never poisoned");
                    if done.t_first_dispatch.is_none() {
                        done.t_first_dispatch = Some(t_dispatch);
                        telemetry.record_span_ns(
                            Stage::ServeQueueWait,
                            ns_between(done.t_admitted, t_dispatch),
                            id,
                        );
                    }
                }
                if !pending.jobs.is_empty() {
                    intake.queue.push_back(pending);
                }
                telemetry.add(Counter::JobsPulled, 1);
                if window >= 2 && job.plan.lane_batchable() {
                    let class = job.plan.plan_class();
                    let bucket = buckets.entry(class).or_default();
                    bucket.push((id, index, job));
                    if bucket.len() == LANES {
                        ready.push(buckets.remove(&class).expect("bucket just filled"));
                    }
                } else {
                    ready.push(vec![(id, index, job)]);
                }
            }
            telemetry.gauge_set(Gauge::IntakeDepth, intake.pending_jobs as u64);
            drop(intake);
            shared.room.notify_all();
            span.set_arg(moved);
        }
        let moved_any = !ready.is_empty();
        for group in ready {
            on_pool += group.len();
            tally_group(&group, &live, telemetry, group.len() >= 2);
            submit_group(&pool, tx, n, group, telemetry);
        }
        // Progress guarantee (mirrors `run_stream`): when nothing could be
        // moved and no pool-side results are coming, flush the bucket
        // holding the oldest request's job so partially-filled groups still
        // execute instead of waiting for traffic that may never arrive.
        if !moved_any && on_pool == 0 {
            let oldest = buckets
                .iter()
                .min_by_key(|(_, bucket)| {
                    bucket
                        .iter()
                        .map(|(id, _, _)| *id)
                        .min()
                        .unwrap_or(u64::MAX)
                })
                .map(|(&class, _)| class);
            if let Some(class) = oldest {
                let group = buckets.remove(&class).expect("oldest bucket exists");
                on_pool += group.len();
                tally_group(&group, &live, telemetry, true);
                submit_group(&pool, tx, n, group, telemetry);
            }
        }

        // Phase 3: shutdown — stop admitting, fail every still-queued
        // request so its waiter unblocks, keep draining in-window jobs.
        if shutdown {
            let mut intake = shared.intake.lock().expect("intake lock is never poisoned");
            while let Some(pending) = intake.queue.pop_front() {
                intake.pending_jobs -= pending.jobs.len();
                finish(&pending.state, Verdict::ShutDown, telemetry);
            }
            drop(intake);
            shared.room.notify_all();
            if in_window == 0 {
                for req in live.values() {
                    finish(&req.state, Verdict::ShutDown, telemetry);
                }
                break;
            }
        }

        // Phase 4: wait for the next event — a result, a submission, a
        // cancellation. The bounded timeout keeps deadline enforcement live
        // even when no messages arrive.
        let msg = rx.recv_timeout(Duration::from_millis(50)).ok();
        let mut handle_msg = |msg: Msg| {
            let Msg::Done(id, index, outcome) = msg else {
                return;
            };
            on_pool -= 1;
            in_window -= 1;
            let Some(req) = live.get_mut(&id) else {
                return;
            };
            req.outstanding -= 1;
            let mut done = req
                .state
                .done
                .lock()
                .expect("request completion lock is never poisoned");
            match outcome {
                Ok(result) => {
                    if result.is_err() {
                        telemetry.add(Counter::JobsFailed, 1);
                    }
                    done.results[index] = Some(result);
                    done.remaining -= 1;
                    done.t_last_done = Some(Instant::now());
                    if done.remaining == 0 && done.verdict.is_none() {
                        done.verdict = Some(Verdict::Completed);
                        telemetry.add(Counter::RequestsCompleted, 1);
                        telemetry.observe(
                            Hist::RequestLatencyNs,
                            ns_between(done.t_start, Instant::now()),
                        );
                        req.state.finished_cv.notify_all();
                    }
                }
                Err(payload) => {
                    // A worker panic: surface the payload to the waiter.
                    if done.verdict.is_none() {
                        done.verdict = Some(Verdict::Completed);
                    }
                    done.panic = Some(payload);
                    req.state.finished_cv.notify_all();
                }
            }
        };
        if let Some(msg) = msg {
            handle_msg(msg);
            // Drain whatever else is already queued before re-coalescing.
            while let Ok(msg) = rx.try_recv() {
                handle_msg(msg);
            }
        }
        live.retain(|_, req| req.outstanding > 0 || !req.state.finished());
    }
}

/// Marks a request finished with the given verdict (if still unfinished),
/// waking its waiter and counting the outcome.
fn finish(state: &Arc<RequestState>, verdict: Verdict, telemetry: &TelemetrySink) {
    let mut done = state
        .done
        .lock()
        .expect("request completion lock is never poisoned");
    if done.verdict.is_none() {
        done.verdict = Some(verdict);
        match verdict {
            Verdict::Cancelled => telemetry.add(Counter::RequestsCancelled, 1),
            Verdict::Expired => telemetry.add(Counter::RequestsExpired, 1),
            Verdict::Completed | Verdict::ShutDown => {}
        }
        state.finished_cv.notify_all();
    }
}

/// Tallies one dispatch group's path split into the sink and into each
/// member request's accounting: lane-batched vs scalar, the lane-fill
/// distribution, per-class attribution, and — when the group mixes two or
/// more requests — the cross-request counter.
fn tally_group(
    group: &[(u64, usize, StreamJob)],
    live: &HashMap<u64, LiveRequest>,
    telemetry: &TelemetrySink,
    grouped: bool,
) {
    let lane = group.len() >= 2;
    let class = group[0].2.plan.plan_class();
    if grouped {
        telemetry.lane_fill_n(group.len(), 1);
        telemetry.class_fill_n(class, group.len(), 1);
    }
    if lane {
        telemetry.add(Counter::LaneBatchedJobs, group.len() as u64);
        telemetry.class_add_jobs(class, group.len() as u64, 0);
    } else {
        telemetry.add(Counter::ScalarJobs, group.len() as u64);
        telemetry.class_add_jobs(class, 0, group.len() as u64);
    }
    let first_id = group[0].0;
    let cross = lane && group.iter().any(|(id, _, _)| *id != first_id);
    if cross {
        telemetry.add(Counter::CrossRequestLaneJobs, group.len() as u64);
    }
    for (id, _, _) in group {
        if let Some(req) = live.get(id) {
            let mut done = req
                .state
                .done
                .lock()
                .expect("request completion lock is never poisoned");
            if lane {
                done.lane_batched += 1;
            } else {
                done.scalar += 1;
            }
            if cross {
                done.cross_request += 1;
            }
        }
    }
}

/// Submits one coalesced group to the pool as a single task: lane-batched
/// lockstep when it holds ≥ 2 jobs, scalar otherwise. Each job's outcome is
/// reported individually; a panic carries its payload on the group's first
/// job.
fn submit_group(
    pool: &WorkerPool,
    tx: &mpsc::Sender<Msg>,
    n: usize,
    group: Vec<(u64, usize, StreamJob)>,
    telemetry: &TelemetrySink,
) {
    let tx = tx.clone();
    let telemetry = telemetry.clone();
    pool.submit(Box::new(move || {
        let mut keys = Vec::with_capacity(group.len());
        let mut jobs = Vec::with_capacity(group.len());
        for (id, index, job) in group {
            keys.push((id, index));
            jobs.push(job);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if jobs.len() >= 2 {
                execute_plan_group(n, &jobs, &telemetry)
            } else {
                jobs.iter()
                    .map(|job| execute_job_scalar(n, job, &telemetry))
                    .collect()
            }
        }));
        // Free the jobs — and their plan handles — before the results
        // become visible, so the window bounds live-plan memory.
        drop(jobs);
        match outcome {
            Ok(results) => {
                for ((id, index), result) in keys.into_iter().zip(results) {
                    let _ = tx.send(Msg::Done(id, index, Ok(result)));
                }
            }
            Err(payload) => {
                let (id, index) = keys[0];
                let _ = tx.send(Msg::Done(id, index, Err(payload)));
            }
        }
    }));
}
