//! The **subgraph-cse** pass: hash-cons of whole identical subgraphs.

use super::{topo_order, Ir, Pass};
use crate::compile::{CompileReport, PlannerOptions};
use crate::graph::GraphError;
use crate::node::Wire;
use sc_telemetry::{Stage, TelemetrySink};
use std::collections::HashMap;

/// Merges structurally identical subgraphs: walking the IR in topological
/// order, a non-sink node whose operation (full [`crate::NodeOp`] equality —
/// same kind, parameters, [`sc_rng::SourceSpec`]s, and skips) and
/// canonicalized inputs match an earlier live node is marked dead and every
/// later consumer is rewired to the representative. Because duplicate
/// subgraphs are built from the same sources at the same positions, the
/// merged stream is bit-identical to each duplicate's stream — and the
/// executor's existing per-spec source sharing means the plan also
/// physically shares one sample generator per distinct spec, which the
/// shared-cost netlist view prices.
///
/// Sinks are never merged (each names a distinct output), and SCC classes
/// are unaffected: a duplicate and its representative have identical
/// structure, so every pair class derived pre-merge still holds post-merge.
pub(crate) struct SubgraphCse;

impl Pass for SubgraphCse {
    fn name(&self) -> &'static str {
        "subgraph-cse"
    }

    fn stage(&self) -> Stage {
        Stage::CompileCse
    }

    fn enabled(&self, options: &PlannerOptions) -> bool {
        options.passes.cse
    }

    fn run(
        &self,
        ir: &mut Ir,
        _options: &PlannerOptions,
        report: &mut CompileReport,
        _telemetry: &TelemetrySink,
    ) -> Result<String, GraphError> {
        let order = topo_order(&ir.nodes)?;
        // Representative of each merged node (identity for live nodes).
        let mut repr: Vec<usize> = (0..ir.nodes.len()).collect();
        // Candidate buckets keyed by canonicalized inputs; ops are compared
        // with full PartialEq inside a bucket (NodeOp carries f64 fields, so
        // it cannot be a hash key itself). Source nodes all share the
        // empty-input bucket; everything else buckets finely.
        let mut buckets: HashMap<Vec<Wire>, Vec<usize>> = HashMap::new();
        let mut merged = 0usize;
        for &i in &order {
            // Canonicalize this node's inputs through earlier merges
            // (producers precede consumers in topological order).
            let canon: Vec<Wire> = ir.nodes[i]
                .inputs
                .iter()
                .map(|w| Wire {
                    node: crate::node::NodeId(repr[w.node().index()]),
                    port: w.port(),
                })
                .collect();
            ir.nodes[i].inputs = canon.clone();
            if ir.nodes[i].op.is_sink() {
                continue;
            }
            let bucket = buckets.entry(canon).or_default();
            if let Some(&j) = bucket
                .iter()
                .find(|&&j| ir.live[j] && ir.nodes[j].op == ir.nodes[i].op)
            {
                repr[i] = j;
                ir.live[i] = false;
                merged += 1;
            } else {
                bucket.push(i);
            }
        }
        report.shared_subgraphs = merged;
        Ok(format!("{merged} duplicate subgraph nodes merged"))
    }
}
