//! The **span-fusion** pass: groups linear source→gate→sink spans so
//! emission collapses each into a single [`crate::Step::Fused`] step.

use super::{topo_order, Ir, Pass};
use crate::compile::{CompileReport, PlannerOptions};
use crate::graph::GraphError;
use crate::node::{BinaryOp, NodeOp, Wire};
use sc_telemetry::{Stage, TelemetrySink};
use std::collections::HashMap;

/// Finds maximal linear spans — chains where each node's single output port
/// feeds exactly one live consumer — and groups them for fused emission.
/// The scheduler later builds every member's step at its normal position
/// (identical slot numbering) but stashes non-tail members, emitting one
/// [`crate::Step::Fused`] at the tail; the executor and the RTL elaborator
/// run the sub-steps back to back in the same order, so the collapse is
/// bit-identical by construction.
///
/// Lane-batched step kinds — manipulators (which have their own chain
/// fusion), saturating-counter FSMs, and counter-based max/min — stay solo
/// so [`crate::CompiledGraph::lane_batchable`] grouping keeps its targets.
pub(crate) struct SpanFusion;

impl Pass for SpanFusion {
    fn name(&self) -> &'static str {
        "span-fusion"
    }

    fn stage(&self) -> Stage {
        Stage::CompileFuse
    }

    fn enabled(&self, options: &PlannerOptions) -> bool {
        options.fusion_enabled()
    }

    fn run(
        &self,
        ir: &mut Ir,
        _options: &PlannerOptions,
        report: &mut CompileReport,
        _telemetry: &TelemetrySink,
    ) -> Result<String, GraphError> {
        let mut consumer_count: HashMap<Wire, usize> = HashMap::new();
        let mut sole_consumer: HashMap<Wire, usize> = HashMap::new();
        for (i, node) in ir.nodes.iter().enumerate() {
            if !ir.live[i] {
                continue;
            }
            for wire in &node.inputs {
                *consumer_count.entry(*wire).or_insert(0) += 1;
                sole_consumer.insert(*wire, i);
            }
        }
        let eligible = |i: usize| -> bool {
            ir.live[i]
                && !matches!(
                    ir.nodes[i].op,
                    // Manipulators fuse through their own chain mechanism;
                    // FSM and counter-based steps stay solo for lane
                    // batching.
                    NodeOp::Manipulate(_)
                        | NodeOp::UnaryFsm(_)
                        | NodeOp::Binary(BinaryOp::CaMax | BinaryOp::CaMin)
                )
        };
        // A node links forward into its consumer when its one output port
        // has exactly one live consumer and both ends are eligible.
        let link = |i: usize| -> Option<usize> {
            if !eligible(i) || ir.nodes[i].op.output_ports() != 1 {
                return None;
            }
            let out = Wire {
                node: crate::node::NodeId(i),
                port: 0,
            };
            if consumer_count.get(&out) != Some(&1) {
                return None;
            }
            let next = *sole_consumer.get(&out)?;
            eligible(next).then_some(next)
        };
        // Resolve each node's span tail in reverse topological order:
        // tail(i) = tail(link(i)), or i itself where the chain stops.
        let order = topo_order(&ir.nodes)?;
        let mut tail_of: Vec<usize> = (0..ir.nodes.len()).collect();
        for &i in order.iter().rev() {
            if let Some(next) = link(i) {
                tail_of[i] = tail_of[next];
            }
        }
        // Materialise groups (first-seen order over the topological walk).
        let mut group_id: HashMap<usize, usize> = HashMap::new();
        for &i in &order {
            let tail = tail_of[i];
            if tail == i {
                continue;
            }
            let next_id = ir.group_tail.len();
            let g = *group_id.entry(tail).or_insert_with(|| {
                ir.group_tail.push(tail);
                ir.group_of[tail] = Some(next_id);
                next_id
            });
            ir.group_of[i] = Some(g);
            report.steps_eliminated += 1;
        }
        report.fused_spans = ir.group_tail.len();
        Ok(format!(
            "{} spans fused, {} steps eliminated",
            report.fused_spans, report.steps_eliminated
        ))
    }
}
