//! The **dead-node-elim** pass: drop nodes no sink transitively consumes.

use super::{Ir, Pass};
use crate::compile::{CompileReport, PlannerOptions};
use crate::graph::GraphError;
use sc_telemetry::{Stage, TelemetrySink};

/// Removes dead interior nodes from scheduling: a reverse reachability walk
/// from the live sinks marks every node some output still depends on, and
/// everything else is taken out of the live set so emission never schedules
/// it. This catches both orphaned nodes built but never wired to a sink and
/// the inputs of CSE-merged losers — when subgraph-cse rewires a duplicate's
/// consumers to the representative, the duplicate's private upstream chain
/// loses its last consumer, and re-checking reachability here is what
/// finally drops it.
///
/// Runs after subgraph-cse (so the walk sees canonicalized inputs and newly
/// dead losers) and before repair-placement (so the planner never prices or
/// repairs an operator that will not execute). Bit-identity holds because a
/// dead node's stream is observable through no sink, and every source step's
/// sample positions are fixed by its own `(SourceSpec, skip)` — removing an
/// unrelated node cannot shift them.
///
/// Sink-free graphs are left untouched: with no roots the whole graph would
/// be "dead", and compiling a sink-free graph for its structure (e.g. cost
/// inspection) is legal today.
pub(crate) struct DeadNodeElim;

impl Pass for DeadNodeElim {
    fn name(&self) -> &'static str {
        "dead-node-elim"
    }

    fn stage(&self) -> Stage {
        Stage::CompileDce
    }

    fn enabled(&self, options: &PlannerOptions) -> bool {
        options.passes.dce
    }

    fn run(
        &self,
        ir: &mut Ir,
        _options: &PlannerOptions,
        report: &mut CompileReport,
        _telemetry: &TelemetrySink,
    ) -> Result<String, GraphError> {
        let n = ir.nodes.len();
        let mut needed = vec![false; n];
        let mut stack: Vec<usize> = (0..n)
            .filter(|&i| ir.live[i] && ir.nodes[i].op.is_sink())
            .collect();
        if stack.is_empty() {
            return Ok("no sinks; graph kept as-is".to_string());
        }
        for &root in &stack {
            needed[root] = true;
        }
        while let Some(i) = stack.pop() {
            for wire in &ir.nodes[i].inputs {
                let producer = wire.node().index();
                if !needed[producer] {
                    needed[producer] = true;
                    stack.push(producer);
                }
            }
        }
        let mut dropped = 0usize;
        for (live, keep) in ir.live.iter_mut().zip(&needed) {
            if *live && !keep {
                *live = false;
                dropped += 1;
            }
        }
        report.dead_nodes = dropped;
        Ok(format!("{dropped} dead nodes dropped"))
    }
}
