//! The **scc-infer** pass: structural SCC class derivation with optional
//! measured-probe feedback.

use super::{Ir, Pass};
use crate::compile::{CompileReport, MeasuredPair, PassSet, PlannerOptions};
use crate::graph::{Graph, GraphError};
use crate::node::{ManipulatorKind, Node, NodeOp, SccClass, Wire};
use sc_bitstream::Bitstream;
use sc_rng::SourceSpec;
use sc_telemetry::{Counter, Stage, TelemetrySink};

/// Derives every correlation-tracked operator's input-pair SCC class and
/// stores it in [`Ir::classes`] for the repair-placement pass. Runs the
/// measured-SCC probe for structurally [`SccClass::Unknown`] pairs when
/// [`PlannerOptions::measure_unknown`] is set.
///
/// Classes are derived on the pre-repair graph; repair placement later only
/// rewires the failing operator's own inputs, which cannot change any other
/// pair's structural class, so inferring everything up front matches the
/// legacy interleaved derivation exactly.
pub(crate) struct SccInfer;

impl Pass for SccInfer {
    fn name(&self) -> &'static str {
        "scc-infer"
    }

    fn stage(&self) -> Stage {
        Stage::CompilePlan
    }

    fn enabled(&self, _options: &PlannerOptions) -> bool {
        true
    }

    fn run(
        &self,
        ir: &mut Ir,
        options: &PlannerOptions,
        report: &mut CompileReport,
        telemetry: &TelemetrySink,
    ) -> Result<String, GraphError> {
        let mut probed = 0usize;
        for i in 0..ir.nodes.len() {
            let Some((label, _requirement)) = ir.nodes[i].op.correlation_requirement() else {
                continue;
            };
            let (a, b) = (ir.nodes[i].inputs[0], ir.nodes[i].inputs[1]);
            let mut class = pair_class(&ir.nodes, a, b);
            // Measured-SCC feedback: a structurally unknown pair (e.g. two
            // arithmetic-operator outputs) is probed with a short execution
            // over representative inputs, and the repair decision uses the
            // measured class — the SccTracker-in-the-loop design the ROADMAP
            // calls for.
            if class == SccClass::Unknown {
                if let Some(probe_length) = options.measure_unknown {
                    let probe_span = telemetry.span(Stage::MeasuredProbe);
                    telemetry.add(Counter::MeasuredProbes, 1);
                    let outcome =
                        measured_class(&ir.nodes, a, b, probe_length, options.probe_value);
                    drop(probe_span);
                    probed += 1;
                    if let Some((scc, measured)) = outcome {
                        report.measured.push(MeasuredPair {
                            label: label.to_string(),
                            node: i,
                            scc,
                            probe_length,
                            class: measured,
                        });
                        class = measured;
                    }
                }
            }
            ir.classes.insert(i, class);
        }
        Ok(format!(
            "{} pairs classified, {probed} probed",
            ir.classes.len()
        ))
    }
}

/// Structural SCC class of a pair of wires (see the crate docs for rules).
pub(crate) fn pair_class(nodes: &[Node], a: Wire, b: Wire) -> SccClass {
    if a == b {
        return SccClass::Positive;
    }
    let na = &nodes[a.node().index()];
    let nb = &nodes[b.node().index()];
    // Unwrap identity manipulators: they preserve their input pair's class.
    if let NodeOp::Manipulate(ManipulatorKind::Identity) = na.op {
        return pair_class(nodes, na.inputs[a.port() as usize], b);
    }
    if let NodeOp::Manipulate(ManipulatorKind::Identity) = nb.op {
        return pair_class(nodes, a, nb.inputs[b.port() as usize]);
    }
    // The two output ports of one manipulator carry the class it establishes.
    if a.node() == b.node() {
        if let NodeOp::Manipulate(kind) = &na.op {
            return kind.output_class().unwrap_or(SccClass::Unknown);
        }
        return SccClass::Unknown;
    }
    let source_of = |op: &NodeOp| -> Option<(SourceSpec, u64)> {
        match op {
            NodeOp::Generate { source, skip, .. } | NodeOp::ConstStream { source, skip, .. } => {
                Some((source.clone(), *skip))
            }
            _ => None,
        }
    };
    // Two generated streams: equal spec + position ⇒ every comparator sample
    // is shared ⇒ maximal positive correlation (§II.B); otherwise the sample
    // sequences are independent ⇒ (close to) uncorrelated.
    if let (Some(sa), Some(sb)) = (source_of(&na.op), source_of(&nb.op)) {
        return if sa == sb {
            SccClass::Positive
        } else {
            SccClass::Uncorrelated
        };
    }
    // Two regenerated streams behave like generated streams of their
    // re-encoding source.
    if let (
        NodeOp::Regenerate {
            source: sa,
            skip: ka,
        },
        NodeOp::Regenerate {
            source: sb,
            skip: kb,
        },
    ) = (&na.op, &nb.op)
    {
        return if sa == sb && ka == kb {
            SccClass::Positive
        } else {
            SccClass::Uncorrelated
        };
    }
    SccClass::Unknown
}

/// Probes the actual SCC of a wire pair by compiling the current node list
/// (auto-repair, measurement, and every optimizer pass off, so this cannot
/// recurse and the probe plan matches the legacy probe exactly) with an SCC
/// probe appended, and executing it for `probe_length` cycles over
/// representative inputs: every digital value slot is driven at the
/// configured [`PlannerOptions::probe_value`] stimulus and every ready-stream
/// slot with a phase-shifted alternating stream. Returns `None` if the probe
/// graph fails to compile or execute.
pub(crate) fn measured_class(
    nodes: &[Node],
    a: Wire,
    b: Wire,
    probe_length: usize,
    probe_value: f64,
) -> Option<(f64, SccClass)> {
    // Trim to the pair's ancestor cone: the probe executes only the logic
    // that actually feeds the two wires (and none of the graph's own sinks),
    // so each measurement costs the cone, not the whole design.
    let mut needed = vec![false; nodes.len()];
    let mut stack = vec![a.node().index(), b.node().index()];
    while let Some(i) = stack.pop() {
        if needed[i] {
            continue;
        }
        needed[i] = true;
        for wire in &nodes[i].inputs {
            stack.push(wire.node().index());
        }
    }
    // Two passes — repair nodes appended by earlier planning iterations sit
    // at high indices but are referenced by lower-indexed consumers — so
    // assign dense indices first, then clone with rewritten wires.
    let mut remap = vec![usize::MAX; nodes.len()];
    let mut count = 0usize;
    for (i, include) in needed.iter().enumerate() {
        if *include {
            remap[i] = count;
            count += 1;
        }
    }
    let probe_wire = |w: Wire| Wire {
        node: crate::node::NodeId(remap[w.node().index()]),
        port: w.port(),
    };
    let mut probe_nodes: Vec<Node> = Vec::with_capacity(count + 1);
    for (i, node) in nodes.iter().enumerate() {
        if !needed[i] {
            continue;
        }
        let mut clone = node.clone();
        for wire in &mut clone.inputs {
            *wire = probe_wire(*wire);
        }
        probe_nodes.push(clone);
    }
    // Sinks have no outputs, so the cone never contains one: the probe's
    // sink name is free by construction.
    let name = "__scc_probe".to_string();
    probe_nodes.push(Node {
        op: NodeOp::SccProbe { name: name.clone() },
        inputs: vec![probe_wire(a), probe_wire(b)],
    });
    let probe_graph = Graph { nodes: probe_nodes };
    let probe_options = PlannerOptions {
        auto_repair: false,
        measure_unknown: None,
        fuse: false,
        passes: PassSet::none(),
        ..PlannerOptions::default()
    };
    let plan = probe_graph.compile(&probe_options).ok()?;
    let input = crate::exec::BatchInput {
        values: vec![probe_value; plan.value_slots()],
        streams: (0..plan.stream_slots())
            .map(|slot| Bitstream::from_fn(probe_length, |i| (i + slot) % 2 == 0))
            .collect(),
    };
    let out = crate::exec::Executor::new(probe_length)
        .run(&plan, &input)
        .ok()?;
    let scc = out.value(&name)?;
    let class = if scc >= 0.5 {
        SccClass::Positive
    } else if scc <= -0.5 {
        SccClass::Negative
    } else {
        SccClass::Uncorrelated
    };
    Some((scc, class))
}
