//! The **emit** stage: fusion realization, dense slot assignment, and step
//! emission in topological order.

use super::Ir;
use crate::compile::{CompileReport, CompiledGraph, PassDelta, PlannerOptions, Step};
use crate::graph::GraphError;
use crate::node::{NodeOp, Wire};
use sc_rng::SourceSpec;
use std::collections::{HashMap, HashSet};

/// Walks the topological order over live nodes, collapses linear manipulator
/// runs into [`sc_core::ManipulatorChain`] steps, realizes the span-fusion
/// groups as [`Step::Fused`] steps, assigns dense slots, and emits the step
/// list. Slot numbering is independent of span grouping: every node's step
/// is built at its normal scheduling position and non-tail span members are
/// merely stashed until their group's tail emits, so a fused plan and its
/// unfused twin use identical slots and differ only in step nesting.
pub(crate) fn emit_steps(
    ir: &Ir,
    order: &[usize],
    options: &PlannerOptions,
    mut report: CompileReport,
) -> Result<CompiledGraph, GraphError> {
    let nodes = &ir.nodes;
    // Count consumers of every wire (live consumers only) to find fusible
    // manipulator runs.
    let mut consumer_count: HashMap<Wire, usize> = HashMap::new();
    let mut sole_consumer: HashMap<Wire, usize> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        if !ir.live[i] {
            continue;
        }
        for wire in &node.inputs {
            *consumer_count.entry(*wire).or_insert(0) += 1;
            sole_consumer.insert(*wire, i);
        }
    }
    let port = |i: usize, p: u8| Wire {
        node: crate::node::NodeId(i),
        port: p,
    };
    // A manipulator run `m → q` can fuse when both of m's outputs are
    // consumed exactly once, by q's inputs 0/1 in order, and q is itself a
    // manipulator.
    let fuse_next = |i: usize| -> Option<usize> {
        if !options.fusion_enabled() {
            return None;
        }
        let (p0, p1) = (port(i, 0), port(i, 1));
        if consumer_count.get(&p0) != Some(&1) || consumer_count.get(&p1) != Some(&1) {
            return None;
        }
        let q = *sole_consumer.get(&p0)?;
        if sole_consumer.get(&p1) != Some(&q) {
            return None;
        }
        let qn = &nodes[q];
        if !matches!(qn.op, NodeOp::Manipulate(_)) || qn.inputs != vec![p0, p1] {
            return None;
        }
        Some(q)
    };

    let mut slots: HashMap<Wire, usize> = HashMap::new();
    let mut slot_count = 0usize;
    let mut slot_of = |w: Wire, slots: &mut HashMap<Wire, usize>| -> usize {
        *slots.entry(w).or_insert_with(|| {
            let s = slot_count;
            slot_count += 1;
            s
        })
    };

    let mut steps = Vec::new();
    let mut ops = Vec::new();
    let mut fused: Vec<bool> = vec![false; nodes.len()];
    let mut value_slots = 0usize;
    let mut stream_slots = 0usize;
    // Deferred sub-steps of each span-fusion group, awaiting the tail.
    let mut pending: Vec<Vec<Step>> = vec![Vec::new(); ir.group_tail.len()];

    for &i in order {
        if !ir.live[i] || fused[i] {
            continue;
        }
        let node = &nodes[i];
        ops.push(node.op.clone());
        let inputs = &node.inputs;
        let step = match &node.op {
            NodeOp::InputStream { slot } => {
                stream_slots = stream_slots.max(slot + 1);
                let dst = slot_of(port(i, 0), &mut slots);
                Step::Input { slot: *slot, dst }
            }
            NodeOp::Generate { slot, source, skip } => {
                value_slots = value_slots.max(slot + 1);
                let dst = slot_of(port(i, 0), &mut slots);
                Step::Generate {
                    slot: *slot,
                    source: source.clone(),
                    skip: *skip,
                    dst,
                }
            }
            NodeOp::ConstStream {
                probability,
                source,
                skip,
            } => {
                let dst = slot_of(port(i, 0), &mut slots);
                Step::Constant {
                    probability: *probability,
                    source: source.clone(),
                    skip: *skip,
                    dst,
                }
            }
            NodeOp::Manipulate(kind) => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                let mut kinds = vec![*kind];
                let mut last = i;
                while let Some(next) = fuse_next(last) {
                    fused[next] = true;
                    let NodeOp::Manipulate(next_kind) = &nodes[next].op else {
                        unreachable!("fuse_next only follows manipulator nodes");
                    };
                    let next_kind = *next_kind;
                    ops.push(nodes[next].op.clone());
                    kinds.push(next_kind);
                    last = next;
                }
                if kinds.len() > 1 {
                    report.fused_runs += 1;
                }
                let dst_x = slot_of(port(last, 0), &mut slots);
                let dst_y = slot_of(port(last, 1), &mut slots);
                Step::Manipulate {
                    kinds,
                    x,
                    y,
                    dst_x,
                    dst_y,
                }
            }
            NodeOp::Regenerate { source, skip } => {
                let src = slot_of(inputs[0], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                Step::Regenerate {
                    source: source.clone(),
                    skip: *skip,
                    src,
                    dst,
                }
            }
            NodeOp::Not => {
                let src = slot_of(inputs[0], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                Step::Not { src, dst }
            }
            NodeOp::Binary(op) => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                Step::Binary { op: *op, x, y, dst }
            }
            NodeOp::UnaryFsm(op) => {
                let src = slot_of(inputs[0], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                Step::UnaryFsm { op: *op, src, dst }
            }
            NodeOp::Divide {
                source,
                skip,
                counter_bits,
            } => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                Step::Divide {
                    source: source.clone(),
                    skip: *skip,
                    counter_bits: *counter_bits,
                    x,
                    y,
                    dst,
                }
            }
            NodeOp::MuxAdd { select, skip } => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                let dst = slot_of(port(i, 0), &mut slots);
                Step::MuxAdd {
                    select: select.clone(),
                    skip: *skip,
                    x,
                    y,
                    dst,
                }
            }
            NodeOp::WeightedMux {
                weights,
                select,
                skip,
            } => {
                let srcs: Vec<usize> = inputs.iter().map(|w| slot_of(*w, &mut slots)).collect();
                let dst = slot_of(port(i, 0), &mut slots);
                Step::WeightedMux {
                    weights: weights.clone(),
                    select: select.clone(),
                    skip: *skip,
                    srcs,
                    dst,
                }
            }
            NodeOp::SinkStream { name } => {
                let src = slot_of(inputs[0], &mut slots);
                Step::SinkStream {
                    name: name.clone(),
                    src,
                }
            }
            NodeOp::SinkValue { name } => {
                let src = slot_of(inputs[0], &mut slots);
                Step::SinkValue {
                    name: name.clone(),
                    src,
                }
            }
            NodeOp::SinkCount { name } => {
                let src = slot_of(inputs[0], &mut slots);
                Step::SinkCount {
                    name: name.clone(),
                    src,
                }
            }
            NodeOp::SinkSum { name } => {
                let srcs: Vec<usize> = inputs.iter().map(|w| slot_of(*w, &mut slots)).collect();
                Step::SinkSum {
                    name: name.clone(),
                    srcs,
                }
            }
            NodeOp::SccProbe { name } => {
                let x = slot_of(inputs[0], &mut slots);
                let y = slot_of(inputs[1], &mut slots);
                Step::SccProbe {
                    name: name.clone(),
                    x,
                    y,
                }
            }
        };
        match ir.group_of[i] {
            Some(g) if ir.group_tail[g] != i => pending[g].push(step),
            Some(g) => {
                let mut sub = std::mem::take(&mut pending[g]);
                sub.push(step);
                steps.push(Step::Fused { steps: sub });
            }
            None => steps.push(step),
        }
    }

    // Shared-source accounting: with CSE on, the executor's per-spec source
    // cache means each distinct spec drives one physical sample generator;
    // count the generator instances the sharing saves.
    if options.passes.cse {
        let mut seen: HashSet<&SourceSpec> = HashSet::new();
        let mut shared = 0usize;
        for step in &steps {
            count_shared(step, &mut seen, &mut shared);
        }
        report.shared_sources = shared;
    }

    report.pass_deltas.push(PassDelta {
        pass: "emit",
        nodes_added: 0,
        nodes_removed: 0,
        detail: format!(
            "{} steps ({} manipulator runs fused, {} span steps eliminated)",
            steps.len(),
            report.fused_runs,
            report.steps_eliminated
        ),
    });

    Ok(CompiledGraph::assemble(
        steps,
        slot_count,
        value_slots,
        stream_slots,
        report,
        ops,
        options.passes,
    ))
}

/// Counts repeated [`SourceSpec`] uses across a (possibly fused) step.
fn count_shared<'a>(step: &'a Step, seen: &mut HashSet<&'a SourceSpec>, shared: &mut usize) {
    let spec = match step {
        Step::Generate { source, .. }
        | Step::Constant { source, .. }
        | Step::Regenerate { source, .. }
        | Step::Divide { source, .. } => Some(source),
        Step::MuxAdd { select, .. } | Step::WeightedMux { select, .. } => Some(select),
        Step::Fused { steps } => {
            for sub in steps {
                count_shared(sub, seen, shared);
            }
            None
        }
        _ => None,
    };
    if let Some(spec) = spec {
        if !seen.insert(spec) {
            *shared += 1;
        }
    }
}
