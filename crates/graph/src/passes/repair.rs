//! The **repair-placement** pass: cost-driven insertion of
//! correlation-establishing manipulators.

use super::{Ir, Pass};
use crate::compile::{CompileReport, PlannerOptions, Step};
use crate::node::{ManipulatorKind, Node, NodeOp, SccClass, Wire};
use sc_telemetry::{Stage, TelemetrySink};

/// For every correlation-tracked operator whose inferred (or measured) input
/// class misses its precondition, enumerates the legal repairs — every
/// configured manipulator whose established class satisfies the requirement,
/// placed either as a fresh circuit or by reusing an existing manipulator of
/// the same kind over the same input pair — prices each through the
/// `sc_hwcost` bridge ([`crate::cost::step_netlist`]), and applies the
/// cheapest.
///
/// Reuse is free (the hardware and the stream both already exist) and
/// bit-identical: a manipulator step writes pure per-slot streams that any
/// number of consumers may read, so sharing one repair across operators with
/// the same failing pair changes no bit of any stream. With
/// [`crate::PassSet::cost_repair`] disabled the pass always places a fresh
/// circuit of the requirement's establishing kind — byte-for-byte the
/// legacy planner's behaviour.
pub(crate) struct RepairPlacement;

enum Placement {
    Fresh(ManipulatorKind),
    Reuse(usize),
}

impl Pass for RepairPlacement {
    fn name(&self) -> &'static str {
        "repair-placement"
    }

    fn stage(&self) -> Stage {
        Stage::CompileRepair
    }

    fn enabled(&self, _options: &PlannerOptions) -> bool {
        true
    }

    fn run(
        &self,
        ir: &mut Ir,
        options: &PlannerOptions,
        report: &mut CompileReport,
        _telemetry: &TelemetrySink,
    ) -> Result<String, crate::graph::GraphError> {
        // Repairs appended below sit past this bound and are never
        // themselves correlation-tracked (manipulators have no requirement).
        let tracked = ir.nodes.len();
        let mut fresh = 0usize;
        let mut reused = 0usize;
        for i in 0..tracked {
            if !ir.live[i] {
                continue;
            }
            let Some((label, requirement)) = ir.nodes[i].op.correlation_requirement() else {
                continue;
            };
            let class = ir.classes.get(&i).copied().unwrap_or(SccClass::Unknown);
            if requirement.satisfied_by(class) {
                continue;
            }
            let Some(baseline) = requirement.establishing_manipulator(options) else {
                continue;
            };
            if !options.auto_repair {
                report.unsatisfied.push(format!(
                    "{label} (node n{i}) requires {requirement:?} inputs but gets {class:?}"
                ));
                continue;
            }
            let (a, b) = (ir.nodes[i].inputs[0], ir.nodes[i].inputs[1]);
            let placement = if options.passes.cost_repair {
                choose_placement(ir, options, requirement, baseline, a, b)
            } else {
                Placement::Fresh(baseline)
            };
            match placement {
                Placement::Fresh(kind) => {
                    let repair = ir.push_node(Node {
                        op: NodeOp::Manipulate(kind),
                        inputs: vec![a, b],
                    });
                    rewire_to(ir, i, repair);
                    fresh += 1;
                    report.inserted.push(format!(
                        "{kind} inserted before {label} (node n{i}): inputs are {class:?}, {requirement:?} required"
                    ));
                }
                Placement::Reuse(repair) => {
                    rewire_to(ir, i, repair);
                    reused += 1;
                    report.shared_repairs += 1;
                }
            }
        }
        Ok(format!("{fresh} repairs inserted, {reused} shared"))
    }
}

/// Points operator `i`'s two inputs at the repair manipulator's output pair.
fn rewire_to(ir: &mut Ir, i: usize, repair: usize) {
    ir.nodes[i].inputs[0] = Wire {
        node: crate::node::NodeId(repair),
        port: 0,
    };
    ir.nodes[i].inputs[1] = Wire {
        node: crate::node::NodeId(repair),
        port: 1,
    };
}

/// Enumerates the legal repairs for a failing `(a, b)` pair and returns the
/// cheapest: reuse candidates (an existing live manipulator of a legal kind
/// over exactly this pair) cost nothing; fresh candidates cost their
/// manipulator circuit's netlist area. Ties keep enumeration order (reuse
/// first, then the requirement's establishing kind).
fn choose_placement(
    ir: &Ir,
    options: &PlannerOptions,
    requirement: crate::node::CorrRequirement,
    baseline: ManipulatorKind,
    a: Wire,
    b: Wire,
) -> Placement {
    let legal: Vec<ManipulatorKind> = [
        ManipulatorKind::Synchronizer {
            depth: options.synchronizer_depth,
        },
        ManipulatorKind::Desynchronizer {
            depth: options.desynchronizer_depth,
        },
        ManipulatorKind::Decorrelator {
            depth: options.decorrelator_depth,
        },
    ]
    .into_iter()
    .filter(|kind| {
        kind.output_class()
            .is_some_and(|class| requirement.satisfied_by(class))
    })
    .collect();
    let mut best: Option<(Placement, f64)> = None;
    let mut consider = |candidate: Placement, cost: f64| {
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((candidate, cost));
        }
    };
    for (j, node) in ir.nodes.iter().enumerate() {
        if !ir.live[j] {
            continue;
        }
        if let NodeOp::Manipulate(kind) = &node.op {
            if legal.contains(kind) && node.inputs == [a, b] {
                consider(Placement::Reuse(j), 0.0);
            }
        }
    }
    for kind in legal {
        let circuit = Step::Manipulate {
            kinds: vec![kind],
            x: 0,
            y: 0,
            dst_x: 0,
            dst_y: 0,
        };
        let cost =
            crate::cost::step_netlist(&circuit, crate::cost::DEFAULT_CONVERTER_BITS).area_um2();
        consider(Placement::Fresh(kind), cost);
    }
    best.map_or(Placement::Fresh(baseline), |(placement, _)| placement)
}
