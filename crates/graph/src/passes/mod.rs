//! The staged optimizer pass pipeline behind [`crate::Graph::compile`].
//!
//! Compilation is a sequence of named passes over a shared compiler IR
//! ([`Ir`]): a mutable node list with liveness marks, inferred SCC classes,
//! and span-fusion groups. Each pass takes and returns the IR, records one
//! telemetry span against the static stage registry, and reports its delta
//! into the plan's [`CompileReport`]:
//!
//! 1. **validate** ([`Stage::CompileValidate`]) — arity, sink-uniqueness,
//!    and cycle checks.
//! 2. **scc-infer** ([`Stage::CompilePlan`]) — derives every tracked
//!    operator's input-pair SCC class structurally, running measured-SCC
//!    probe executions for structurally unknown pairs when enabled.
//! 3. **subgraph-cse** ([`Stage::CompileCse`]) — hash-cons of whole
//!    identical subgraphs (same ops, same [`sc_rng::SourceSpec`]s, and
//!    therefore the same SCC classes): duplicate nodes are merged into one
//!    representative and their consumers rewired, extending the executor's
//!    select-source sharing to arbitrary repeated structure.
//! 4. **dead-node-elim** ([`Stage::CompileDce`]) — reverse reachability
//!    from the live sinks drops orphaned interior nodes and the upstream
//!    chains of CSE-merged losers from scheduling entirely.
//! 5. **repair-placement** ([`Stage::CompileRepair`]) — where an inferred
//!    class misses an operator's precondition, enumerates the legal repairs,
//!    prices each through the `sc_hwcost` bridge, and applies the cheapest
//!    (reusing an existing identical repair when one exists, which is free
//!    and bit-identical).
//! 6. **span-fusion** ([`Stage::CompileFuse`]) — groups maximal linear
//!    source→gate→sink spans (single-consumer chains of non-FSM steps) so
//!    emission collapses each group into one [`crate::Step::Fused`] step,
//!    beyond the manipulator-chain fusion emission already performs.
//! 7. **emit** ([`Stage::CompileEmit`]) — topological scheduling, dense
//!    slot assignment, manipulator-chain fusion, and step emission.
//!
//! Every optimizer pass preserves bit-identity: an optimized plan and its
//! pass-disabled twin produce the same executor output (and the same
//! `sc_rtl` co-simulation) bit for bit, because streams depend only on their
//! own `(SourceSpec, skip)` and merged/deferred/shared steps compute
//! identical streams.
//!
//! New passes slot in by implementing [`Pass`] and joining the array in
//! [`run_pipeline`]; register a dedicated [`Stage`] so traces show the pass
//! as its own span under `compile`.

pub(crate) mod cse;
pub(crate) mod dce;
pub(crate) mod emit;
pub(crate) mod fuse;
pub(crate) mod infer;
pub(crate) mod repair;
pub(crate) mod validate;

use crate::compile::{CompileReport, CompiledGraph, PassDelta, PlannerOptions};
use crate::graph::{Graph, GraphError};
use crate::node::{Node, SccClass};
use sc_telemetry::{Counter, Stage, TelemetrySink};
use std::collections::HashMap;

/// The compiler IR the passes transform: the node list (graph nodes plus
/// planner-appended repairs, indices stable for the whole pipeline) with
/// liveness marks, inferred SCC classes, and span-fusion groups.
pub(crate) struct Ir {
    /// All nodes; indices are stable (CSE marks nodes dead instead of
    /// compacting, so reports and classes can keep naming `n{i}`).
    pub nodes: Vec<Node>,
    /// `live[i] == false` ⇒ node `i` was merged away by CSE; emission skips
    /// it (its consumers were rewired to the representative).
    pub live: Vec<bool>,
    /// Inferred SCC class per correlation-tracked operator (node index →
    /// class), measured-probe feedback already applied.
    pub classes: HashMap<usize, SccClass>,
    /// Span-fusion group of each node (`None` ⇒ emitted solo).
    pub group_of: Vec<Option<usize>>,
    /// Per group: the last member in topological order, where the fused
    /// step is emitted.
    pub group_tail: Vec<usize>,
}

impl Ir {
    fn new(nodes: Vec<Node>) -> Self {
        let n = nodes.len();
        Ir {
            nodes,
            live: vec![true; n],
            classes: HashMap::new(),
            group_of: vec![None; n],
            group_tail: Vec::new(),
        }
    }

    /// Appends a node (used by repair placement), keeping the parallel
    /// vectors in sync; returns its index.
    pub(crate) fn push_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.live.push(true);
        self.group_of.push(None);
        self.nodes.len() - 1
    }

    /// Number of live (emitted) nodes.
    pub(crate) fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Human-readable dump of the IR for [`PlannerOptions::dump_ir`]: one
    /// line per node with its label, input wires, inferred class, liveness,
    /// and span-fusion group.
    pub(crate) fn pretty(&self) -> String {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let inputs: Vec<String> = node.inputs.iter().map(ToString::to_string).collect();
            out.push_str(&format!("n{i}: {}({})", node.op.label(), inputs.join(", ")));
            if let Some(class) = self.classes.get(&i) {
                out.push_str(&format!(" [scc={class:?}]"));
            }
            if !self.live[i] {
                out.push_str(" [merged]");
            }
            if let Some(g) = self.group_of.get(i).copied().flatten() {
                if self.group_tail[g] == i {
                    out.push_str(&format!(" [span {g} tail]"));
                } else {
                    out.push_str(&format!(" [span {g}]"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// One named IR pass of the compile pipeline.
pub(crate) trait Pass {
    /// Stable pass name (reports, IR dumps).
    fn name(&self) -> &'static str;
    /// The telemetry stage recorded around the pass.
    fn stage(&self) -> Stage;
    /// Whether the pass runs under the given options (disabled passes
    /// record neither a span nor a delta).
    fn enabled(&self, options: &PlannerOptions) -> bool;
    /// Transforms the IR; returns a short human-readable delta description.
    fn run(
        &self,
        ir: &mut Ir,
        options: &PlannerOptions,
        report: &mut CompileReport,
        telemetry: &TelemetrySink,
    ) -> Result<String, GraphError>;
}

/// Runs the full pass pipeline over a graph: the engine behind
/// [`Graph::compile_with_telemetry`].
pub(crate) fn run_pipeline(
    graph: &Graph,
    options: &PlannerOptions,
    telemetry: &TelemetrySink,
) -> Result<CompiledGraph, GraphError> {
    let _compile = telemetry.span(Stage::Compile);
    if graph.nodes.is_empty() {
        return Err(GraphError::EmptyGraph);
    }
    let mut ir = Ir::new(graph.nodes.to_vec());
    let mut report = CompileReport::default();
    let passes: [&dyn Pass; 6] = [
        &validate::Validate,
        &infer::SccInfer,
        &cse::SubgraphCse,
        &dce::DeadNodeElim,
        &repair::RepairPlacement,
        &fuse::SpanFusion,
    ];
    for pass in passes {
        if !pass.enabled(options) {
            continue;
        }
        let nodes_before = ir.nodes.len();
        let live_before = ir.live_count();
        let span = telemetry.span(pass.stage());
        let detail = pass.run(&mut ir, options, &mut report, telemetry)?;
        drop(span);
        let nodes_added = ir.nodes.len() - nodes_before;
        report.pass_deltas.push(PassDelta {
            pass: pass.name(),
            nodes_added,
            nodes_removed: live_before + nodes_added - ir.live_count(),
            detail,
        });
        if let Some(dump) = options.dump_ir {
            dump(pass.name(), &ir.pretty());
        }
    }
    let emit_span = telemetry.span(Stage::CompileEmit);
    // Topological order recomputed after planning so inserted repair nodes
    // participate in scheduling (insertion cannot create cycles: a repair
    // only splices into existing edges).
    let order = topo_order(&ir.nodes)?;
    let result = emit::emit_steps(&ir, &order, options, report);
    drop(emit_span);
    if telemetry.is_enabled() {
        if let Ok(plan) = &result {
            telemetry.add(Counter::Compilations, 1);
            telemetry.add(
                Counter::RepairsInserted,
                plan.report().inserted.len() as u64,
            );
            telemetry.add(Counter::FusedRuns, plan.report().fused_runs as u64);
        }
    }
    result
}

/// Kahn topological sort; errors with a node on a cycle if one exists.
pub(crate) fn topo_order(nodes: &[Node]) -> Result<Vec<usize>, GraphError> {
    let mut indegree: Vec<usize> = nodes.iter().map(|n| n.inputs.len()).collect();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        for wire in &node.inputs {
            consumers[wire.node().index()].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..nodes.len()).filter(|&i| indegree[i] == 0).collect();
    // Keep deterministic (insertion-order) scheduling: treat `ready` as a
    // min-ordered queue over node indices.
    ready.sort_unstable();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(&next) = ready.first() {
        ready.remove(0);
        order.push(next);
        for &consumer in &consumers[next] {
            indegree[consumer] -= 1;
            if indegree[consumer] == 0 {
                let pos = ready.binary_search(&consumer).unwrap_err();
                ready.insert(pos, consumer);
            }
        }
    }
    if order.len() != nodes.len() {
        let node = (0..nodes.len())
            .find(|&i| indegree[i] > 0)
            .expect("incomplete order implies a node with remaining indegree");
        return Err(GraphError::Cycle { node });
    }
    Ok(order)
}
