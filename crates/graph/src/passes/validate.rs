//! The **validate** pass: structural checks before any transformation.

use super::{topo_order, Ir, Pass};
use crate::compile::{CompileReport, PlannerOptions};
use crate::graph::GraphError;
use sc_telemetry::{Stage, TelemetrySink};

/// Arity, sink-uniqueness, and cycle checks (wires are builder-validated;
/// arity and sink uniqueness are re-checked here to cover future mutation
/// APIs).
pub(crate) struct Validate;

impl Pass for Validate {
    fn name(&self) -> &'static str {
        "validate"
    }

    fn stage(&self) -> Stage {
        Stage::CompileValidate
    }

    fn enabled(&self, _options: &PlannerOptions) -> bool {
        true
    }

    fn run(
        &self,
        ir: &mut Ir,
        _options: &PlannerOptions,
        _report: &mut CompileReport,
        _telemetry: &TelemetrySink,
    ) -> Result<String, GraphError> {
        let mut sink_names: Vec<&str> = Vec::new();
        for (i, node) in ir.nodes.iter().enumerate() {
            if let Some(expected) = node.op.input_arity() {
                if node.inputs.len() != expected {
                    return Err(GraphError::BadArity {
                        node: i,
                        expected,
                        got: node.inputs.len(),
                    });
                }
            }
            if let Some(name) = node.op.sink_name() {
                if sink_names.contains(&name) {
                    return Err(GraphError::DuplicateSink {
                        name: name.to_string(),
                    });
                }
                sink_names.push(name);
            }
        }
        // Cycle check up front: the scc-infer pass's class derivation
        // recurses through identity manipulators and must only ever see a
        // DAG.
        topo_order(&ir.nodes)?;
        Ok(format!(
            "{} nodes, {} sinks valid",
            ir.nodes.len(),
            sink_names.len()
        ))
    }
}
