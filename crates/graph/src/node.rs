//! The node vocabulary of the dataflow graph: sources, correlation
//! manipulators, arithmetic operators, and sinks.

use sc_core::{
    CorrelationManipulator, Decorrelator, DecorrelatorLanes, Desynchronizer, Identity, Isolator,
    LaneBank, LaneKernel, Synchronizer,
};
use sc_rng::SourceSpec;
use std::fmt;

/// Identifier of a node inside one [`crate::Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's index in graph insertion order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A stream-valued edge endpoint: output `port` of `node`.
///
/// Wires are only handed out by the [`crate::Graph`] builder methods, so a
/// wire is always a valid reference into the graph that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wire {
    pub(crate) node: NodeId,
    pub(crate) port: u8,
}

impl Wire {
    /// The producing node.
    #[must_use]
    pub fn node(self) -> NodeId {
        self.node
    }

    /// The output port on the producing node.
    #[must_use]
    pub fn port(self) -> u8 {
        self.port
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node, self.port)
    }
}

/// The correlation-manipulating circuit family a manipulator node instantiates.
///
/// Kinds are plain data (no live FSM state): every execution of a compiled
/// plan builds fresh instances via [`ManipulatorKind::build`], so batch items
/// never share FSM state and sharded execution is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ManipulatorKind {
    /// Pass-through (no manipulation).
    Identity,
    /// `delay` isolator flip-flops on the Y stream (Ting & Hayes baseline).
    Isolator {
        /// Number of flip-flop stages.
        delay: usize,
    },
    /// Synchronizer FSM driving SCC toward +1 (Fig. 3a).
    Synchronizer {
        /// Save depth `D ≥ 1`.
        depth: u32,
    },
    /// Desynchronizer FSM driving SCC toward −1 (Fig. 3b).
    Desynchronizer {
        /// Save depth `D ≥ 1`.
        depth: u32,
    },
    /// Decorrelator (two shuffle buffers) driving SCC toward 0 (Fig. 4).
    Decorrelator {
        /// Shuffle-buffer depth.
        depth: usize,
    },
}

impl ManipulatorKind {
    /// Builds a fresh manipulator instance in its power-on state.
    #[must_use]
    pub fn build(&self) -> Box<dyn CorrelationManipulator> {
        match *self {
            ManipulatorKind::Identity => Box::new(Identity::new()),
            ManipulatorKind::Isolator { delay } => Box::new(Isolator::new(delay)),
            ManipulatorKind::Synchronizer { depth } => Box::new(Synchronizer::new(depth)),
            ManipulatorKind::Desynchronizer { depth } => Box::new(Desynchronizer::new(depth)),
            ManipulatorKind::Decorrelator { depth } => Box::new(Decorrelator::new(depth)),
        }
    }

    /// Builds a lane-batched kernel of `count` fresh instances in their
    /// power-on state: lane `l` of every kernel step advances instance `l`,
    /// bit-identically to `count` solo [`ManipulatorKind::build`] circuits.
    /// Decorrelators get their dedicated register-staged lane bank
    /// ([`DecorrelatorLanes`]); every other family goes through the generic
    /// [`LaneBank`], whose equal-configuration FSMs share one speculative
    /// table across all lanes.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than [`sc_core::LANES`].
    #[must_use]
    pub fn build_lanes(&self, count: usize) -> Box<dyn LaneKernel> {
        match *self {
            ManipulatorKind::Decorrelator { depth } => {
                Box::new(DecorrelatorLanes::new(depth, count))
            }
            _ => Box::new(LaneBank::new((0..count).map(|_| self.build()).collect())),
        }
    }

    /// The SCC class this circuit establishes between its two outputs, or
    /// `None` for [`ManipulatorKind::Identity`], which preserves whatever
    /// class its inputs had.
    #[must_use]
    pub fn output_class(&self) -> Option<SccClass> {
        match self {
            ManipulatorKind::Identity => None,
            ManipulatorKind::Isolator { .. } | ManipulatorKind::Decorrelator { .. } => {
                Some(SccClass::Uncorrelated)
            }
            ManipulatorKind::Synchronizer { .. } => Some(SccClass::Positive),
            ManipulatorKind::Desynchronizer { .. } => Some(SccClass::Negative),
        }
    }
}

impl fmt::Display for ManipulatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ManipulatorKind::Identity => write!(f, "identity"),
            ManipulatorKind::Isolator { delay } => write!(f, "isolator(k={delay})"),
            ManipulatorKind::Synchronizer { depth } => write!(f, "synchronizer(D={depth})"),
            ManipulatorKind::Desynchronizer { depth } => write!(f, "desynchronizer(D={depth})"),
            ManipulatorKind::Decorrelator { depth } => write!(f, "decorrelator(D={depth})"),
        }
    }
}

/// Abstract SCC class of a pair of streams, as tracked by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SccClass {
    /// SCC ≈ +1 (1s aligned).
    Positive,
    /// SCC ≈ −1 (1s anti-aligned).
    Negative,
    /// SCC ≈ 0 (independent bit order).
    Uncorrelated,
    /// Nothing is known structurally about the pair.
    Unknown,
}

/// The input-correlation precondition of a binary operator (paper Fig. 2):
/// the SCC class under which the gate computes its intended function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrRequirement {
    /// Inputs must be positively correlated (SCC +1).
    Positive,
    /// Inputs must be negatively correlated (SCC −1).
    Negative,
    /// Inputs must be uncorrelated (SCC 0).
    Uncorrelated,
    /// The operator is correlation-agnostic.
    Agnostic,
}

impl CorrRequirement {
    /// Whether a pair of the given class satisfies this requirement.
    #[must_use]
    pub fn satisfied_by(&self, class: SccClass) -> bool {
        match self {
            CorrRequirement::Agnostic => true,
            CorrRequirement::Positive => class == SccClass::Positive,
            CorrRequirement::Negative => class == SccClass::Negative,
            CorrRequirement::Uncorrelated => class == SccClass::Uncorrelated,
        }
    }

    /// The manipulator family that *establishes* this requirement, used by
    /// the planner's auto-repair pass. `None` for agnostic ops.
    #[must_use]
    pub fn establishing_manipulator(
        &self,
        options: &crate::PlannerOptions,
    ) -> Option<ManipulatorKind> {
        match self {
            CorrRequirement::Agnostic => None,
            CorrRequirement::Positive => Some(ManipulatorKind::Synchronizer {
                depth: options.synchronizer_depth,
            }),
            CorrRequirement::Negative => Some(ManipulatorKind::Desynchronizer {
                depth: options.desynchronizer_depth,
            }),
            CorrRequirement::Uncorrelated => Some(ManipulatorKind::Decorrelator {
                depth: options.decorrelator_depth,
            }),
        }
    }
}

/// A two-input, one-output arithmetic operator drawn from `sc_arith`.
///
/// Each operator carries the *intent* of the circuit (e.g. OR used as max vs
/// OR used as saturating add), because the intent determines the correlation
/// precondition the planner must establish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BinaryOp {
    /// AND-gate unipolar multiply (`pX·pY`, needs SCC 0).
    AndMultiply,
    /// XNOR-gate bipolar multiply (`x·y`, needs SCC 0).
    XnorMultiply,
    /// OR-gate maximum (`max(pX, pY)`, needs SCC +1).
    OrMax,
    /// AND-gate minimum (`min(pX, pY)`, needs SCC +1).
    AndMin,
    /// OR-gate saturating add (`min(1, pX + pY)`, needs SCC −1).
    SaturatingAdd,
    /// XOR-gate absolute difference (`|pX − pY|`, needs SCC +1).
    XorSubtract,
    /// Correlation-agnostic parallel-counter scaled add (`0.5(pX + pY)`).
    CaAdd,
    /// Correlation-agnostic counter-based maximum (SC-DCNN baseline).
    CaMax,
    /// Correlation-agnostic counter-based minimum.
    CaMin,
}

impl BinaryOp {
    /// The input-correlation precondition of this operator.
    #[must_use]
    pub fn requirement(&self) -> CorrRequirement {
        match self {
            BinaryOp::AndMultiply | BinaryOp::XnorMultiply => CorrRequirement::Uncorrelated,
            BinaryOp::OrMax | BinaryOp::AndMin | BinaryOp::XorSubtract => CorrRequirement::Positive,
            BinaryOp::SaturatingAdd => CorrRequirement::Negative,
            BinaryOp::CaAdd | BinaryOp::CaMax | BinaryOp::CaMin => CorrRequirement::Agnostic,
        }
    }
}

/// A one-input, one-output saturating-counter FSM operator drawn from
/// `sc_arith::fsm_ops` (Brown & Card activation designs; bipolar streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryFsmOp {
    /// Stochastic `tanh`-like activation: a saturating counter with
    /// `2·half_states` states whose output is 1 in the upper half.
    Stanh {
        /// Half the FSM state count (`1..=2048`).
        half_states: u32,
    },
    /// Stochastic clamped linear gain: a saturating counter with mid-state
    /// toggling.
    Slinear {
        /// Total FSM state count (`2..=4096`).
        states: u32,
    },
}

impl fmt::Display for UnaryFsmOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            UnaryFsmOp::Stanh { half_states } => write!(f, "stanh(S={})", 2 * half_states),
            UnaryFsmOp::Slinear { states } => write!(f, "slinear(S={states})"),
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::AndMultiply => "and_multiply",
            BinaryOp::XnorMultiply => "xnor_multiply",
            BinaryOp::OrMax => "or_max",
            BinaryOp::AndMin => "and_min",
            BinaryOp::SaturatingAdd => "saturating_add",
            BinaryOp::XorSubtract => "xor_subtract",
            BinaryOp::CaAdd => "ca_add",
            BinaryOp::CaMax => "ca_max",
            BinaryOp::CaMin => "ca_min",
        };
        f.write_str(s)
    }
}

/// The operation a graph node performs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeOp {
    /// A ready stochastic stream supplied by the batch item
    /// (`BatchInput::streams[slot]`). 0 inputs, 1 output.
    InputStream {
        /// Index into the batch item's stream list.
        slot: usize,
    },
    /// D/S conversion of the batch item's digital value
    /// (`BatchInput::values[slot]`), Fig. 2g. 0 inputs, 1 output.
    Generate {
        /// Index into the batch item's value list.
        slot: usize,
        /// Comparator sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
    },
    /// D/S conversion of a constant probability. 0 inputs, 1 output.
    ConstStream {
        /// The encoded probability, clamped to `[0, 1]`.
        probability: f64,
        /// Comparator sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
    },
    /// A correlation-manipulating circuit. 2 inputs, 2 outputs
    /// (port 0 = manipulated X, port 1 = manipulated Y).
    Manipulate(
        /// The circuit family.
        ManipulatorKind,
    ),
    /// S/D + D/S regeneration from a fresh source (§II.B baseline).
    /// 1 input, 1 output.
    Regenerate {
        /// Re-encoding sample source.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
    },
    /// Stream complement (`1 − pX`). 1 input, 1 output.
    Not,
    /// A two-input arithmetic operator. 2 inputs, 1 output.
    Binary(
        /// The operator.
        BinaryOp,
    ),
    /// A saturating-counter FSM activation. 1 input, 1 output.
    UnaryFsm(
        /// The FSM design.
        UnaryFsmOp,
    ),
    /// The feedback SC divider `pZ = min(1, pX / pY)` (Fig. 2e), with its
    /// dedicated comparison sample source. Prefers *positively correlated*
    /// inputs, which the planner establishes like any other precondition.
    /// 2 inputs, 1 output.
    Divide {
        /// Comparison sample source for the output bit decision.
        source: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
        /// Width of the saturating integration counter (`1..=20`).
        counter_bits: u32,
    },
    /// MUX scaled adder with a dedicated 0.5-valued select source
    /// (`0.5(pX + pY)`, Fig. 2a). 2 inputs, 1 output; select bit 1 picks the
    /// first input.
    MuxAdd {
        /// Select-stream source (must be uncorrelated with the data inputs).
        select: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
    },
    /// Weighted multiplexer tree: each cycle one input stream is sampled with
    /// probability equal to its weight, so the output value is the weighted
    /// average of the inputs (the Gaussian-blur kernel shape of §IV).
    /// `weights.len()` inputs, 1 output. Any weight mass missing from 1.0
    /// falls to the last input.
    WeightedMux {
        /// Per-input selection probabilities, in input order.
        weights: Vec<f64>,
        /// Selection sample source.
        select: SourceSpec,
        /// Samples the source has already served to earlier consumers.
        skip: u64,
    },
    /// Sink: expose the stream itself. 1 input, 0 outputs.
    SinkStream {
        /// Output name in [`crate::ExecOutput`].
        name: String,
    },
    /// Sink: S/D conversion to the stream's unipolar value (Fig. 2f).
    /// 1 input, 0 outputs.
    SinkValue {
        /// Output name in [`crate::ExecOutput`].
        name: String,
    },
    /// Sink: S/D conversion to the raw 1s count. 1 input, 0 outputs.
    SinkCount {
        /// Output name in [`crate::ExecOutput`].
        name: String,
    },
    /// Sink: accumulative parallel counter over all inputs, exposing the
    /// unscaled sum of values (Ting & Hayes APC). ≥1 inputs, 0 outputs.
    SinkSum {
        /// Output name in [`crate::ExecOutput`].
        name: String,
    },
    /// Sink: SCC probe over a pair of streams. 2 inputs, 0 outputs.
    SccProbe {
        /// Output name in [`crate::ExecOutput`].
        name: String,
    },
}

impl NodeOp {
    /// Number of output stream ports.
    #[must_use]
    pub fn output_ports(&self) -> usize {
        match self {
            NodeOp::Manipulate(_) => 2,
            NodeOp::SinkStream { .. }
            | NodeOp::SinkValue { .. }
            | NodeOp::SinkCount { .. }
            | NodeOp::SinkSum { .. }
            | NodeOp::SccProbe { .. } => 0,
            _ => 1,
        }
    }

    /// Number of input streams, or `None` for variadic ops
    /// ([`NodeOp::SinkSum`]).
    #[must_use]
    pub fn input_arity(&self) -> Option<usize> {
        match self {
            NodeOp::InputStream { .. } | NodeOp::Generate { .. } | NodeOp::ConstStream { .. } => {
                Some(0)
            }
            NodeOp::Regenerate { .. }
            | NodeOp::Not
            | NodeOp::UnaryFsm(_)
            | NodeOp::SinkStream { .. }
            | NodeOp::SinkValue { .. }
            | NodeOp::SinkCount { .. } => Some(1),
            NodeOp::Manipulate(_)
            | NodeOp::Binary(_)
            | NodeOp::Divide { .. }
            | NodeOp::MuxAdd { .. }
            | NodeOp::SccProbe { .. } => Some(2),
            NodeOp::WeightedMux { weights, .. } => Some(weights.len()),
            NodeOp::SinkSum { .. } => None,
        }
    }

    /// The correlation precondition this operation imposes on its two data
    /// inputs, with a display label, if it is a two-input arithmetic operator
    /// the planner tracks (binary ops and the feedback divider).
    #[must_use]
    pub fn correlation_requirement(&self) -> Option<(String, CorrRequirement)> {
        match self {
            NodeOp::Binary(op) => Some((op.to_string(), op.requirement())),
            // Fig. 2e: the feedback divider wants positively correlated
            // inputs; uncorrelated inputs increase convergence noise.
            NodeOp::Divide { .. } => Some(("divide".to_string(), CorrRequirement::Positive)),
            _ => None,
        }
    }

    /// Whether the node is a sink (has a named result and no outputs).
    #[must_use]
    pub fn is_sink(&self) -> bool {
        self.output_ports() == 0
    }

    /// The sink's output name, if this is a sink.
    #[must_use]
    pub fn sink_name(&self) -> Option<&str> {
        match self {
            NodeOp::SinkStream { name }
            | NodeOp::SinkValue { name }
            | NodeOp::SinkCount { name }
            | NodeOp::SinkSum { name }
            | NodeOp::SccProbe { name } => Some(name),
            _ => None,
        }
    }

    /// Short human-readable label (used in compile reports and cost tables).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            NodeOp::InputStream { slot } => format!("input[{slot}]"),
            NodeOp::Generate { slot, source, .. } => format!("d2s[{slot}]({source})"),
            NodeOp::ConstStream {
                probability,
                source,
                ..
            } => format!("const({probability})({source})"),
            NodeOp::Manipulate(kind) => kind.to_string(),
            NodeOp::Regenerate { source, .. } => format!("regenerate({source})"),
            NodeOp::Not => "not".to_string(),
            NodeOp::Binary(op) => op.to_string(),
            NodeOp::UnaryFsm(op) => op.to_string(),
            NodeOp::Divide { source, .. } => format!("divide({source})"),
            NodeOp::MuxAdd { .. } => "mux_add".to_string(),
            NodeOp::WeightedMux { weights, .. } => format!("weighted_mux[{}]", weights.len()),
            NodeOp::SinkStream { name } => format!("sink_stream({name})"),
            NodeOp::SinkValue { name } => format!("sink_value({name})"),
            NodeOp::SinkCount { name } => format!("sink_count({name})"),
            NodeOp::SinkSum { name } => format!("sink_sum({name})"),
            NodeOp::SccProbe { name } => format!("scc_probe({name})"),
        }
    }
}

/// A node: its operation plus the wires feeding each input, in port order.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation.
    pub op: NodeOp,
    /// Input wires, one per input port.
    pub inputs: Vec<Wire>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlannerOptions;

    #[test]
    fn arities_and_ports() {
        assert_eq!(NodeOp::Not.input_arity(), Some(1));
        assert_eq!(NodeOp::Binary(BinaryOp::CaAdd).input_arity(), Some(2));
        assert_eq!(
            NodeOp::Manipulate(ManipulatorKind::Identity).output_ports(),
            2
        );
        assert_eq!(
            NodeOp::SinkSum {
                name: "s".to_string()
            }
            .input_arity(),
            None
        );
        assert!(NodeOp::SinkValue {
            name: "v".to_string()
        }
        .is_sink());
        assert_eq!(
            NodeOp::SccProbe {
                name: "p".to_string()
            }
            .sink_name(),
            Some("p")
        );
    }

    #[test]
    fn requirements_match_paper_fig2() {
        assert_eq!(
            BinaryOp::AndMultiply.requirement(),
            CorrRequirement::Uncorrelated
        );
        assert_eq!(BinaryOp::OrMax.requirement(), CorrRequirement::Positive);
        assert_eq!(
            BinaryOp::SaturatingAdd.requirement(),
            CorrRequirement::Negative
        );
        assert_eq!(
            BinaryOp::XorSubtract.requirement(),
            CorrRequirement::Positive
        );
        assert_eq!(BinaryOp::CaAdd.requirement(), CorrRequirement::Agnostic);
    }

    #[test]
    fn establishing_manipulators() {
        let options = PlannerOptions::default();
        assert!(matches!(
            CorrRequirement::Positive.establishing_manipulator(&options),
            Some(ManipulatorKind::Synchronizer { .. })
        ));
        assert!(matches!(
            CorrRequirement::Negative.establishing_manipulator(&options),
            Some(ManipulatorKind::Desynchronizer { .. })
        ));
        assert!(matches!(
            CorrRequirement::Uncorrelated.establishing_manipulator(&options),
            Some(ManipulatorKind::Decorrelator { .. })
        ));
        assert_eq!(
            CorrRequirement::Agnostic.establishing_manipulator(&options),
            None
        );
    }

    #[test]
    fn manipulator_kinds_build_and_classify() {
        let kinds = [
            ManipulatorKind::Identity,
            ManipulatorKind::Isolator { delay: 2 },
            ManipulatorKind::Synchronizer { depth: 1 },
            ManipulatorKind::Desynchronizer { depth: 1 },
            ManipulatorKind::Decorrelator { depth: 4 },
        ];
        for kind in kinds {
            let m = kind.build();
            assert!(!m.name().is_empty());
        }
        assert_eq!(ManipulatorKind::Identity.output_class(), None);
        assert_eq!(
            ManipulatorKind::Synchronizer { depth: 2 }.output_class(),
            Some(SccClass::Positive)
        );
        assert_eq!(
            ManipulatorKind::Desynchronizer { depth: 2 }.output_class(),
            Some(SccClass::Negative)
        );
        assert_eq!(
            ManipulatorKind::Decorrelator { depth: 2 }.output_class(),
            Some(SccClass::Uncorrelated)
        );
    }

    #[test]
    fn labels_are_informative() {
        assert!(NodeOp::Binary(BinaryOp::XorSubtract)
            .label()
            .contains("xor"));
        assert!(ManipulatorKind::Synchronizer { depth: 3 }
            .to_string()
            .contains("D=3"));
        let w = Wire {
            node: NodeId(4),
            port: 1,
        };
        assert_eq!(w.to_string(), "n4.1");
        assert_eq!(w.node().index(), 4);
        assert_eq!(w.port(), 1);
    }
}
