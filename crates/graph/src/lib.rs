//! # sc-graph
//!
//! A dataflow-graph compiler and sharded batch executor for
//! stochastic-computing pipelines.
//!
//! The paper's accelerator (§IV) is a *circuit*: a wired graph of stream
//! generators, correlation-manipulating circuits, and arithmetic gates. This
//! crate makes that structure first-class. A [`Graph`] is built from typed
//! nodes — stream sources ([`Graph::generate`] D/S conversion,
//! [`Graph::input_stream`]), correlation manipulators
//! ([`Graph::manipulate`]), arithmetic operators ([`Graph::binary`],
//! [`Graph::mux_add`], [`Graph::weighted_mux`]), and sinks (S/D value and
//! count converters, APC sums, SCC probes) — connected by stream-valued
//! [`Wire`]s.
//!
//! [`Graph::compile`] runs a **staged optimizer pass pipeline** (validate →
//! scc-infer → subgraph-cse → repair-placement → span-fusion → emit; see
//! `passes` internals and the README's compiler section). Every binary
//! operator declares the SCC class its inputs must have (AND-multiply wants
//! SCC 0, XOR-subtract and OR-max want +1, OR-saturating-add wants −1 —
//! paper Fig. 2), the scc-infer pass derives each input pair's class
//! structurally (shared-source streams are +1, independent-source streams
//! are 0, and each manipulator pins its output pair to the class it
//! establishes), and where a precondition is not met the repair-placement
//! pass **auto-inserts** the establishing circuit — synchronizer,
//! desynchronizer, or decorrelator (§III), the paper's core insight applied
//! automatically, at the cheapest legal placement per the `sc_hwcost`
//! netlist model. The subgraph-cse pass merges structurally identical
//! subgraphs; the span-fusion pass collapses maximal linear
//! source→gate→sink spans into single [`Step::Fused`] steps; and linear
//! manipulator runs are **fused** into single [`sc_core::ManipulatorChain`]
//! steps that make one register-staged pass per 64-bit word. Each optimizer
//! pass toggles through [`PassSet`] and preserves bit-identity: optimized
//! and pass-disabled plans produce the same output bit for bit.
//!
//! The [`Executor`] then runs the compiled plan word-parallel over **batches**
//! of independent input sets, dispatched across a persistent [`WorkerPool`]
//! of long-lived threads (no external dependencies). The core engine is
//! **bounded-window streaming** ([`Executor::run_stream`]): jobs are pulled
//! lazily from an iterator with at most `window` planned-but-unfinished jobs
//! alive at once, so arbitrarily long job streams run in O(window) plan
//! memory; [`Executor::run_batch`] and [`Executor::run_group`] are thin
//! wrappers streaming a materialised list with an unbounded window. Plans
//! are `Send + Sync` plain data: every execution builds fresh deterministic
//! sources and FSMs from [`sc_rng::SourceSpec`]s, so parallel results are
//! bit-identical to sequential ones at any worker count and any window.
//!
//! A compiled plan also bridges to the gate-level cost model:
//! [`CompiledGraph::netlist`] sums the `sc_hwcost` netlists of every executed
//! operation, auto-inserted repairs included.
//!
//! **Observability.** Both the compiler and the executor accept an
//! [`sc_telemetry::TelemetrySink`] ([`Graph::compile_with_telemetry`],
//! [`Executor::with_telemetry`]): compile passes, dispatches, lane-group and
//! scalar executions, and worker park/run cycles record named spans,
//! counters, gauges, and histograms into it, drainable as one
//! [`sc_telemetry::TelemetryReport`]. The default sink is a no-op and the
//! instrumentation sits at step/job granularity — never inside the word
//! kernels — so uninstrumented runs pay (gated) near-zero overhead.
//!
//! # Example
//!
//! ```
//! use sc_graph::{BatchInput, BinaryOp, Executor, Graph, PlannerOptions};
//! use sc_rng::SourceSpec;
//!
//! // |pX − pY| needs positively correlated inputs, but the two D/S
//! // converters draw from independent Sobol dimensions...
//! let mut g = Graph::new();
//! let x = g.generate(0, SourceSpec::Sobol { dimension: 1 });
//! let y = g.generate(1, SourceSpec::Sobol { dimension: 2 });
//! let z = g.binary(BinaryOp::XorSubtract, x, y);
//! g.sink_value("diff", z);
//!
//! // ...so the planner inserts a synchronizer in front of the XOR.
//! let plan = g.compile(&PlannerOptions::default())?;
//! assert_eq!(plan.report().inserted.len(), 1);
//!
//! // Batched execution: 4 independent input sets, sharded over 2 workers.
//! let inputs: Vec<BatchInput> = (0..4)
//!     .map(|i| BatchInput::with_values(vec![0.8, 0.2 + 0.1 * i as f64]))
//!     .collect();
//! let outs = Executor::new(1024).with_threads(2).run_batch(&plan, &inputs)?;
//! for (i, out) in outs.iter().enumerate() {
//!     let expected = (0.8f64 - (0.2 + 0.1 * i as f64)).abs();
//!     assert!((out.value("diff").unwrap() - expected).abs() < 0.07);
//! }
//! # Ok::<(), sc_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod cost;
pub mod exec;
pub mod graph;
pub mod node;
mod passes;
pub mod serve;

pub use compile::{
    CompileReport, CompiledGraph, MeasuredPair, PassDelta, PassSet, PlannerOptions, Step,
};
pub use exec::{
    balanced_spans, BatchInput, ExecJob, ExecOutput, Executor, PlanClassStats, StreamJob,
    StreamStats, WorkerPool, DEFAULT_WINDOW_FACTOR,
};
pub use graph::{Graph, GraphError};
pub use node::{
    BinaryOp, CorrRequirement, ManipulatorKind, Node, NodeId, NodeOp, SccClass, UnaryFsmOp, Wire,
};
pub use sc_telemetry::{TelemetryReport, TelemetrySink};
pub use serve::{
    Request, RequestAttribution, RequestError, RequestHandle, RequestReport, Service,
    ServiceConfig, SubmitError,
};
