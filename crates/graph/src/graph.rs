//! The dataflow-graph builder.

use crate::node::{BinaryOp, ManipulatorKind, Node, NodeId, NodeOp, UnaryFsmOp, Wire};
use sc_rng::SourceSpec;
use std::fmt;

/// Errors raised while building, compiling, or executing a graph.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph contains a dependency cycle through the given node.
    Cycle {
        /// A node on the cycle.
        node: usize,
    },
    /// A wire references a node that does not exist in this graph.
    UnknownNode {
        /// The referenced node index.
        node: usize,
    },
    /// A wire references an output port the producing node does not have.
    BadPort {
        /// The producing node.
        node: usize,
        /// The invalid port.
        port: u8,
    },
    /// A node has the wrong number of input wires.
    BadArity {
        /// The node.
        node: usize,
        /// Inputs its operation requires.
        expected: usize,
        /// Inputs it actually has.
        got: usize,
    },
    /// Two sinks share the same output name.
    DuplicateSink {
        /// The duplicated name.
        name: String,
    },
    /// The graph has no nodes.
    EmptyGraph,
    /// A `Generate` node's value slot is outside the batch item's value list.
    ValueSlotOutOfRange {
        /// The requested slot.
        slot: usize,
        /// Number of values the batch item provided.
        provided: usize,
    },
    /// An `InputStream` node's slot is outside the batch item's stream list.
    StreamSlotOutOfRange {
        /// The requested slot.
        slot: usize,
        /// Number of streams the batch item provided.
        provided: usize,
    },
    /// A node received input streams of different lengths.
    Stream(
        /// The underlying bitstream error.
        sc_bitstream::Error,
    ),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle { node } => write!(f, "dependency cycle through node n{node}"),
            GraphError::UnknownNode { node } => write!(f, "wire references unknown node n{node}"),
            GraphError::BadPort { node, port } => {
                write!(f, "wire references missing port {port} of node n{node}")
            }
            GraphError::BadArity {
                node,
                expected,
                got,
            } => write!(f, "node n{node} expects {expected} inputs, has {got}"),
            GraphError::DuplicateSink { name } => write!(f, "duplicate sink name {name:?}"),
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::ValueSlotOutOfRange { slot, provided } => write!(
                f,
                "generate node reads value slot {slot} but the batch item has {provided} values"
            ),
            GraphError::StreamSlotOutOfRange { slot, provided } => write!(
                f,
                "input node reads stream slot {slot} but the batch item has {provided} streams"
            ),
            GraphError::Stream(e) => write!(f, "stream error during execution: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<sc_bitstream::Error> for GraphError {
    fn from(e: sc_bitstream::Error) -> Self {
        GraphError::Stream(e)
    }
}

/// A typed dataflow graph of stochastic-computing operations.
///
/// Nodes are added through builder methods that return the [`Wire`]s carrying
/// the node's output streams; wires are then fed to downstream builders.
/// Because wires can only name already-inserted nodes, builder-constructed
/// graphs are acyclic by construction — [`Graph::rewire`] is the only way to
/// create a cycle, and [`Graph::compile`] rejects it.
///
/// # Example
///
/// ```
/// use sc_graph::{Graph, BinaryOp, Executor, PlannerOptions, BatchInput};
/// use sc_rng::SourceSpec;
///
/// let mut g = Graph::new();
/// let x = g.generate(0, SourceSpec::Sobol { dimension: 1 });
/// let y = g.generate(1, SourceSpec::Halton { base: 3, offset: 0 });
/// let z = g.binary(BinaryOp::CaAdd, x, y);
/// g.sink_value("sum", z);
///
/// let plan = g.compile(&PlannerOptions::default())?;
/// let out = Executor::new(256).run(&plan, &BatchInput::with_values(vec![0.5, 0.25]))?;
/// assert!((out.value("sum").unwrap() - 0.375).abs() < 0.02);
/// # Ok::<(), sc_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Iterates over `(id, node)` pairs in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Low-level node insertion shared by the typed builders.
    ///
    /// # Panics
    ///
    /// Panics if an input wire does not belong to this graph or the input
    /// count does not match the operation's arity — a structural programming
    /// error, not a data error.
    fn add(&mut self, op: NodeOp, inputs: Vec<Wire>) -> NodeId {
        for wire in &inputs {
            assert!(
                wire.node.0 < self.nodes.len(),
                "wire {wire} does not belong to this graph"
            );
            let ports = self.nodes[wire.node.0].op.output_ports();
            assert!(
                (wire.port as usize) < ports,
                "wire {wire} names a missing output port (node has {ports})"
            );
        }
        if let Some(expected) = op.input_arity() {
            assert_eq!(
                inputs.len(),
                expected,
                "{} expects {expected} inputs, got {}",
                op.label(),
                inputs.len()
            );
        } else {
            assert!(
                !inputs.is_empty(),
                "{} needs at least one input",
                op.label()
            );
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { op, inputs });
        id
    }

    fn out(&self, id: NodeId, port: u8) -> Wire {
        Wire { node: id, port }
    }

    /// Adds a stream input fed from `BatchInput::streams[slot]`.
    pub fn input_stream(&mut self, slot: usize) -> Wire {
        let id = self.add(NodeOp::InputStream { slot }, Vec::new());
        self.out(id, 0)
    }

    /// Adds a D/S converter generating a stream from `BatchInput::values[slot]`.
    pub fn generate(&mut self, slot: usize, source: SourceSpec) -> Wire {
        self.generate_skipped(slot, source, 0)
    }

    /// Like [`Graph::generate`], with the source advanced by `skip` samples
    /// first (for sources logically shared with earlier consumers).
    pub fn generate_skipped(&mut self, slot: usize, source: SourceSpec, skip: u64) -> Wire {
        let id = self.add(NodeOp::Generate { slot, source, skip }, Vec::new());
        self.out(id, 0)
    }

    /// Adds a D/S converter generating a constant-probability stream.
    pub fn constant(&mut self, probability: f64, source: SourceSpec) -> Wire {
        let id = self.add(
            NodeOp::ConstStream {
                probability,
                source,
                skip: 0,
            },
            Vec::new(),
        );
        self.out(id, 0)
    }

    /// Adds a correlation manipulator over a stream pair; returns the
    /// manipulated `(x, y)` pair.
    pub fn manipulate(&mut self, kind: ManipulatorKind, x: Wire, y: Wire) -> (Wire, Wire) {
        let id = self.add(NodeOp::Manipulate(kind), vec![x, y]);
        (self.out(id, 0), self.out(id, 1))
    }

    /// Adds a regeneration unit (S/D + D/S from `source`) over a stream.
    pub fn regenerate(&mut self, source: SourceSpec, x: Wire) -> Wire {
        self.regenerate_skipped(source, 0, x)
    }

    /// Like [`Graph::regenerate`], with the source advanced by `skip` samples.
    pub fn regenerate_skipped(&mut self, source: SourceSpec, skip: u64, x: Wire) -> Wire {
        let id = self.add(NodeOp::Regenerate { source, skip }, vec![x]);
        self.out(id, 0)
    }

    /// Adds a NOT gate (`1 − pX`).
    pub fn not(&mut self, x: Wire) -> Wire {
        let id = self.add(NodeOp::Not, vec![x]);
        self.out(id, 0)
    }

    /// Adds a binary arithmetic operator.
    pub fn binary(&mut self, op: BinaryOp, x: Wire, y: Wire) -> Wire {
        let id = self.add(NodeOp::Binary(op), vec![x, y]);
        self.out(id, 0)
    }

    /// Adds a saturating-counter FSM activation over a (bipolar) stream.
    ///
    /// # Panics
    ///
    /// Panics if the FSM state count is outside the ranges the `sc_arith`
    /// implementations support (`stanh` half-states `1..=2048`, `slinear`
    /// states `2..=4096`) — a structural programming error caught at build
    /// time instead of mid-execution.
    pub fn unary_fsm(&mut self, op: UnaryFsmOp, x: Wire) -> Wire {
        match op {
            UnaryFsmOp::Stanh { half_states } => assert!(
                (1..=2048).contains(&half_states),
                "stanh state count {half_states} outside supported range 1..=2048"
            ),
            UnaryFsmOp::Slinear { states } => assert!(
                (2..=4096).contains(&states),
                "slinear state count {states} outside supported range 2..=4096"
            ),
        }
        let id = self.add(NodeOp::UnaryFsm(op), vec![x]);
        self.out(id, 0)
    }

    /// Adds a stochastic `tanh`-like activation (`2·half_states`-state FSM).
    ///
    /// # Panics
    ///
    /// Panics if `half_states` is outside `1..=2048` (see
    /// [`Graph::unary_fsm`]).
    pub fn stanh(&mut self, half_states: u32, x: Wire) -> Wire {
        self.unary_fsm(UnaryFsmOp::Stanh { half_states }, x)
    }

    /// Adds a stochastic clamped linear gain (`states`-state FSM).
    ///
    /// # Panics
    ///
    /// Panics if `states` is outside `2..=4096` (see [`Graph::unary_fsm`]).
    pub fn slinear(&mut self, states: u32, x: Wire) -> Wire {
        self.unary_fsm(UnaryFsmOp::Slinear { states }, x)
    }

    /// Adds a feedback SC divider (`pZ = min(1, pX / pY)`) with the default
    /// 6-bit integration counter.
    pub fn divide(&mut self, x: Wire, y: Wire, source: SourceSpec) -> Wire {
        self.divide_skipped(x, y, source, 0, 6)
    }

    /// Like [`Graph::divide`], with the comparison source advanced by `skip`
    /// samples first and an explicit integration-counter width.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is outside the `1..=20` range the
    /// `sc_arith` divider supports.
    pub fn divide_skipped(
        &mut self,
        x: Wire,
        y: Wire,
        source: SourceSpec,
        skip: u64,
        counter_bits: u32,
    ) -> Wire {
        assert!(
            (1..=20).contains(&counter_bits),
            "divider counter width {counter_bits} outside supported range 1..=20"
        );
        let id = self.add(
            NodeOp::Divide {
                source,
                skip,
                counter_bits,
            },
            vec![x, y],
        );
        self.out(id, 0)
    }

    /// Adds a MUX scaled adder with a dedicated select source.
    pub fn mux_add(&mut self, x: Wire, y: Wire, select: SourceSpec) -> Wire {
        self.mux_add_skipped(x, y, select, 0)
    }

    /// Like [`Graph::mux_add`], with the select source advanced by `skip`
    /// samples first.
    pub fn mux_add_skipped(&mut self, x: Wire, y: Wire, select: SourceSpec, skip: u64) -> Wire {
        let id = self.add(NodeOp::MuxAdd { select, skip }, vec![x, y]);
        self.out(id, 0)
    }

    /// Adds a weighted multiplexer tree over `inputs` (one weight per input).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `weights` differ in length or are empty.
    pub fn weighted_mux(&mut self, inputs: &[Wire], weights: &[f64], select: SourceSpec) -> Wire {
        self.weighted_mux_skipped(inputs, weights, select, 0)
    }

    /// Like [`Graph::weighted_mux`], with the select source advanced by
    /// `skip` samples first.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `weights` differ in length or are empty.
    pub fn weighted_mux_skipped(
        &mut self,
        inputs: &[Wire],
        weights: &[f64],
        select: SourceSpec,
        skip: u64,
    ) -> Wire {
        assert!(!inputs.is_empty(), "weighted mux needs at least one input");
        assert_eq!(
            inputs.len(),
            weights.len(),
            "weighted mux needs one weight per input"
        );
        let id = self.add(
            NodeOp::WeightedMux {
                weights: weights.to_vec(),
                select,
                skip,
            },
            inputs.to_vec(),
        );
        self.out(id, 0)
    }

    /// Adds a sink exposing the raw stream under `name`.
    pub fn sink_stream(&mut self, name: impl Into<String>, x: Wire) -> NodeId {
        self.add(NodeOp::SinkStream { name: name.into() }, vec![x])
    }

    /// Adds an S/D sink exposing the stream's unipolar value under `name`.
    pub fn sink_value(&mut self, name: impl Into<String>, x: Wire) -> NodeId {
        self.add(NodeOp::SinkValue { name: name.into() }, vec![x])
    }

    /// Adds an S/D sink exposing the stream's 1s count under `name`.
    pub fn sink_count(&mut self, name: impl Into<String>, x: Wire) -> NodeId {
        self.add(NodeOp::SinkCount { name: name.into() }, vec![x])
    }

    /// Adds an APC sink exposing the unscaled sum of the inputs' values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn sink_sum(&mut self, name: impl Into<String>, inputs: &[Wire]) -> NodeId {
        self.add(NodeOp::SinkSum { name: name.into() }, inputs.to_vec())
    }

    /// Adds an SCC probe over a stream pair.
    pub fn scc_probe(&mut self, name: impl Into<String>, x: Wire, y: Wire) -> NodeId {
        self.add(NodeOp::SccProbe { name: name.into() }, vec![x, y])
    }

    /// Replaces input `input` of `node` with `wire`.
    ///
    /// This is the only builder operation that can produce a forward
    /// reference, and therefore a cycle; [`Graph::compile`] checks for cycles.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`], [`GraphError::BadPort`] or
    /// [`GraphError::BadArity`] for out-of-range arguments.
    pub fn rewire(&mut self, node: NodeId, input: usize, wire: Wire) -> Result<(), GraphError> {
        if node.0 >= self.nodes.len() {
            return Err(GraphError::UnknownNode { node: node.0 });
        }
        if wire.node.0 >= self.nodes.len() {
            return Err(GraphError::UnknownNode { node: wire.node.0 });
        }
        if (wire.port as usize) >= self.nodes[wire.node.0].op.output_ports() {
            return Err(GraphError::BadPort {
                node: wire.node.0,
                port: wire.port,
            });
        }
        let arity = self.nodes[node.0].inputs.len();
        if input >= arity {
            return Err(GraphError::BadArity {
                node: node.0,
                expected: arity,
                got: input + 1,
            });
        }
        self.nodes[node.0].inputs[input] = wire;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_reference_created_nodes() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.generate(0, SourceSpec::Sobol { dimension: 1 });
        let (mx, my) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
        let z = g.binary(BinaryOp::OrMax, mx, my);
        let s = g.sink_value("z", z);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.node(s).inputs, vec![z]);
        assert_eq!(g.node(z.node()).inputs, vec![mx, my]);
        assert_eq!(g.nodes().count(), 5);
    }

    #[test]
    #[should_panic(expected = "missing output port")]
    fn fabricated_port_panics() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let bad = Wire {
            node: x.node(),
            port: 1,
        };
        let _ = g.not(bad);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn zero_counter_divider_panics_at_build_time() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let _ = g.divide_skipped(x, y, SourceSpec::Sobol { dimension: 1 }, 0, 0);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn zero_state_stanh_panics_at_build_time() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let _ = g.stanh(0, x);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn one_state_slinear_panics_at_build_time() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let _ = g.slinear(1, x);
    }

    #[test]
    fn rewire_validates() {
        let mut g = Graph::new();
        let x = g.input_stream(0);
        let y = g.input_stream(1);
        let z = g.binary(BinaryOp::CaAdd, x, y);
        assert!(g.rewire(z.node(), 1, x).is_ok());
        assert_eq!(g.node(z.node()).inputs, vec![x, x]);
        assert!(matches!(
            g.rewire(NodeId(99), 0, x),
            Err(GraphError::UnknownNode { .. })
        ));
        assert!(matches!(
            g.rewire(z.node(), 5, x),
            Err(GraphError::BadArity { .. })
        ));
        let bad = Wire {
            node: z.node(),
            port: 3,
        };
        assert!(matches!(
            g.rewire(z.node(), 0, bad),
            Err(GraphError::BadPort { .. })
        ));
    }

    #[test]
    fn error_display() {
        let errors: Vec<GraphError> = vec![
            GraphError::Cycle { node: 1 },
            GraphError::UnknownNode { node: 2 },
            GraphError::BadPort { node: 3, port: 1 },
            GraphError::BadArity {
                node: 4,
                expected: 2,
                got: 1,
            },
            GraphError::DuplicateSink {
                name: "z".to_string(),
            },
            GraphError::EmptyGraph,
            GraphError::ValueSlotOutOfRange {
                slot: 1,
                provided: 0,
            },
            GraphError::StreamSlotOutOfRange {
                slot: 1,
                provided: 0,
            },
            GraphError::Stream(sc_bitstream::Error::EmptyStream),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
