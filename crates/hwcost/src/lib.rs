//! # sc-hwcost
//!
//! Gate-level area / power / energy cost model for stochastic-computing
//! circuit designs.
//!
//! The paper evaluates its designs with a TSMC 65 nm standard-cell flow
//! (Synopsys Design Compiler, IC Compiler, PrimeTime). That flow is not
//! reproducible in a pure-software environment, so this crate substitutes an
//! abstract standard-cell library: every design is described as a
//! [`Netlist`] of [`Primitive`]s, each with a fixed area (µm²) and a dynamic
//! power coefficient (µW at a reference switching activity), calibrated so the
//! *relative* costs reported in Table III / Table IV are preserved — e.g. a
//! 2-input OR gate occupies 2.16 µm² and burns 0.26 µW, exactly the paper's
//! "OR Max." row, and energy is integrated over `N` cycles of the calibrated
//! effective cycle time ([`CYCLE_TIME_NS`]) so that the OR maximum costs
//! ≈165 pJ per 256-cycle operation, again matching Table III.
//!
//! The absolute numbers are calibrated estimates, not silicon measurements;
//! every experiment that consumes them reports ratios.
//!
//! # Example
//!
//! ```
//! use sc_hwcost::{characterize, CostReport};
//!
//! let or_max = characterize::or_max();
//! let ca_max = characterize::correlation_agnostic_max();
//! let sync_max = characterize::synchronizer_max(1);
//!
//! // Table III shape: the synchronizer-based max sits between the bare OR
//! // gate and the correlation-agnostic design, ~5x smaller than CA max.
//! assert!(or_max.area_um2 < sync_max.area_um2);
//! assert!(sync_max.area_um2 * 4.0 < ca_max.area_um2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod gates;
pub mod netlist;
pub mod report;

pub use gates::Primitive;
pub use netlist::Netlist;
pub use report::{CostReport, RelativeCost};

/// Effective per-cycle time used to convert power to energy, in nanoseconds.
///
/// This is a pure calibration constant, back-computed from the paper's own
/// Table III columns (165 pJ ÷ 0.26 µW ÷ 256 cycles ≈ 2.48 µs per cycle): the
/// paper's per-operation energy evidently folds in system-level time and
/// overheads beyond a raw gate-delay clock. Using the same effective value
/// keeps our energy column on the paper's scale while leaving every ratio —
/// which is what the conclusions rest on — independent of this constant.
pub const CYCLE_TIME_NS: f64 = 2480.0;

/// The default switching-activity factor assumed when a design is
/// characterised without a simulation-derived activity estimate.
pub const DEFAULT_ACTIVITY: f64 = 0.5;
