//! The abstract standard-cell / macro library.

use std::fmt;

/// A primitive cell or small macro with fixed area and power characteristics.
///
/// Areas are in µm² and power coefficients in µW at the reference switching
/// activity ([`crate::DEFAULT_ACTIVITY`]); both are calibrated to a 65 nm-class
/// library so that the paper's Table III baselines reproduce (a 2-input gate
/// is 2.16 µm² / ~0.26 µW).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Primitive {
    /// Inverter.
    Inverter,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input XOR.
    Xor2,
    /// Two-input XNOR.
    Xnor2,
    /// Two-to-one multiplexer.
    Mux2,
    /// D flip-flop.
    DFlipFlop,
    /// One-bit full adder.
    FullAdder,
    /// `n`-bit magnitude comparator.
    Comparator(u32),
    /// `n`-bit up (or up/down) counter, including its register.
    Counter(u32),
    /// `n`-bit register (flip-flops only).
    Register(u32),
    /// `n`-bit linear feedback shift register (register + feedback taps).
    Lfsr(u32),
    /// `n`-bit low-discrepancy sequence generator (counter + digit-reversal network).
    LowDiscrepancyGenerator(u32),
    /// `n`-bit random-access bit memory with read/write addressing (per-bit cost).
    BitMemory(u32),
}

impl Primitive {
    /// Cell area in µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        match *self {
            Primitive::Inverter => 0.72,
            Primitive::Nand2 | Primitive::Nor2 => 1.08,
            Primitive::And2 | Primitive::Or2 => 2.16,
            Primitive::Xor2 | Primitive::Xnor2 => 2.88,
            Primitive::Mux2 => 2.88,
            Primitive::DFlipFlop => 5.76,
            Primitive::FullAdder => 6.48,
            Primitive::Comparator(bits) => 3.0 * f64::from(bits),
            Primitive::Counter(bits) => 9.0 * f64::from(bits),
            Primitive::Register(bits) => 5.76 * f64::from(bits),
            Primitive::Lfsr(bits) => 7.0 * f64::from(bits),
            Primitive::LowDiscrepancyGenerator(bits) => 10.0 * f64::from(bits),
            Primitive::BitMemory(bits) => 2.5 * f64::from(bits),
        }
    }

    /// Dynamic power in µW at the reference switching activity.
    #[must_use]
    pub fn power_uw(&self) -> f64 {
        match *self {
            Primitive::Inverter => 0.04,
            Primitive::Nand2 | Primitive::Nor2 => 0.08,
            Primitive::And2 => 0.25,
            Primitive::Or2 => 0.26,
            Primitive::Xor2 | Primitive::Xnor2 => 0.30,
            Primitive::Mux2 => 0.30,
            Primitive::DFlipFlop => 0.80,
            Primitive::FullAdder => 0.90,
            Primitive::Comparator(bits) => 0.45 * f64::from(bits),
            Primitive::Counter(bits) => 1.60 * f64::from(bits),
            Primitive::Register(bits) => 0.80 * f64::from(bits),
            Primitive::Lfsr(bits) => 1.00 * f64::from(bits),
            Primitive::LowDiscrepancyGenerator(bits) => 1.30 * f64::from(bits),
            Primitive::BitMemory(bits) => 0.20 * f64::from(bits),
        }
    }

    /// Power scaled to an explicit switching activity in `[0, 1]`.
    ///
    /// Sequential cells (flip-flops, registers, counters, generators) burn
    /// clock power regardless of data activity, so only half of their power is
    /// scaled by the activity factor.
    #[must_use]
    pub fn power_uw_at(&self, activity: f64) -> f64 {
        let activity = activity.clamp(0.0, 1.0);
        let ratio = activity / crate::DEFAULT_ACTIVITY;
        if self.is_sequential() {
            self.power_uw() * (0.5 + 0.5 * ratio)
        } else {
            self.power_uw() * ratio
        }
    }

    /// Whether the primitive contains storage (and therefore a clock load).
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            Primitive::DFlipFlop
                | Primitive::Counter(_)
                | Primitive::Register(_)
                | Primitive::Lfsr(_)
                | Primitive::LowDiscrepancyGenerator(_)
                | Primitive::BitMemory(_)
        )
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Primitive::Inverter => write!(f, "INV"),
            Primitive::Nand2 => write!(f, "NAND2"),
            Primitive::Nor2 => write!(f, "NOR2"),
            Primitive::And2 => write!(f, "AND2"),
            Primitive::Or2 => write!(f, "OR2"),
            Primitive::Xor2 => write!(f, "XOR2"),
            Primitive::Xnor2 => write!(f, "XNOR2"),
            Primitive::Mux2 => write!(f, "MUX2"),
            Primitive::DFlipFlop => write!(f, "DFF"),
            Primitive::FullAdder => write!(f, "FA"),
            Primitive::Comparator(b) => write!(f, "CMP{b}"),
            Primitive::Counter(b) => write!(f, "CNT{b}"),
            Primitive::Register(b) => write!(f, "REG{b}"),
            Primitive::Lfsr(b) => write!(f, "LFSR{b}"),
            Primitive::LowDiscrepancyGenerator(b) => write!(f, "LDGEN{b}"),
            Primitive::BitMemory(b) => write!(f, "MEM{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_gate_matches_paper_calibration() {
        assert!((Primitive::Or2.area_um2() - 2.16).abs() < 1e-12);
        assert!((Primitive::Or2.power_uw() - 0.26).abs() < 1e-12);
        assert!((Primitive::And2.power_uw() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn areas_and_powers_are_positive_and_ordered() {
        let gates = [
            Primitive::Inverter,
            Primitive::Nand2,
            Primitive::And2,
            Primitive::Xor2,
            Primitive::Mux2,
            Primitive::DFlipFlop,
            Primitive::FullAdder,
            Primitive::Comparator(8),
            Primitive::Counter(8),
            Primitive::Register(8),
            Primitive::Lfsr(16),
            Primitive::LowDiscrepancyGenerator(8),
            Primitive::BitMemory(4),
        ];
        for g in gates {
            assert!(g.area_um2() > 0.0, "{g}");
            assert!(g.power_uw() > 0.0, "{g}");
        }
        assert!(Primitive::Inverter.area_um2() < Primitive::Nand2.area_um2());
        assert!(Primitive::Nand2.area_um2() < Primitive::And2.area_um2());
        assert!(Primitive::DFlipFlop.area_um2() > Primitive::Xor2.area_um2());
    }

    #[test]
    fn macro_costs_scale_with_width() {
        assert!(Primitive::Counter(16).area_um2() > Primitive::Counter(8).area_um2());
        assert!(Primitive::Comparator(16).power_uw() > Primitive::Comparator(8).power_uw());
        assert_eq!(
            Primitive::Register(8).area_um2(),
            8.0 * Primitive::DFlipFlop.area_um2()
        );
    }

    #[test]
    fn activity_scaling() {
        // Combinational power scales linearly with activity.
        let or = Primitive::Or2;
        assert!((or.power_uw_at(0.5) - or.power_uw()).abs() < 1e-12);
        assert!((or.power_uw_at(0.25) - or.power_uw() * 0.5).abs() < 1e-12);
        assert_eq!(or.power_uw_at(0.0), 0.0);
        // Sequential cells keep burning clock power at zero activity.
        let dff = Primitive::DFlipFlop;
        assert!(dff.power_uw_at(0.0) > 0.0);
        assert!(dff.power_uw_at(1.0) > dff.power_uw_at(0.0));
        // Out-of-range activities are clamped.
        assert_eq!(or.power_uw_at(2.0), or.power_uw_at(1.0));
    }

    #[test]
    fn sequential_classification() {
        assert!(Primitive::DFlipFlop.is_sequential());
        assert!(Primitive::Counter(4).is_sequential());
        assert!(!Primitive::Or2.is_sequential());
        assert!(!Primitive::FullAdder.is_sequential());
    }

    #[test]
    fn display_names() {
        assert_eq!(Primitive::Or2.to_string(), "OR2");
        assert_eq!(Primitive::Counter(8).to_string(), "CNT8");
        assert_eq!(Primitive::Lfsr(16).to_string(), "LFSR16");
    }
}
