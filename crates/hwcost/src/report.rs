//! Cost reports and relative comparisons.

use std::fmt;

/// Area / power / energy summary of one design for one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Design name.
    pub design: String,
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Power in µW at the reference activity.
    pub power_uw: f64,
    /// Energy in pJ for the characterised operation length.
    pub energy_pj: f64,
}

impl CostReport {
    /// Compares this design against a baseline, returning the ratios
    /// `baseline / self` for area, power, and energy — i.e. how many times
    /// smaller / lower-power / more energy-efficient this design is.
    #[must_use]
    pub fn relative_to(&self, baseline: &CostReport) -> RelativeCost {
        RelativeCost {
            design: self.design.clone(),
            baseline: baseline.design.clone(),
            area_ratio: baseline.area_um2 / self.area_um2,
            power_ratio: baseline.power_uw / self.power_uw,
            energy_ratio: baseline.energy_pj / self.energy_pj,
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>10.2} µm² {:>10.2} µW {:>12.0} pJ",
            self.design, self.area_um2, self.power_uw, self.energy_pj
        )
    }
}

/// How many times smaller / lower-power / more energy-efficient a design is
/// than a baseline (values above 1 favour the design).
#[derive(Debug, Clone, PartialEq)]
pub struct RelativeCost {
    /// Design being compared.
    pub design: String,
    /// Baseline design.
    pub baseline: String,
    /// `baseline_area / design_area`.
    pub area_ratio: f64,
    /// `baseline_power / design_power`.
    pub power_ratio: f64,
    /// `baseline_energy / design_energy`.
    pub energy_ratio: f64,
}

impl fmt::Display for RelativeCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: {:.1}x smaller, {:.1}x lower power, {:.1}x more energy efficient",
            self.design, self.baseline, self.area_ratio, self.power_ratio, self.energy_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str, area: f64, power: f64, energy: f64) -> CostReport {
        CostReport {
            design: name.to_string(),
            area_um2: area,
            power_uw: power,
            energy_pj: energy,
        }
    }

    #[test]
    fn relative_ratios() {
        let small = report("sync-max", 48.6, 4.89, 3130.0);
        let big = report("ca-max", 252.36, 56.7, 36288.0);
        let rel = small.relative_to(&big);
        assert!((rel.area_ratio - 5.19).abs() < 0.05);
        assert!((rel.energy_ratio - 11.59).abs() < 0.1);
        assert!(rel.power_ratio > 10.0);
        assert!(rel.to_string().contains("sync-max"));
    }

    #[test]
    fn display_contains_units() {
        let r = report("or-max", 2.16, 0.26, 165.0);
        let s = r.to_string();
        assert!(s.contains("or-max"));
        assert!(s.contains("µm²"));
        assert!(s.contains("µW"));
        assert!(s.contains("pJ"));
    }
}
