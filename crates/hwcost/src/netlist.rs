//! Netlists: named bags of primitives that can be costed and composed.

use crate::gates::Primitive;
use crate::report::CostReport;
use std::collections::BTreeMap;
use std::fmt;

/// A design described as a multiset of primitives.
///
/// Netlists compose: a tile-level accelerator netlist is the sum of its
/// kernel netlists plus converters and generators, scaled by instance counts.
///
/// # Example
///
/// ```
/// use sc_hwcost::{Netlist, Primitive};
///
/// let mut sc_multiplier = Netlist::new("sc-multiplier");
/// sc_multiplier.add(Primitive::And2, 1);
/// assert_eq!(sc_multiplier.area_um2(), 2.16);
///
/// // A 3x3 multiplier array.
/// let array = sc_multiplier.scaled("multiplier-array", 9);
/// assert!((array.area_um2() - 9.0 * 2.16).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    cells: BTreeMap<String, (Primitive, u64)>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cells: BTreeMap::new(),
        }
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `count` instances of a primitive.
    pub fn add(&mut self, primitive: Primitive, count: u64) {
        if count == 0 {
            return;
        }
        let entry = self
            .cells
            .entry(primitive.to_string())
            .or_insert((primitive, 0));
        entry.1 += count;
    }

    /// Builder-style variant of [`Netlist::add`].
    #[must_use]
    pub fn with(mut self, primitive: Primitive, count: u64) -> Self {
        self.add(primitive, count);
        self
    }

    /// Merges every cell of `other` into this netlist (`other` is unchanged).
    pub fn merge(&mut self, other: &Netlist) {
        for &(primitive, count) in other.cells.values() {
            self.add(primitive, count);
        }
    }

    /// Returns a new netlist containing `copies` instances of this design.
    #[must_use]
    pub fn scaled(&self, name: impl Into<String>, copies: u64) -> Netlist {
        let mut out = Netlist::new(name);
        for &(primitive, count) in self.cells.values() {
            out.add(primitive, count * copies);
        }
        out
    }

    /// Total number of primitive instances.
    #[must_use]
    pub fn cell_count(&self) -> u64 {
        self.cells.values().map(|&(_, c)| c).sum()
    }

    /// Total area in µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.cells
            .values()
            .map(|&(p, c)| p.area_um2() * c as f64)
            .sum()
    }

    /// Total power in µW at the reference switching activity.
    #[must_use]
    pub fn power_uw(&self) -> f64 {
        self.power_uw_at(crate::DEFAULT_ACTIVITY)
    }

    /// Total power in µW at an explicit switching activity.
    #[must_use]
    pub fn power_uw_at(&self, activity: f64) -> f64 {
        self.cells
            .values()
            .map(|&(p, c)| p.power_uw_at(activity) * c as f64)
            .sum()
    }

    /// Energy in pJ for an operation lasting `cycles` clock cycles at the
    /// reference activity and effective cycle time ([`crate::CYCLE_TIME_NS`]).
    #[must_use]
    pub fn energy_pj(&self, cycles: u64) -> f64 {
        self.energy_pj_at(cycles, crate::DEFAULT_ACTIVITY)
    }

    /// Energy in pJ for `cycles` clock cycles at an explicit activity.
    #[must_use]
    pub fn energy_pj_at(&self, cycles: u64, activity: f64) -> f64 {
        // µW × ns = femtojoules; divide by 1000 for picojoules.
        self.power_uw_at(activity) * cycles as f64 * crate::CYCLE_TIME_NS / 1000.0
    }

    /// Summarises the netlist as a [`CostReport`] for an operation of
    /// `cycles` clock cycles.
    #[must_use]
    pub fn report(&self, cycles: u64) -> CostReport {
        CostReport {
            design: self.name.clone(),
            area_um2: self.area_um2(),
            power_uw: self.power_uw(),
            energy_pj: self.energy_pj(cycles),
        }
    }

    /// Iterates over `(primitive, count)` pairs in a stable order.
    pub fn cells(&self) -> impl Iterator<Item = (Primitive, u64)> + '_ {
        self.cells.values().copied()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.name)?;
        let mut first = true;
        for (p, c) in self.cells() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}x{p}")?;
            first = false;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn or_gate_energy_matches_table3() {
        // One OR gate over 256 cycles ≈ 165 pJ (Table III "OR Max.").
        let netlist = Netlist::new("or-max").with(Primitive::Or2, 1);
        let report = netlist.report(256);
        assert!((report.area_um2 - 2.16).abs() < 1e-9);
        assert!((report.power_uw - 0.26).abs() < 1e-9);
        assert!(
            (report.energy_pj - 165.0).abs() < 2.0,
            "energy {}",
            report.energy_pj
        );
    }

    #[test]
    fn add_merge_and_scale() {
        let mut a = Netlist::new("a");
        a.add(Primitive::And2, 2);
        a.add(Primitive::DFlipFlop, 1);
        a.add(Primitive::And2, 1);
        assert_eq!(a.cell_count(), 4);

        let b = Netlist::new("b").with(Primitive::Or2, 3);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.cell_count(), 7);
        assert!((merged.area_um2() - (3.0 * 2.16 + 5.76 + 3.0 * 2.16)).abs() < 1e-9);

        let scaled = a.scaled("a-x10", 10);
        assert_eq!(scaled.cell_count(), 40);
        assert!((scaled.area_um2() - 10.0 * a.area_um2()).abs() < 1e-9);
        assert_eq!(scaled.name(), "a-x10");
    }

    #[test]
    fn zero_count_is_ignored() {
        let mut n = Netlist::new("n");
        n.add(Primitive::Or2, 0);
        assert_eq!(n.cell_count(), 0);
        assert_eq!(n.area_um2(), 0.0);
        assert_eq!(n.power_uw(), 0.0);
    }

    #[test]
    fn power_scales_with_activity() {
        let n = Netlist::new("n")
            .with(Primitive::Or2, 4)
            .with(Primitive::DFlipFlop, 2);
        assert!(n.power_uw_at(1.0) > n.power_uw_at(0.5));
        assert!(n.power_uw_at(0.1) < n.power_uw());
        assert!(n.energy_pj_at(256, 1.0) > n.energy_pj(256));
    }

    #[test]
    fn display_lists_cells() {
        let n = Netlist::new("demo")
            .with(Primitive::Or2, 2)
            .with(Primitive::DFlipFlop, 1);
        let s = n.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("2xOR2"));
        assert!(s.contains("1xDFF"));
    }

    proptest! {
        #[test]
        fn prop_area_additive_under_merge(c1 in 0u64..50, c2 in 0u64..50, c3 in 0u64..50) {
            let a = Netlist::new("a").with(Primitive::And2, c1).with(Primitive::DFlipFlop, c2);
            let b = Netlist::new("b").with(Primitive::Xor2, c3);
            let mut m = a.clone();
            m.merge(&b);
            prop_assert!((m.area_um2() - (a.area_um2() + b.area_um2())).abs() < 1e-9);
            prop_assert!((m.power_uw() - (a.power_uw() + b.power_uw())).abs() < 1e-9);
        }

        #[test]
        fn prop_energy_linear_in_cycles(cycles in 1u64..10_000) {
            let n = Netlist::new("n").with(Primitive::Or2, 1);
            let e1 = n.energy_pj(cycles);
            let e2 = n.energy_pj(cycles * 2);
            prop_assert!((e2 - 2.0 * e1).abs() < 1e-6);
        }
    }
}
