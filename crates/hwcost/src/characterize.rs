//! Netlists and cost reports for every design evaluated in the paper.
//!
//! Each function returns either a [`Netlist`] (when the design is composed
//! into larger systems, e.g. by the image-processing accelerator) or a
//! [`CostReport`] for the standard 256-cycle operation of Table III.

use crate::gates::Primitive;
use crate::netlist::Netlist;
use crate::report::CostReport;

/// Stream length used for the per-operation energy numbers of Table III.
pub const TABLE3_CYCLES: u64 = 256;

/// Number of FSM state bits needed to hold `2·depth + 1` synchronizer states.
fn fsm_state_bits(depth: u32) -> u32 {
    let states = 2 * depth + 1;
    32 - (states - 1).leading_zeros()
}

/// Netlist of a save-depth-`depth` synchronizer FSM (Fig. 3a).
#[must_use]
pub fn synchronizer(depth: u32) -> Netlist {
    let s = fsm_state_bits(depth).max(2);
    Netlist::new(format!("synchronizer-d{depth}"))
        .with(Primitive::DFlipFlop, u64::from(s))
        .with(Primitive::Nand2, u64::from(10 * s + 4))
        .with(Primitive::Inverter, u64::from(2 * s))
        .with(Primitive::Or2, 2)
}

/// Netlist of a save-depth-`depth` desynchronizer FSM (Fig. 3b).
#[must_use]
pub fn desynchronizer(depth: u32) -> Netlist {
    let s = fsm_state_bits(depth).max(2);
    Netlist::new(format!("desynchronizer-d{depth}"))
        .with(Primitive::DFlipFlop, u64::from(s))
        .with(Primitive::Nand2, u64::from(10 * s + 6))
        .with(Primitive::Inverter, u64::from(2 * s))
        .with(Primitive::Or2, 2)
}

/// Netlist of one shuffle buffer of the given depth (Fig. 4b), excluding the
/// auxiliary RNG (which is typically shared and amortised).
#[must_use]
pub fn shuffle_buffer(depth: u32) -> Netlist {
    Netlist::new(format!("shuffle-buffer-d{depth}"))
        .with(Primitive::BitMemory(depth), 1)
        .with(Primitive::Nand2, u64::from(depth))
        .with(Primitive::Mux2, u64::from(depth.saturating_sub(1).max(1)))
}

/// Netlist of a decorrelator (two shuffle buffers, Fig. 4a).
#[must_use]
pub fn decorrelator(depth: u32) -> Netlist {
    let mut n = Netlist::new(format!("decorrelator-d{depth}"));
    n.merge(&shuffle_buffer(depth));
    n.merge(&shuffle_buffer(depth));
    n
}

/// Netlist of a `k`-stage isolator chain (one flip-flop per stage).
#[must_use]
pub fn isolator(stages: u32) -> Netlist {
    Netlist::new(format!("isolator-k{stages}")).with(Primitive::DFlipFlop, u64::from(stages))
}

/// Netlist of a tracking forecast memory (per operand).
#[must_use]
pub fn tracking_forecast_memory() -> Netlist {
    Netlist::new("tfm")
        .with(Primitive::Register(8), 1)
        .with(Primitive::FullAdder, 4)
        .with(Primitive::Comparator(8), 1)
}

/// Netlist of the OR-gate maximum (Table III "OR Max.").
#[must_use]
pub fn or_max_netlist() -> Netlist {
    Netlist::new("or-max").with(Primitive::Or2, 1)
}

/// Netlist of the AND-gate minimum (Table III "AND Min.").
#[must_use]
pub fn and_min_netlist() -> Netlist {
    Netlist::new("and-min").with(Primitive::And2, 1)
}

/// Netlist of the synchronizer-based maximum (Fig. 5a).
#[must_use]
pub fn synchronizer_max_netlist(depth: u32) -> Netlist {
    let mut n = Netlist::new(format!("sync-max-d{depth}"));
    n.merge(&synchronizer(depth));
    n.add(Primitive::Or2, 1);
    n
}

/// Netlist of the synchronizer-based minimum (Fig. 5b).
#[must_use]
pub fn synchronizer_min_netlist(depth: u32) -> Netlist {
    let mut n = Netlist::new(format!("sync-min-d{depth}"));
    n.merge(&synchronizer(depth));
    n.add(Primitive::And2, 1);
    n
}

/// Netlist of the desynchronizer-based saturating adder (Fig. 5c).
#[must_use]
pub fn desynchronizer_saturating_adder_netlist(depth: u32) -> Netlist {
    let mut n = Netlist::new(format!("desync-satadd-d{depth}"));
    n.merge(&desynchronizer(depth));
    n.add(Primitive::Or2, 1);
    n
}

/// Netlist of the correlation-agnostic maximum of SC-DCNN (reference \[12\]):
/// two activity counters, a comparator, an output register and selection logic.
#[must_use]
pub fn correlation_agnostic_max_netlist() -> Netlist {
    Netlist::new("ca-max")
        .with(Primitive::Counter(8), 2)
        .with(Primitive::Comparator(8), 1)
        .with(Primitive::Register(8), 1)
        .with(Primitive::Nand2, 8)
        .with(Primitive::Mux2, 1)
}

/// Netlist of the MUX-based scaled adder (Fig. 2a), excluding the select RNG.
#[must_use]
pub fn mux_adder_netlist() -> Netlist {
    Netlist::new("mux-adder").with(Primitive::Mux2, 1)
}

/// Netlist of the correlation-agnostic adder of reference \[9\]
/// (parallel counter plus carry state).
#[must_use]
pub fn correlation_agnostic_adder_netlist() -> Netlist {
    Netlist::new("ca-adder")
        .with(Primitive::FullAdder, 1)
        .with(Primitive::Register(2), 1)
        .with(Primitive::Inverter, 2)
}

/// Netlist of the XOR subtractor (Fig. 2c).
#[must_use]
pub fn xor_subtract_netlist() -> Netlist {
    Netlist::new("xor-subtract").with(Primitive::Xor2, 1)
}

/// Netlist of an `bits`-bit stochastic-to-digital converter (Fig. 2f).
#[must_use]
pub fn sd_converter(bits: u32) -> Netlist {
    Netlist::new(format!("sd-converter-{bits}b")).with(Primitive::Counter(bits), 1)
}

/// Netlist of an `bits`-bit digital-to-stochastic converter (Fig. 2g),
/// excluding the RNG (counted separately so it can be shared).
#[must_use]
pub fn ds_converter(bits: u32) -> Netlist {
    Netlist::new(format!("ds-converter-{bits}b"))
        .with(Primitive::Comparator(bits), 1)
        .with(Primitive::Register(bits), 1)
}

/// Netlist of an `bits`-bit LFSR random number generator.
#[must_use]
pub fn lfsr_rng(bits: u32) -> Netlist {
    Netlist::new(format!("lfsr-{bits}b")).with(Primitive::Lfsr(bits), 1)
}

/// Netlist of an `bits`-bit low-discrepancy sequence generator (VDC/Halton/Sobol).
#[must_use]
pub fn low_discrepancy_rng(bits: u32) -> Netlist {
    Netlist::new(format!("ld-gen-{bits}b")).with(Primitive::LowDiscrepancyGenerator(bits), 1)
}

/// Netlist of one regeneration unit: an S/D converter feeding a D/S converter
/// (§II.B), excluding the shared RNG.
#[must_use]
pub fn regeneration_unit(bits: u32) -> Netlist {
    let mut n = Netlist::new(format!("regeneration-{bits}b"));
    n.merge(&sd_converter(bits));
    n.merge(&ds_converter(bits));
    n
}

/// Netlist of one SC Gaussian-blur output kernel: a 3×3 weighted average
/// implemented as an 8-deep multiplexer tree (Alaghi et al., DAC 2013).
#[must_use]
pub fn gaussian_blur_kernel() -> Netlist {
    Netlist::new("gaussian-blur-kernel").with(Primitive::Mux2, 8)
}

/// Netlist of one SC Roberts-cross edge-detector output kernel: two XOR
/// subtractors and a MUX scaled adder.
#[must_use]
pub fn edge_detector_kernel() -> Netlist {
    Netlist::new("edge-detector-kernel")
        .with(Primitive::Xor2, 2)
        .with(Primitive::Mux2, 1)
}

/// Cost report of the OR maximum (Table III row 1).
#[must_use]
pub fn or_max() -> CostReport {
    or_max_netlist().report(TABLE3_CYCLES)
}

/// Cost report of the correlation-agnostic maximum (Table III row 2).
#[must_use]
pub fn correlation_agnostic_max() -> CostReport {
    correlation_agnostic_max_netlist().report(TABLE3_CYCLES)
}

/// Cost report of the synchronizer-based maximum (Table III row 3).
#[must_use]
pub fn synchronizer_max(depth: u32) -> CostReport {
    synchronizer_max_netlist(depth).report(TABLE3_CYCLES)
}

/// Cost report of the AND minimum (Table III row 4).
#[must_use]
pub fn and_min() -> CostReport {
    and_min_netlist().report(TABLE3_CYCLES)
}

/// Cost report of the synchronizer-based minimum (Table III row 5).
#[must_use]
pub fn synchronizer_min(depth: u32) -> CostReport {
    synchronizer_min_netlist(depth).report(TABLE3_CYCLES)
}

/// Cost report of the MUX adder (for the §II.B adder-overhead comparison).
#[must_use]
pub fn mux_adder() -> CostReport {
    mux_adder_netlist().report(TABLE3_CYCLES)
}

/// Cost report of the correlation-agnostic adder of reference \[9\].
#[must_use]
pub fn correlation_agnostic_adder() -> CostReport {
    correlation_agnostic_adder_netlist().report(TABLE3_CYCLES)
}

/// All five Table III hardware rows, in the paper's order.
#[must_use]
pub fn table3_reports(depth: u32) -> Vec<CostReport> {
    vec![
        or_max(),
        correlation_agnostic_max(),
        synchronizer_max(depth),
        and_min(),
        synchronizer_min(depth),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsm_state_bits_formula() {
        assert_eq!(fsm_state_bits(1), 2); // 3 states
        assert_eq!(fsm_state_bits(2), 3); // 5 states
        assert_eq!(fsm_state_bits(4), 4); // 9 states
        assert_eq!(fsm_state_bits(8), 5); // 17 states
    }

    #[test]
    fn or_max_matches_paper_row() {
        let r = or_max();
        assert!((r.area_um2 - 2.16).abs() < 1e-9);
        assert!((r.power_uw - 0.26).abs() < 1e-9);
        assert!((r.energy_pj - 165.0).abs() < 5.0);
    }

    #[test]
    fn and_min_matches_paper_row() {
        let r = and_min();
        assert!((r.area_um2 - 2.16).abs() < 1e-9);
        assert!((r.power_uw - 0.25).abs() < 1e-9);
        assert!((r.energy_pj - 158.0).abs() < 5.0);
    }

    #[test]
    fn table3_shape_sync_max_between_or_and_ca() {
        // The headline hardware claim: the synchronizer max is much bigger
        // than a bare OR gate but several times smaller and more energy
        // efficient than the correlation-agnostic max (paper: 5.2x / 11.6x).
        let or = or_max();
        let sync = synchronizer_max(1);
        let ca = correlation_agnostic_max();
        assert!(sync.area_um2 > 10.0 * or.area_um2);
        assert!(sync.area_um2 < 80.0, "sync area {}", sync.area_um2);
        let rel = sync.relative_to(&ca);
        assert!(
            rel.area_ratio > 3.5 && rel.area_ratio < 8.0,
            "area ratio {}",
            rel.area_ratio
        );
        assert!(rel.energy_ratio > 5.0, "energy ratio {}", rel.energy_ratio);
    }

    #[test]
    fn table3_sync_min_similar_to_sync_max() {
        let mx = synchronizer_max(1);
        let mn = synchronizer_min(1);
        assert!((mx.area_um2 - mn.area_um2).abs() < 1.0);
    }

    #[test]
    fn ca_adder_overhead_matches_section2_claim() {
        // §II.B: the correlation-agnostic adder is 5.6x larger and 10.7x more
        // power hungry than the MUX adder; our model reproduces the order.
        let mux = mux_adder();
        let ca = correlation_agnostic_adder();
        let area_ratio = ca.area_um2 / mux.area_um2;
        let power_ratio = ca.power_uw / mux.power_uw;
        assert!(
            area_ratio > 4.0 && area_ratio < 9.0,
            "area ratio {area_ratio}"
        );
        assert!(
            power_ratio > 5.0 && power_ratio < 14.0,
            "power ratio {power_ratio}"
        );
    }

    #[test]
    fn deeper_synchronizers_cost_more() {
        let d1 = synchronizer(1);
        let d4 = synchronizer(4);
        let d16 = synchronizer(16);
        assert!(d1.area_um2() < d4.area_um2());
        assert!(d4.area_um2() < d16.area_um2());
        assert!(d1.power_uw() < d16.power_uw());
    }

    #[test]
    fn converters_dominate_arithmetic_gates() {
        // The economic argument for correlation manipulation: converters and
        // RNGs are one to two orders of magnitude larger than SC arithmetic.
        let and_gate = and_min_netlist();
        for big in [
            sd_converter(8),
            ds_converter(8),
            lfsr_rng(16),
            low_discrepancy_rng(8),
        ] {
            assert!(
                big.area_um2() > 20.0 * and_gate.area_um2(),
                "{} should dwarf an AND gate",
                big.name()
            );
        }
    }

    #[test]
    fn regeneration_costs_more_than_synchronizer_pair() {
        // Table IV's energy argument, at the unit level: one regeneration unit
        // costs more than the two synchronizers that replace it.
        let regen = regeneration_unit(8);
        let two_syncs = synchronizer(1).scaled("2x-sync", 2);
        assert!(regen.area_um2() > two_syncs.area_um2() * 0.9);
        assert!(regen.power_uw() > two_syncs.power_uw());
    }

    #[test]
    fn decorrelator_and_baselines() {
        let deco = decorrelator(4);
        let iso = isolator(1);
        let tfm = tracking_forecast_memory();
        assert!(deco.area_um2() > iso.area_um2());
        assert!(
            tfm.area_um2() > deco.area_um2(),
            "TFMs are larger (partly binary)"
        );
        assert!(shuffle_buffer(8).area_um2() > shuffle_buffer(2).area_um2());
    }

    #[test]
    fn kernels_are_small() {
        assert!(gaussian_blur_kernel().area_um2() < 30.0);
        assert!(edge_detector_kernel().area_um2() < 10.0);
    }

    #[test]
    fn table3_reports_has_five_rows() {
        let rows = table3_reports(1);
        assert_eq!(rows.len(), 5);
        assert!(rows[0].design.contains("or-max"));
        assert!(rows[2].design.contains("sync-max"));
    }

    #[test]
    fn desync_satadd_netlist_contains_fsm_and_or() {
        let n = desynchronizer_saturating_adder_netlist(1);
        assert!(n.area_um2() > desynchronizer(1).area_um2());
    }
}
