//! Retained bit-serial reference implementations.
//!
//! Every operator in this crate (and the downstream arithmetic/manipulator
//! crates) runs on the word-parallel kernel layer: 64 stream bits per machine
//! operation. The functions here are the original one-bit-per-step
//! formulations, kept as an executable specification. Equivalence tests
//! assert bit-identical output between each word-parallel path and its
//! reference here — including at lengths that are not multiples of 64 — and
//! the benchmark suite uses them as the baseline the speedups are measured
//! against.

use crate::bitstream::Bitstream;
use crate::correlation::JointCounts;
use crate::error::{Error, Result};

/// Bit-serial binary combinator: `out[i] = f(x[i], y[i])`.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] if the lengths differ.
pub fn zip_bits<F: FnMut(bool, bool) -> bool>(
    x: &Bitstream,
    y: &Bitstream,
    mut f: F,
) -> Result<Bitstream> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let mut out = Bitstream::zeros(x.len());
    for i in 0..x.len() {
        out.set(i, f(x.bit(i), y.bit(i)));
    }
    Ok(out)
}

/// Bit-serial AND.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] if the lengths differ.
pub fn and(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    zip_bits(x, y, |a, b| a && b)
}

/// Bit-serial OR.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] if the lengths differ.
pub fn or(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    zip_bits(x, y, |a, b| a || b)
}

/// Bit-serial XOR.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] if the lengths differ.
pub fn xor(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    zip_bits(x, y, |a, b| a != b)
}

/// Bit-serial XNOR.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] if the lengths differ.
pub fn xnor(x: &Bitstream, y: &Bitstream) -> Result<Bitstream> {
    zip_bits(x, y, |a, b| a == b)
}

/// Bit-serial NOT.
#[must_use]
pub fn not(x: &Bitstream) -> Bitstream {
    Bitstream::from_fn(x.len(), |i| !x.bit(i))
}

/// Bit-serial MUX: `out[i] = if select[i] { hi[i] } else { lo[i] }`.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] if any length differs.
pub fn mux(lo: &Bitstream, hi: &Bitstream, select: &Bitstream) -> Result<Bitstream> {
    if lo.len() != hi.len() {
        return Err(Error::LengthMismatch {
            left: lo.len(),
            right: hi.len(),
        });
    }
    if lo.len() != select.len() {
        return Err(Error::LengthMismatch {
            left: lo.len(),
            right: select.len(),
        });
    }
    let mut out = Bitstream::zeros(lo.len());
    for i in 0..lo.len() {
        out.set(i, if select.bit(i) { hi.bit(i) } else { lo.bit(i) });
    }
    Ok(out)
}

/// Bit-serial delay: first `k` bits are `fill`, bit `i + k` is input bit `i`.
#[must_use]
pub fn delayed(x: &Bitstream, k: usize, fill: bool) -> Bitstream {
    let mut out = Bitstream::zeros(x.len());
    for i in 0..x.len() {
        let bit = if i < k { fill } else { x.bit(i - k) };
        out.set(i, bit);
    }
    out
}

/// Bit-serial rotation: bit `i` of the output is bit `(i + k) % len`.
#[must_use]
pub fn rotated(x: &Bitstream, k: usize) -> Bitstream {
    if x.is_empty() {
        return x.clone();
    }
    let k = k % x.len();
    Bitstream::from_fn(x.len(), |i| x.bit((i + k) % x.len()))
}

/// Bit-serial 1s count.
#[must_use]
pub fn count_ones(x: &Bitstream) -> usize {
    (0..x.len()).filter(|&i| x.bit(i)).count()
}

/// Bit-serial joint-occurrence counting (the `scc` accumulation loop).
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] or [`Error::EmptyStream`] as appropriate.
pub fn joint_counts(x: &Bitstream, y: &Bitstream) -> Result<JointCounts> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.is_empty() {
        return Err(Error::EmptyStream);
    }
    let mut counts = JointCounts::default();
    for i in 0..x.len() {
        match (x.bit(i), y.bit(i)) {
            (true, true) => counts.a += 1,
            (true, false) => counts.b += 1,
            (false, true) => counts.c += 1,
            (false, false) => counts.d += 1,
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_ops_match_small_examples() {
        let x = Bitstream::parse("1100").unwrap();
        let y = Bitstream::parse("1010").unwrap();
        assert_eq!(and(&x, &y).unwrap().to_bit_string(), "1000");
        assert_eq!(or(&x, &y).unwrap().to_bit_string(), "1110");
        assert_eq!(xor(&x, &y).unwrap().to_bit_string(), "0110");
        assert_eq!(xnor(&x, &y).unwrap().to_bit_string(), "1001");
        assert_eq!(not(&x).to_bit_string(), "0011");
        assert_eq!(count_ones(&x), 2);
        let j = joint_counts(&x, &y).unwrap();
        assert_eq!((j.a, j.b, j.c, j.d), (1, 1, 1, 1));
    }

    #[test]
    fn reference_errors_match() {
        let x = Bitstream::zeros(4);
        let y = Bitstream::zeros(5);
        assert!(and(&x, &y).is_err());
        assert!(mux(&x, &x, &y).is_err());
        assert!(joint_counts(&x, &y).is_err());
    }
}
