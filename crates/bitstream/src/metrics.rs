//! Error and bias accumulators used by every experiment harness.
//!
//! The paper reports two quality metrics:
//!
//! * **average absolute error** — mean of `|measured − expected|` over a sweep,
//! * **average bias** — mean of `measured − expected` (signed), used to show
//!   that correlation manipulating circuits preserve SN values (Table II).

use crate::bitstream::Bitstream;
use crate::correlation::try_scc;
use crate::error::Result;

/// Streaming accumulator of signed and absolute error statistics.
///
/// # Example
///
/// ```
/// use sc_bitstream::ErrorStats;
///
/// let mut stats = ErrorStats::new();
/// stats.record(0.52, 0.50);
/// stats.record(0.47, 0.50);
/// assert_eq!(stats.count(), 2);
/// assert!((stats.mean_abs_error() - 0.025).abs() < 1e-12);
/// assert!((stats.mean_bias() - (-0.005)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ErrorStats {
    count: u64,
    sum_error: f64,
    sum_abs_error: f64,
    sum_sq_error: f64,
    max_abs_error: f64,
}

impl ErrorStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(measured, expected)` observation.
    pub fn record(&mut self, measured: f64, expected: f64) {
        let e = measured - expected;
        self.count += 1;
        self.sum_error += e;
        self.sum_abs_error += e.abs();
        self.sum_sq_error += e * e;
        if e.abs() > self.max_abs_error {
            self.max_abs_error = e.abs();
        }
    }

    /// Records a raw signed error directly.
    pub fn record_error(&mut self, error: f64) {
        self.record(error, 0.0);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorStats) {
        self.count += other.count;
        self.sum_error += other.sum_error;
        self.sum_abs_error += other.sum_abs_error;
        self.sum_sq_error += other.sum_sq_error;
        self.max_abs_error = self.max_abs_error.max(other.max_abs_error);
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean signed error (bias). Returns 0 when empty.
    #[must_use]
    pub fn mean_bias(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_error / self.count as f64
        }
    }

    /// Mean absolute error. Returns 0 when empty.
    #[must_use]
    pub fn mean_abs_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs_error / self.count as f64
        }
    }

    /// Root-mean-square error. Returns 0 when empty.
    #[must_use]
    pub fn rmse(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_sq_error / self.count as f64).sqrt()
        }
    }

    /// Largest absolute error observed.
    #[must_use]
    pub fn max_abs_error(&self) -> f64 {
        self.max_abs_error
    }
}

impl FromIterator<(f64, f64)> for ErrorStats {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut s = ErrorStats::new();
        for (measured, expected) in iter {
            s.record(measured, expected);
        }
        s
    }
}

/// Aggregated before/after statistics for a pair of streams passed through a
/// correlation manipulating circuit — exactly the quantities of Table II.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamPairStats {
    count: u64,
    sum_input_scc: f64,
    sum_output_scc: f64,
    sum_bias_x: f64,
    sum_bias_y: f64,
    sum_abs_bias_x: f64,
    sum_abs_bias_y: f64,
}

impl StreamPairStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one manipulated pair: the original inputs and the circuit outputs.
    ///
    /// # Errors
    ///
    /// Returns an error if any pair of streams has mismatched lengths or is empty.
    pub fn record(
        &mut self,
        input_x: &Bitstream,
        input_y: &Bitstream,
        output_x: &Bitstream,
        output_y: &Bitstream,
    ) -> Result<()> {
        let in_scc = try_scc(input_x, input_y)?;
        let out_scc = try_scc(output_x, output_y)?;
        self.count += 1;
        self.sum_input_scc += in_scc;
        self.sum_output_scc += out_scc;
        let bx = output_x.value() - input_x.value();
        let by = output_y.value() - input_y.value();
        self.sum_bias_x += bx;
        self.sum_bias_y += by;
        self.sum_abs_bias_x += bx.abs();
        self.sum_abs_bias_y += by.abs();
        Ok(())
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &StreamPairStats) {
        self.count += other.count;
        self.sum_input_scc += other.sum_input_scc;
        self.sum_output_scc += other.sum_output_scc;
        self.sum_bias_x += other.sum_bias_x;
        self.sum_bias_y += other.sum_bias_y;
        self.sum_abs_bias_x += other.sum_abs_bias_x;
        self.sum_abs_bias_y += other.sum_abs_bias_y;
    }

    /// Number of pairs recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean SCC of the input pairs.
    #[must_use]
    pub fn mean_input_scc(&self) -> f64 {
        self.mean(self.sum_input_scc)
    }

    /// Mean SCC of the output pairs.
    #[must_use]
    pub fn mean_output_scc(&self) -> f64 {
        self.mean(self.sum_output_scc)
    }

    /// Mean signed value change of the first stream (`X'` bias in Table II).
    #[must_use]
    pub fn mean_bias_x(&self) -> f64 {
        self.mean(self.sum_bias_x)
    }

    /// Mean signed value change of the second stream (`Y'` bias in Table II).
    #[must_use]
    pub fn mean_bias_y(&self) -> f64 {
        self.mean(self.sum_bias_y)
    }

    /// Mean absolute value change of the first stream.
    #[must_use]
    pub fn mean_abs_bias_x(&self) -> f64 {
        self.mean(self.sum_abs_bias_x)
    }

    /// Mean absolute value change of the second stream.
    #[must_use]
    pub fn mean_abs_bias_y(&self) -> f64 {
        self.mean(self.sum_abs_bias_y)
    }

    fn mean(&self, sum: f64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::Bitstream;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = ErrorStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_bias(), 0.0);
        assert_eq!(s.mean_abs_error(), 0.0);
        assert_eq!(s.rmse(), 0.0);
        assert_eq!(s.max_abs_error(), 0.0);
    }

    #[test]
    fn stats_accumulate_correctly() {
        let mut s = ErrorStats::new();
        s.record(1.0, 0.5); // +0.5
        s.record(0.0, 0.5); // -0.5
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean_bias(), 0.0);
        assert_eq!(s.mean_abs_error(), 0.5);
        assert_eq!(s.rmse(), 0.5);
        assert_eq!(s.max_abs_error(), 0.5);
    }

    #[test]
    fn stats_merge_matches_sequential() {
        let mut a = ErrorStats::new();
        a.record(0.3, 0.25);
        let mut b = ErrorStats::new();
        b.record(0.8, 0.75);
        b.record(0.1, 0.5);
        let mut merged = a;
        merged.merge(&b);

        let seq: ErrorStats = [(0.3, 0.25), (0.8, 0.75), (0.1, 0.5)].into_iter().collect();
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean_abs_error() - seq.mean_abs_error()).abs() < 1e-12);
        assert!((merged.mean_bias() - seq.mean_bias()).abs() < 1e-12);
    }

    #[test]
    fn record_error_is_shorthand() {
        let mut a = ErrorStats::new();
        a.record_error(-0.25);
        assert_eq!(a.mean_bias(), -0.25);
        assert_eq!(a.mean_abs_error(), 0.25);
    }

    #[test]
    fn pair_stats_identity_circuit_has_zero_bias() {
        let x = Bitstream::parse("10101010").unwrap();
        let y = Bitstream::parse("11111100").unwrap();
        let mut s = StreamPairStats::new();
        s.record(&x, &y, &x, &y).unwrap();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean_bias_x(), 0.0);
        assert_eq!(s.mean_bias_y(), 0.0);
        assert_eq!(s.mean_input_scc(), s.mean_output_scc());
    }

    #[test]
    fn pair_stats_detects_value_change_and_scc_change() {
        let x = Bitstream::parse("10101010").unwrap();
        let y = Bitstream::parse("11111100").unwrap();
        // Fake "output": drop one 1 from x and force y to match x exactly.
        let xo = Bitstream::parse("00101010").unwrap();
        let yo = xo.clone();
        let mut s = StreamPairStats::new();
        s.record(&x, &y, &xo, &yo).unwrap();
        assert!(s.mean_bias_x() < 0.0);
        assert!(s.mean_bias_y() < 0.0);
        assert_eq!(s.mean_output_scc(), 1.0);
        assert!(s.mean_abs_bias_x() > 0.0);
        assert!(s.mean_abs_bias_y() > 0.0);
    }

    #[test]
    fn pair_stats_merge() {
        let x = Bitstream::parse("1100").unwrap();
        let y = Bitstream::parse("1010").unwrap();
        let mut a = StreamPairStats::new();
        a.record(&x, &y, &x, &y).unwrap();
        let mut b = StreamPairStats::new();
        b.record(&y, &x, &y, &x).unwrap();
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn pair_stats_rejects_mismatched_lengths() {
        let x = Bitstream::parse("1100").unwrap();
        let y = Bitstream::parse("10100").unwrap();
        let mut s = StreamPairStats::new();
        assert!(s.record(&x, &y, &x, &y).is_err());
    }

    proptest! {
        #[test]
        fn prop_mean_abs_error_at_least_abs_bias(pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..50)) {
            let stats: ErrorStats = pairs.into_iter().collect();
            prop_assert!(stats.mean_abs_error() + 1e-12 >= stats.mean_bias().abs());
        }

        #[test]
        fn prop_rmse_at_least_mean_abs_never_less_than_zero(pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..50)) {
            let stats: ErrorStats = pairs.into_iter().collect();
            // RMSE >= MAE by Jensen's inequality.
            prop_assert!(stats.rmse() + 1e-12 >= stats.mean_abs_error());
            prop_assert!(stats.max_abs_error() + 1e-12 >= stats.mean_abs_error());
        }
    }
}
