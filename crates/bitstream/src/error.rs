//! Error types for the bitstream substrate.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by stochastic-number construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A probability outside `[0, 1]` was supplied.
    ProbabilityOutOfRange(f64),
    /// A bipolar value outside `[-1, 1]` was supplied.
    BipolarOutOfRange(f64),
    /// Two streams of different lengths were combined where equal lengths are required.
    LengthMismatch {
        /// Length of the left-hand stream.
        left: usize,
        /// Length of the right-hand stream.
        right: usize,
    },
    /// An empty bitstream was supplied where a non-empty one is required.
    EmptyStream,
    /// A bit index beyond the end of the stream was addressed.
    IndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Stream length.
        len: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ProbabilityOutOfRange(v) => {
                write!(f, "probability {v} is outside the unipolar range [0, 1]")
            }
            Error::BipolarOutOfRange(v) => {
                write!(f, "value {v} is outside the bipolar range [-1, 1]")
            }
            Error::LengthMismatch { left, right } => {
                write!(f, "bitstream length mismatch: {left} vs {right}")
            }
            Error::EmptyStream => write!(f, "bitstream is empty"),
            Error::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "bit index {index} out of bounds for stream of length {len}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::ProbabilityOutOfRange(1.5),
            Error::BipolarOutOfRange(-2.0),
            Error::LengthMismatch { left: 8, right: 16 },
            Error::EmptyStream,
            Error::IndexOutOfBounds { index: 9, len: 8 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
