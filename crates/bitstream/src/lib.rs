//! # sc-bitstream
//!
//! Stochastic number (SN) substrate for the reproduction of
//! *"Correlation Manipulating Circuits for Stochastic Computing"* (Lee, Alaghi,
//! Ceze — DATE 2018).
//!
//! In stochastic computing (SC), a value is encoded as a **unary bitstream**: a
//! time series of 1s and 0s whose *fraction of 1s* is the encoded value. This
//! crate provides:
//!
//! * [`Bitstream`] — a bit-packed stochastic number with unipolar and bipolar
//!   value accessors and the usual bitwise combinators. All bulk operations
//!   run on the **word-parallel kernel layer**: 64 stream bits per machine
//!   operation via the packed-word API ([`Bitstream::as_words`],
//!   [`Bitstream::map_words`], [`Bitstream::zip_with_words`], ...). The
//!   original one-bit-per-step formulations are retained in [`reference`](mod@reference) as
//!   an executable specification,
//! * [`BitQueue`] — a packed bit FIFO used as the word-parallel delay-line
//!   primitive by the manipulator kernels in `sc-core`,
//! * [`Probability`] and [`BipolarValue`] — validated value newtypes,
//! * [`JointCounts`] and [`scc`] — the SC correlation (SCC) metric of
//!   Alaghi & Hayes used throughout the paper (§II.B),
//! * [`metrics`] — bias / absolute-error / RMSE accumulators used by every
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use sc_bitstream::{Bitstream, scc};
//!
//! // X = 01010101 encodes 0.5, Y = 11111100 encodes 0.75 (paper §I).
//! let x = Bitstream::from_bools([false, true, false, true, false, true, false, true]);
//! let y = Bitstream::from_bools([true, true, true, true, true, true, false, false]);
//! assert_eq!(x.value(), 0.5);
//! assert_eq!(y.value(), 0.75);
//!
//! // Uncorrelated AND multiplies: Z = X & Y encodes 0.375.
//! let z = x.and(&y);
//! assert_eq!(z.value(), 0.375);
//!
//! // These particular streams are (close to) uncorrelated.
//! assert!(scc(&x, &y).abs() < 0.35);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitqueue;
pub mod bitstream;
pub mod correlation;
pub mod error;
pub mod metrics;
pub mod reference;
pub mod value;

pub use bitqueue::BitQueue;
pub use bitstream::{Bitstream, WORD_BITS};
pub use correlation::{scc, scc_from_counts, JointCounts};
pub use error::{Error, Result};
pub use metrics::{ErrorStats, StreamPairStats};
pub use value::{BipolarValue, Probability};
