//! Validated value newtypes for unipolar and bipolar stochastic encodings.
//!
//! Unipolar stochastic numbers encode values in `[0, 1]` (each 1 weighs `+1`,
//! each 0 weighs `0`); bipolar stochastic numbers encode values in `[-1, 1]`
//! (each 1 weighs `+1`, each 0 weighs `-1`). See §II.A of the paper.

use crate::error::{Error, Result};
use std::fmt;

/// A unipolar stochastic value in `[0, 1]`.
///
/// `Probability` is the natural "payload" of a unipolar stochastic number: a
/// bitstream of length `N` with `k` ones encodes `Probability(k / N)`.
///
/// # Example
///
/// ```
/// use sc_bitstream::Probability;
///
/// let p = Probability::new(0.25)?;
/// assert_eq!(p.get(), 0.25);
/// assert_eq!(p.to_bipolar().get(), -0.5);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Probability(f64);

impl Probability {
    /// The probability `0.0`.
    pub const ZERO: Probability = Probability(0.0);
    /// The probability `0.5`.
    pub const HALF: Probability = Probability(0.5);
    /// The probability `1.0`.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability, validating the unipolar range.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProbabilityOutOfRange`] if `value` is NaN or outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            Err(Error::ProbabilityOutOfRange(value))
        } else {
            Ok(Probability(value))
        }
    }

    /// Creates a probability, clamping `value` into `[0, 1]` (NaN becomes 0).
    #[must_use]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Probability(0.0)
        } else {
            Probability(value.clamp(0.0, 1.0))
        }
    }

    /// Creates the probability `k / n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k > n`.
    #[must_use]
    pub fn from_ratio(k: u64, n: u64) -> Self {
        assert!(n > 0, "ratio denominator must be non-zero");
        assert!(k <= n, "ratio numerator {k} exceeds denominator {n}");
        Probability(k as f64 / n as f64)
    }

    /// Returns the inner `f64`.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Converts to the equivalent bipolar value `2p - 1`.
    #[must_use]
    pub fn to_bipolar(self) -> BipolarValue {
        BipolarValue(2.0 * self.0 - 1.0)
    }

    /// Quantizes this probability to the nearest representable value with a
    /// stream of length `n`, i.e. to the grid `{0/n, 1/n, ..., n/n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn quantize(self, n: usize) -> Self {
        assert!(n > 0, "stream length must be non-zero");
        let k = (self.0 * n as f64).round();
        Probability(k / n as f64)
    }

    /// The number of 1s a length-`n` stream must carry to encode the nearest
    /// representable value.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn to_count(self, n: usize) -> usize {
        assert!(n > 0, "stream length must be non-zero");
        ((self.0 * n as f64).round() as usize).min(n)
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

impl TryFrom<f64> for Probability {
    type Error = Error;

    fn try_from(value: f64) -> Result<Self> {
        Probability::new(value)
    }
}

/// A bipolar stochastic value in `[-1, 1]`.
///
/// Under the bipolar encoding a bitstream with one-fraction `p` encodes
/// `2p − 1`, allowing negative values at the cost of doubled quantization step.
///
/// # Example
///
/// ```
/// use sc_bitstream::BipolarValue;
///
/// let v = BipolarValue::new(-0.25)?;
/// assert_eq!(v.to_probability().get(), 0.375);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BipolarValue(f64);

impl BipolarValue {
    /// The bipolar value `-1.0`.
    pub const NEG_ONE: BipolarValue = BipolarValue(-1.0);
    /// The bipolar value `0.0`.
    pub const ZERO: BipolarValue = BipolarValue(0.0);
    /// The bipolar value `1.0`.
    pub const ONE: BipolarValue = BipolarValue(1.0);

    /// Creates a bipolar value, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BipolarOutOfRange`] if `value` is NaN or outside `[-1, 1]`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_nan() || !(-1.0..=1.0).contains(&value) {
            Err(Error::BipolarOutOfRange(value))
        } else {
            Ok(BipolarValue(value))
        }
    }

    /// Creates a bipolar value, clamping into `[-1, 1]` (NaN becomes 0).
    #[must_use]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            BipolarValue(0.0)
        } else {
            BipolarValue(value.clamp(-1.0, 1.0))
        }
    }

    /// Returns the inner `f64`.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Converts to the equivalent unipolar probability `(v + 1) / 2`.
    #[must_use]
    pub fn to_probability(self) -> Probability {
        Probability((self.0 + 1.0) / 2.0)
    }
}

impl fmt::Display for BipolarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<BipolarValue> for f64 {
    fn from(v: BipolarValue) -> f64 {
        v.0
    }
}

impl TryFrom<f64> for BipolarValue {
    type Error = Error;

    fn try_from(value: f64) -> Result<Self> {
        BipolarValue::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn probability_validates_range() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(0.5).is_ok());
        assert!(Probability::new(-0.001).is_err());
        assert!(Probability::new(1.001).is_err());
        assert!(Probability::new(f64::NAN).is_err());
    }

    #[test]
    fn bipolar_validates_range() {
        assert!(BipolarValue::new(-1.0).is_ok());
        assert!(BipolarValue::new(1.0).is_ok());
        assert!(BipolarValue::new(0.0).is_ok());
        assert!(BipolarValue::new(-1.001).is_err());
        assert!(BipolarValue::new(1.001).is_err());
        assert!(BipolarValue::new(f64::NAN).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Probability::saturating(2.0).get(), 1.0);
        assert_eq!(Probability::saturating(-2.0).get(), 0.0);
        assert_eq!(Probability::saturating(f64::NAN).get(), 0.0);
        assert_eq!(BipolarValue::saturating(2.0).get(), 1.0);
        assert_eq!(BipolarValue::saturating(-2.0).get(), -1.0);
    }

    #[test]
    fn unipolar_bipolar_round_trip() {
        let p = Probability::new(0.375).unwrap();
        assert!((p.to_bipolar().get() - (-0.25)).abs() < 1e-12);
        assert!((p.to_bipolar().to_probability().get() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn quantize_snaps_to_grid() {
        let p = Probability::new(0.3).unwrap();
        let q = p.quantize(8);
        // 0.3 * 8 = 2.4 -> rounds to 2 -> 0.25
        assert!((q.get() - 0.25).abs() < 1e-12);
        assert_eq!(p.to_count(8), 2);
    }

    #[test]
    fn from_ratio_matches_division() {
        assert_eq!(Probability::from_ratio(3, 8).get(), 0.375);
        assert_eq!(Probability::from_ratio(0, 4).get(), 0.0);
        assert_eq!(Probability::from_ratio(4, 4).get(), 1.0);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn from_ratio_rejects_zero_denominator() {
        let _ = Probability::from_ratio(1, 0);
    }

    #[test]
    fn display_and_conversions() {
        let p = Probability::new(0.5).unwrap();
        assert_eq!(p.to_string(), "0.5");
        let f: f64 = p.into();
        assert_eq!(f, 0.5);
        let back = Probability::try_from(0.5).unwrap();
        assert_eq!(back, p);
    }

    proptest! {
        #[test]
        fn prop_round_trip_unipolar_bipolar(v in 0.0f64..=1.0) {
            let p = Probability::new(v).unwrap();
            let rt = p.to_bipolar().to_probability().get();
            prop_assert!((rt - v).abs() < 1e-12);
        }

        #[test]
        fn prop_quantize_error_bounded(v in 0.0f64..=1.0, n in 1usize..2048) {
            let q = Probability::new(v).unwrap().quantize(n);
            prop_assert!((q.get() - v).abs() <= 0.5 / n as f64 + 1e-12);
        }

        #[test]
        fn prop_to_count_in_range(v in 0.0f64..=1.0, n in 1usize..2048) {
            let k = Probability::new(v).unwrap().to_count(n);
            prop_assert!(k <= n);
        }
    }
}
