//! A packed bit FIFO: the word-parallel delay-line primitive.
//!
//! Correlation-manipulating hardware is full of short delay lines (isolator
//! flip-flop chains, save registers). Modelling them as `VecDeque<bool>`
//! costs a pointer-chasing byte access per stream bit; [`BitQueue`] packs the
//! line into `u64` words so a whole word of 64 stream bits can be pushed and
//! popped per operation ([`BitQueue::push_word`] / [`BitQueue::pop_word`]),
//! while still supporting single-bit access for bit-stepped FSM use.

use std::collections::VecDeque;

/// A FIFO of bits packed 64 per word.
///
/// Bits are stored LSB-first inside each word; `head` is the offset of the
/// oldest bit within the front word. All bits outside `[head, head + len)`
/// are kept at 0.
#[derive(Debug, Clone, Default)]
pub struct BitQueue {
    words: VecDeque<u64>,
    head: usize,
    len: usize,
}

impl BitQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a queue holding `len` copies of `bit`.
    #[must_use]
    pub fn filled(len: usize, bit: bool) -> Self {
        let mut q = BitQueue::new();
        if bit {
            for _ in 0..len / 64 {
                q.push_word(u64::MAX);
            }
            for _ in 0..len % 64 {
                q.push_bit(true);
            }
        } else {
            q.words = VecDeque::from(vec![0u64; len.div_ceil(64)]);
            q.len = len;
        }
        q
    }

    /// Number of bits in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 1s currently stored.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Appends one bit at the back.
    pub fn push_bit(&mut self, bit: bool) {
        let pos = self.head + self.len;
        let word = pos / 64;
        if word == self.words.len() {
            self.words.push_back(0);
        }
        if bit {
            self.words[word] |= 1u64 << (pos % 64);
        }
        self.len += 1;
    }

    /// Removes and returns the oldest bit.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn pop_bit(&mut self) -> bool {
        assert!(self.len > 0, "pop from empty BitQueue");
        let bit = (self.words[0] >> self.head) & 1 == 1;
        self.words[0] &= !(1u64 << self.head);
        self.head += 1;
        self.len -= 1;
        if self.head == 64 {
            self.words.pop_front();
            self.head = 0;
        }
        bit
    }

    /// Appends 64 bits at the back (bit 0 of `word` first).
    pub fn push_word(&mut self, word: u64) {
        let pos = self.head + self.len;
        let offset = pos % 64;
        let index = pos / 64;
        if index == self.words.len() {
            self.words.push_back(0);
        }
        self.words[index] |= word << offset;
        if offset > 0 {
            if index + 1 == self.words.len() {
                self.words.push_back(0);
            }
            self.words[index + 1] |= word >> (64 - offset);
        }
        self.len += 64;
    }

    /// Removes and returns the oldest 64 bits (oldest in bit 0).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 64 bits are queued.
    pub fn pop_word(&mut self) -> u64 {
        assert!(
            self.len >= 64,
            "pop_word from BitQueue holding {} bits",
            self.len
        );
        let word = if self.head == 0 {
            self.words
                .pop_front()
                .expect("len >= 64 implies a stored word")
        } else {
            let lo = self
                .words
                .pop_front()
                .expect("len >= 64 implies a stored word")
                >> self.head;
            let hi = self.words.front().copied().unwrap_or(0) << (64 - self.head);
            // Clear the bits just consumed from the (new) front word.
            if let Some(front) = self.words.front_mut() {
                *front &= !((1u64 << self.head) - 1);
            }
            lo | hi
        };
        self.len -= 64;
        word
    }

    /// Removes every bit, leaving an empty queue.
    pub fn clear(&mut self) {
        self.words.clear();
        self.head = 0;
        self.len = 0;
    }

    /// Iterates over the queued bits, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| {
            let pos = self.head + i;
            (self.words[pos / 64] >> (pos % 64)) & 1 == 1
        })
    }
}

impl PartialEq for BitQueue {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for BitQueue {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_bit_fifo_order() {
        let mut q = BitQueue::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            q.push_bit(b);
        }
        assert_eq!(q.len(), 200);
        for &b in &pattern {
            assert_eq!(q.pop_bit(), b);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn word_ops_match_bit_ops() {
        // Interleave bit and word pushes/pops and check against a bool deque.
        let mut q = BitQueue::new();
        let mut model: std::collections::VecDeque<bool> = std::collections::VecDeque::new();
        let mut rng = 0x1234_5678_9ABC_DEF0u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for round in 0..200 {
            if round % 3 == 0 {
                let w = next();
                q.push_word(w);
                for i in 0..64 {
                    model.push_back((w >> i) & 1 == 1);
                }
            } else {
                let b = next() & 1 == 1;
                q.push_bit(b);
                model.push_back(b);
            }
            while model.len() > 96 {
                if model.len() >= 64 && round % 2 == 0 {
                    let w = q.pop_word();
                    for i in 0..64 {
                        assert_eq!((w >> i) & 1 == 1, model.pop_front().unwrap());
                    }
                } else {
                    assert_eq!(q.pop_bit(), model.pop_front().unwrap());
                }
            }
            assert_eq!(q.len(), model.len());
            assert_eq!(q.count_ones(), model.iter().filter(|&&b| b).count());
        }
    }

    #[test]
    fn filled_and_clear() {
        let q = BitQueue::filled(70, true);
        assert_eq!(q.len(), 70);
        assert_eq!(q.count_ones(), 70);
        let mut z = BitQueue::filled(70, false);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 70);
        z.clear();
        assert!(z.is_empty());
    }

    #[test]
    fn equality_is_content_based() {
        // Same contents reached via different operation orders.
        let mut a = BitQueue::new();
        a.push_word(0xFFFF_0000_0000_0000);
        for _ in 0..32 {
            a.pop_bit();
        }
        let mut b = BitQueue::new();
        for i in 0..32 {
            b.push_bit(i >= 16);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "pop from empty")]
    fn pop_empty_panics() {
        BitQueue::new().pop_bit();
    }
}
