//! The bit-packed stochastic number type.

use crate::error::{Error, Result};
use crate::value::{BipolarValue, Probability};
use std::fmt;

/// Number of stream bits packed into one storage word.
///
/// This is the parallelism factor of the word-parallel kernel layer: every
/// bulk combinator ([`Bitstream::map_words`], [`Bitstream::zip_with_words`],
/// the logic ops, `scc` accumulation, ...) processes `WORD_BITS` stream bits
/// per machine operation.
pub const WORD_BITS: usize = 64;

/// A stochastic number (SN): a finite unary bitstream of 1s and 0s.
///
/// The value of the stream under the **unipolar** encoding is the fraction of
/// 1s ([`Bitstream::value`]); under the **bipolar** encoding it is
/// `2·(fraction of 1s) − 1` ([`Bitstream::bipolar_value`]).
///
/// Bits are stored packed, 64 per word, in stream order (bit `i` of the stream
/// is bit `i % 64` of word `i / 64`).
///
/// # Example
///
/// ```
/// use sc_bitstream::Bitstream;
///
/// let x = Bitstream::parse("01000100")?;
/// assert_eq!(x.len(), 8);
/// assert_eq!(x.count_ones(), 2);
/// assert_eq!(x.value(), 0.25); // paper §I example
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bitstream {
    words: Vec<u64>,
    len: usize,
}

impl Bitstream {
    /// Creates an empty bitstream.
    #[must_use]
    pub fn new() -> Self {
        Bitstream {
            words: Vec::new(),
            len: 0,
        }
    }

    /// Creates an all-zeros bitstream of length `len`.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Bitstream {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates an all-ones bitstream of length `len`.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut s = Bitstream {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        s.mask_tail();
        s
    }

    /// Creates a bitstream from an iterator of booleans.
    #[must_use]
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = Bitstream::new();
        for b in bits {
            s.push(b);
        }
        s
    }

    /// Creates a bitstream of length `len` where bit `i` is `f(i)`.
    ///
    /// `f` is called once per bit in stream order; the produced bits are
    /// packed through a register and stored a whole word at a time, so
    /// sequential generators (RNG comparators, select-stream builders) get
    /// word-batched stores for free.
    #[must_use]
    pub fn from_fn<F: FnMut(usize) -> bool>(len: usize, mut f: F) -> Self {
        Self::from_word_fn(len, |w| {
            let start = w * WORD_BITS;
            let valid = (len - start).min(WORD_BITS);
            let mut word = 0u64;
            for i in 0..valid {
                word |= u64::from(f(start + i)) << i;
            }
            word
        })
    }

    /// Parses a bitstream from a string of `'0'` and `'1'` characters.
    ///
    /// Whitespace and `_` separators are ignored; the first character is the
    /// first bit emitted in time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyStream`] if the string contains no `0`/`1`
    /// characters, and [`Error::ProbabilityOutOfRange`] is never returned; any
    /// other character yields [`Error::EmptyStream`]? No — invalid characters
    /// are reported via [`Error::IndexOutOfBounds`]. To keep the error surface
    /// small, invalid characters are rejected as [`Error::EmptyStream`] only
    /// when nothing was parsed; otherwise they are skipped.
    pub fn parse(s: &str) -> Result<Self> {
        let mut out = Bitstream::new();
        for c in s.chars() {
            match c {
                '0' => out.push(false),
                '1' => out.push(true),
                c if c.is_whitespace() || c == '_' => {}
                _ => {}
            }
        }
        if out.is_empty() {
            Err(Error::EmptyStream)
        } else {
            Ok(out)
        }
    }

    /// Number of bits in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream contains no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit to the end of the stream.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / WORD_BITS;
        let offset = self.len % WORD_BITS;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << offset;
        }
        self.len += 1;
    }

    /// Returns bit `index`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        let word = index / WORD_BITS;
        let offset = index % WORD_BITS;
        Some((self.words[word] >> offset) & 1 == 1)
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn bit(&self, index: usize) -> bool {
        self.get(index)
            .unwrap_or_else(|| panic!("bit index {index} out of bounds for length {}", self.len))
    }

    /// Sets bit `index` to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of bounds for length {}",
            self.len
        );
        let word = index / WORD_BITS;
        let offset = index % WORD_BITS;
        if bit {
            self.words[word] |= 1u64 << offset;
        } else {
            self.words[word] &= !(1u64 << offset);
        }
    }

    /// Number of 1s in the stream.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed storage words, 64 stream bits per word in stream order.
    ///
    /// Bit `i` of the stream is bit `i % 64` of word `i / 64`. Bits at
    /// positions `>= len()` in the final word are always 0.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed storage words.
    ///
    /// Callers writing the final word must keep the invariant that bits at
    /// positions `>= len()` stay 0 — AND it with [`Bitstream::tail_mask`]
    /// after writing, or the 1s-count and value become wrong.
    #[must_use]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Mask selecting the valid bits of the *final* storage word:
    /// `u64::MAX` when the length is a positive multiple of 64, the low
    /// `len % 64` bits for a partial final word, and `0` for an empty
    /// stream (which has no valid bits).
    #[must_use]
    pub fn tail_mask(&self) -> u64 {
        tail_mask_for(self.len)
    }

    /// Number of valid stream bits in storage word `word_index` (64 for every
    /// full word, `len % 64` for a partial final word, 0 past the end).
    #[must_use]
    pub fn word_len(&self, word_index: usize) -> usize {
        let start = word_index * WORD_BITS;
        self.len.saturating_sub(start).min(WORD_BITS)
    }

    /// Builds a stream of length `len` directly from packed words.
    ///
    /// Bits beyond `len` in the final word are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)`.
    #[must_use]
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(WORD_BITS),
            "word count {} does not match stream length {len}",
            words.len()
        );
        let mut s = Bitstream { words, len };
        s.mask_tail();
        s
    }

    /// Builds a stream of length `len` where storage word `w` is `f(w)`
    /// (the word-parallel analogue of [`Bitstream::from_fn`]).
    ///
    /// Only the low `word_len(w)` bits of each produced word are kept.
    #[must_use]
    pub fn from_word_fn<F: FnMut(usize) -> u64>(len: usize, f: F) -> Self {
        let words = (0..len.div_ceil(WORD_BITS)).map(f).collect();
        Self::from_words(words, len)
    }

    /// Appends the low `nbits` bits of `word` to the stream (bit 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `nbits > 64`.
    pub fn push_word(&mut self, word: u64, nbits: usize) {
        assert!(
            nbits <= WORD_BITS,
            "cannot push {nbits} bits from a 64-bit word"
        );
        if nbits == 0 {
            return;
        }
        let word = word & tail_mask_for(nbits);
        let offset = self.len % WORD_BITS;
        if offset == 0 {
            self.words.push(word);
        } else {
            *self
                .words
                .last_mut()
                .expect("offset > 0 implies a partial word") |= word << offset;
            if offset + nbits > WORD_BITS {
                self.words.push(word >> (WORD_BITS - offset));
            }
        }
        self.len += nbits;
    }

    /// Applies `f` to every storage word, producing a stream of the same
    /// length. Tail bits beyond the length are cleared afterwards, so `f` may
    /// freely produce them (e.g. `|w| !w` for NOT).
    #[must_use]
    pub fn map_words<F: FnMut(u64) -> u64>(&self, mut f: F) -> Bitstream {
        let mut out = Bitstream {
            words: self.words.iter().map(|&w| f(w)).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Iterates over paired storage words of two streams.
    ///
    /// The iterator yields `min(word-count)` pairs; use
    /// [`Bitstream::zip_with_words`] when a length check and a combined output
    /// stream are wanted. This is the accumulation primitive behind the
    /// word-parallel `scc` joint counting.
    pub fn zip_words<'a>(&'a self, other: &'a Bitstream) -> impl Iterator<Item = (u64, u64)> + 'a {
        self.words.iter().copied().zip(other.words.iter().copied())
    }

    /// Combines two equal-length streams word by word with `f`, the bulk
    /// combinator every binary logic op is built on. Tail bits beyond the
    /// length are cleared afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the lengths differ.
    pub fn zip_with_words<F: FnMut(u64, u64) -> u64>(
        &self,
        other: &Bitstream,
        mut f: F,
    ) -> Result<Bitstream> {
        if self.len != other.len {
            return Err(Error::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        let mut out = Bitstream {
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            len: self.len,
        };
        out.mask_tail();
        Ok(out)
    }

    /// Number of 0s in the stream.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Unipolar value of the stream (fraction of 1s). Returns 0 for an empty stream.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Unipolar value as a validated [`Probability`].
    #[must_use]
    pub fn probability(&self) -> Probability {
        Probability::saturating(self.value())
    }

    /// Bipolar value of the stream (`2·value − 1`). Returns −1 for an empty stream.
    #[must_use]
    pub fn bipolar_value(&self) -> f64 {
        2.0 * self.value() - 1.0
    }

    /// Bipolar value as a validated [`BipolarValue`].
    #[must_use]
    pub fn bipolar(&self) -> BipolarValue {
        BipolarValue::saturating(self.bipolar_value())
    }

    /// Iterates over the bits in stream order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            stream: self,
            index: 0,
        }
    }

    /// Collects the bits into a `Vec<bool>`.
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Renders the stream as a string of `0`/`1` characters in stream order.
    #[must_use]
    pub fn to_bit_string(&self) -> String {
        self.iter().map(|b| if b { '1' } else { '0' }).collect()
    }

    /// Bitwise AND of two equal-length streams.
    ///
    /// With uncorrelated unipolar inputs this is SC multiplication (paper Fig. 1a).
    ///
    /// # Panics
    ///
    /// Panics if the streams have different lengths; use [`Bitstream::try_and`]
    /// for a fallible variant.
    #[must_use]
    pub fn and(&self, other: &Bitstream) -> Bitstream {
        self.try_and(other)
            .expect("bitstream length mismatch in and()")
    }

    /// Fallible bitwise AND.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the lengths differ.
    pub fn try_and(&self, other: &Bitstream) -> Result<Bitstream> {
        self.zip_with_words(other, |a, b| a & b)
    }

    /// Bitwise OR of two equal-length streams.
    ///
    /// With negatively correlated unipolar inputs this is SC saturating
    /// addition; with positively correlated inputs it is SC maximum.
    ///
    /// # Panics
    ///
    /// Panics if the streams have different lengths.
    #[must_use]
    pub fn or(&self, other: &Bitstream) -> Bitstream {
        self.try_or(other)
            .expect("bitstream length mismatch in or()")
    }

    /// Fallible bitwise OR.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the lengths differ.
    pub fn try_or(&self, other: &Bitstream) -> Result<Bitstream> {
        self.zip_with_words(other, |a, b| a | b)
    }

    /// Bitwise XOR of two equal-length streams.
    ///
    /// With positively correlated unipolar inputs this computes `|pX − pY|`
    /// (SC subtraction, paper Fig. 2c).
    ///
    /// # Panics
    ///
    /// Panics if the streams have different lengths.
    #[must_use]
    pub fn xor(&self, other: &Bitstream) -> Bitstream {
        self.try_xor(other)
            .expect("bitstream length mismatch in xor()")
    }

    /// Fallible bitwise XOR.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the lengths differ.
    pub fn try_xor(&self, other: &Bitstream) -> Result<Bitstream> {
        self.zip_with_words(other, |a, b| a ^ b)
    }

    /// Bitwise XNOR of two equal-length streams (bipolar SC multiplication).
    ///
    /// # Panics
    ///
    /// Panics if the streams have different lengths.
    #[must_use]
    pub fn xnor(&self, other: &Bitstream) -> Bitstream {
        self.try_xnor(other)
            .expect("bitstream length mismatch in xnor()")
    }

    /// Fallible bitwise XNOR.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the lengths differ.
    pub fn try_xnor(&self, other: &Bitstream) -> Result<Bitstream> {
        self.zip_with_words(other, |a, b| !(a ^ b))
    }

    /// Bitwise NOT of the stream (computes `1 − pX` in unipolar, `−x` in bipolar).
    #[must_use]
    pub fn not(&self) -> Bitstream {
        self.map_words(|w| !w)
    }

    /// Multiplexes two equal-length streams with a select stream:
    /// output bit `i` is `hi[i]` when `select[i]` is 1, else `lo[i]`.
    ///
    /// With an uncorrelated 0.5-valued select this is the SC scaled adder
    /// (paper Fig. 1b / 2a).
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if any of the lengths differ.
    pub fn mux(lo: &Bitstream, hi: &Bitstream, select: &Bitstream) -> Result<Bitstream> {
        if lo.len != hi.len {
            return Err(Error::LengthMismatch {
                left: lo.len,
                right: hi.len,
            });
        }
        if lo.len != select.len {
            return Err(Error::LengthMismatch {
                left: lo.len,
                right: select.len,
            });
        }
        let mut out = Bitstream::zeros(lo.len);
        for i in 0..out.words.len() {
            out.words[i] = (select.words[i] & hi.words[i]) | (!select.words[i] & lo.words[i]);
        }
        out.mask_tail();
        Ok(out)
    }

    /// Returns a stream delayed by `k` cycles: the first `k` output bits are
    /// `fill`, and bit `i + k` of the output equals bit `i` of the input; the
    /// last `k` input bits are dropped so the length is preserved.
    ///
    /// This is the behaviour of `k` isolator flip-flops in series.
    #[must_use]
    pub fn delayed(&self, k: usize, fill: bool) -> Bitstream {
        if k >= self.len {
            return if fill {
                Bitstream::ones(self.len)
            } else {
                Bitstream::zeros(self.len)
            };
        }
        let word_shift = k / WORD_BITS;
        let bit_shift = (k % WORD_BITS) as u32;
        let mut words = vec![0u64; self.words.len()];
        for w in word_shift..self.words.len() {
            let lo = self.words[w - word_shift];
            words[w] = if bit_shift == 0 {
                lo
            } else {
                let carry = if w > word_shift {
                    self.words[w - word_shift - 1] >> (64 - bit_shift)
                } else {
                    0
                };
                (lo << bit_shift) | carry
            };
        }
        if fill {
            for word in words.iter_mut().take(k / WORD_BITS) {
                *word = u64::MAX;
            }
            if !k.is_multiple_of(WORD_BITS) {
                words[k / WORD_BITS] |= tail_mask_for(k % WORD_BITS);
            }
        }
        let mut out = Bitstream {
            words,
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Returns a rotated copy: bit `i` of the output is bit `(i + k) % len` of the input.
    #[must_use]
    pub fn rotated(&self, k: usize) -> Bitstream {
        if self.len == 0 {
            return self.clone();
        }
        let k = k % self.len;
        if k == 0 {
            return self.clone();
        }
        let head = self
            .slice(k, self.len - k)
            .expect("rotation split is in bounds");
        let tail = self.slice(0, k).expect("rotation split is in bounds");
        head.concat(&tail)
    }

    /// Concatenates two streams.
    #[must_use]
    pub fn concat(&self, other: &Bitstream) -> Bitstream {
        let mut out = self.clone();
        for (w, &word) in other.words.iter().enumerate() {
            out.push_word(word, other.word_len(w));
        }
        out
    }

    /// Returns the sub-stream `[start, start + len)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if the range extends past the end.
    pub fn slice(&self, start: usize, len: usize) -> Result<Bitstream> {
        if start + len > self.len {
            return Err(Error::IndexOutOfBounds {
                index: start + len,
                len: self.len,
            });
        }
        let word_shift = start / WORD_BITS;
        let bit_shift = (start % WORD_BITS) as u32;
        let out = Bitstream::from_word_fn(len, |w| {
            let lo = self.words[word_shift + w] >> bit_shift;
            if bit_shift == 0 {
                lo
            } else {
                let hi = self.words.get(word_shift + w + 1).copied().unwrap_or(0);
                lo | (hi << (64 - bit_shift))
            }
        });
        Ok(out)
    }

    /// Clears any set bits beyond `len` in the last storage word.
    fn mask_tail(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask_for(self.len);
        }
        // Drop any excess words (possible after not()) — keep invariant tight.
        let needed = self.len.div_ceil(WORD_BITS);
        self.words.truncate(needed);
    }
}

/// Mask selecting the low `len % 64` bits: all 64 when `len` is a *positive*
/// multiple of 64, and `0` for a zero-length stream, which has no valid bits
/// at all. (The `0 % 64 == 0` case used to fall into the full-word branch
/// and return `u64::MAX` — harmless internally, since an empty stream stores
/// no words for the mask to touch, but wrong for any caller combining
/// [`Bitstream::tail_mask`] with its own word buffers.)
fn tail_mask_for(len: usize) -> u64 {
    let rem = len % WORD_BITS;
    if len == 0 {
        0
    } else if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

impl fmt::Debug for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 64 {
            write!(
                f,
                "Bitstream({}, p={:.4})",
                self.to_bit_string(),
                self.value()
            )
        } else {
            write!(
                f,
                "Bitstream(len={}, ones={}, p={:.4})",
                self.len,
                self.count_ones(),
                self.value()
            )
        }
    }
}

impl fmt::Display for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bit_string())
    }
}

impl FromIterator<bool> for Bitstream {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Bitstream::from_bools(iter)
    }
}

impl Extend<bool> for Bitstream {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a Bitstream {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the bits of a [`Bitstream`] in stream order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    stream: &'a Bitstream,
    index: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.stream.get(self.index)?;
        self.index += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.stream.len - self.index.min(self.stream.len);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_intro_example_value() {
        // X = 01000100 encodes 0.25 (paper §I).
        let x = Bitstream::parse("01000100").unwrap();
        assert_eq!(x.len(), 8);
        assert_eq!(x.count_ones(), 2);
        assert_eq!(x.value(), 0.25);
    }

    #[test]
    fn paper_intro_example_multiplication() {
        // X = 01010101 (0.5), Y = 11111100 (0.75), Z = X & Y = 01010100 (0.375).
        let x = Bitstream::parse("01010101").unwrap();
        let y = Bitstream::parse("11111100").unwrap();
        let z = x.and(&y);
        assert_eq!(z.to_bit_string(), "01010100");
        assert_eq!(z.value(), 0.375);
    }

    #[test]
    fn bipolar_encoding_example() {
        // X = 01100001 has unipolar 3/8 and bipolar -1/4 (paper §II.A).
        let x = Bitstream::parse("01100001").unwrap();
        assert_eq!(x.value(), 3.0 / 8.0);
        assert!((x.bipolar_value() - (-0.25)).abs() < 1e-12);
    }

    #[test]
    fn zeros_ones_and_counts() {
        let z = Bitstream::zeros(100);
        let o = Bitstream::ones(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(z.value(), 0.0);
        assert_eq!(o.value(), 1.0);
        assert_eq!(o.count_zeros(), 0);
    }

    #[test]
    fn ones_masks_tail_bits() {
        let o = Bitstream::ones(70);
        assert_eq!(o.count_ones(), 70);
        let n = o.not();
        assert_eq!(n.count_ones(), 0);
        assert_eq!(n.len(), 70);
    }

    #[test]
    fn push_get_set_round_trip() {
        let mut s = Bitstream::new();
        for i in 0..200 {
            s.push(i % 3 == 0);
        }
        assert_eq!(s.len(), 200);
        for i in 0..200 {
            assert_eq!(s.bit(i), i % 3 == 0, "bit {i}");
        }
        s.set(7, true);
        assert!(s.bit(7));
        s.set(7, false);
        assert!(!s.bit(7));
        assert_eq!(s.get(200), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut s = Bitstream::zeros(8);
        s.set(8, true);
    }

    #[test]
    fn parse_rejects_empty() {
        assert_eq!(Bitstream::parse("   "), Err(Error::EmptyStream));
    }

    #[test]
    fn parse_skips_separators() {
        let s = Bitstream::parse("1010_1010 11").unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.count_ones(), 6);
    }

    #[test]
    fn not_computes_complement_value() {
        let x = Bitstream::parse("11110000").unwrap();
        let n = x.not();
        assert_eq!(n.value(), 0.5);
        assert_eq!(n.to_bit_string(), "00001111");
        assert_eq!(x.and(&n).count_ones(), 0);
        assert_eq!(x.or(&n).count_ones(), 8);
    }

    #[test]
    fn mux_selects_bitwise() {
        // Paper Fig. 1b: X = 01110111 (0.75), Y = 11000000 (0.25), R = 10100110 (0.5).
        let x = Bitstream::parse("01110111").unwrap();
        let y = Bitstream::parse("11000000").unwrap();
        let r = Bitstream::parse("10100110").unwrap();
        // select = R: output takes X when R=1 else Y.
        let z = Bitstream::mux(&y, &x, &r).unwrap();
        assert_eq!(z.value(), 0.5);
    }

    #[test]
    fn mux_length_mismatch_errors() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(9);
        let r = Bitstream::zeros(8);
        assert!(matches!(
            Bitstream::mux(&a, &b, &r),
            Err(Error::LengthMismatch { .. })
        ));
        assert!(matches!(
            Bitstream::mux(&a, &a, &b),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    fn binary_op_length_mismatch_errors() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(16);
        assert!(a.try_and(&b).is_err());
        assert!(a.try_or(&b).is_err());
        assert!(a.try_xor(&b).is_err());
        assert!(a.try_xnor(&b).is_err());
    }

    #[test]
    fn xnor_is_not_of_xor() {
        let a = Bitstream::parse("1100110011").unwrap();
        let b = Bitstream::parse("1010101010").unwrap();
        assert_eq!(a.xnor(&b), a.xor(&b).not());
    }

    #[test]
    fn delayed_shifts_and_preserves_length() {
        let x = Bitstream::parse("10110011").unwrap();
        let d = x.delayed(2, false);
        assert_eq!(d.to_bit_string(), "00101100");
        assert_eq!(d.len(), 8);
        let d0 = x.delayed(0, true);
        assert_eq!(d0, x);
    }

    #[test]
    fn rotated_preserves_value() {
        let x = Bitstream::parse("10110010").unwrap();
        let r = x.rotated(3);
        assert_eq!(r.count_ones(), x.count_ones());
        assert_eq!(x.rotated(0), x);
        assert_eq!(x.rotated(8), x);
    }

    #[test]
    fn slice_and_concat() {
        let x = Bitstream::parse("1011").unwrap();
        let y = Bitstream::parse("0001").unwrap();
        let c = x.concat(&y);
        assert_eq!(c.to_bit_string(), "10110001");
        assert_eq!(c.slice(4, 4).unwrap(), y);
        assert!(c.slice(6, 4).is_err());
    }

    #[test]
    fn iterator_round_trip() {
        let x = Bitstream::parse("1001110").unwrap();
        let collected: Bitstream = x.iter().collect();
        assert_eq!(collected, x);
        assert_eq!(x.iter().len(), 7);
        let bools = x.to_bools();
        assert_eq!(bools.len(), 7);
        assert_eq!(Bitstream::from_bools(bools), x);
    }

    #[test]
    fn extend_appends() {
        let mut x = Bitstream::parse("10").unwrap();
        x.extend([true, false, true]);
        assert_eq!(x.to_bit_string(), "10101");
    }

    #[test]
    fn debug_format_short_and_long() {
        let short = Bitstream::parse("1010").unwrap();
        assert!(format!("{short:?}").contains("1010"));
        let long = Bitstream::zeros(200);
        assert!(format!("{long:?}").contains("len=200"));
    }

    #[test]
    fn from_fn_matches_definition() {
        let s = Bitstream::from_fn(10, |i| i % 2 == 0);
        assert_eq!(s.to_bit_string(), "1010101010");
    }

    #[test]
    fn word_api_round_trip() {
        let x = Bitstream::from_fn(130, |i| i % 7 == 0);
        assert_eq!(x.as_words().len(), 3);
        assert_eq!(x.word_len(0), 64);
        assert_eq!(x.word_len(2), 2);
        assert_eq!(x.word_len(3), 0);
        assert_eq!(x.tail_mask(), 0b11);
        let rebuilt = Bitstream::from_words(x.as_words().to_vec(), x.len());
        assert_eq!(rebuilt, x);
        let by_fn = Bitstream::from_word_fn(x.len(), |w| x.as_words()[w]);
        assert_eq!(by_fn, x);
    }

    #[test]
    fn words_mut_with_tail_mask() {
        let mut x = Bitstream::zeros(70);
        let mask = x.tail_mask();
        let last = x.as_words().len() - 1;
        x.words_mut()[last] = mask;
        assert_eq!(x.count_ones(), 6);
    }

    /// Regression: a zero-length stream has **no** valid bits, so its tail
    /// mask is `0` — the `0 % 64 == 0` case used to fall into the full-word
    /// branch and claim all 64 bits were valid. A caller AND-ing that mask
    /// into its own word buffer would keep 64 garbage bits alive.
    #[test]
    fn empty_stream_tail_mask_is_zero() {
        assert_eq!(Bitstream::new().tail_mask(), 0);
        assert_eq!(Bitstream::zeros(0).tail_mask(), 0);
        assert_eq!(Bitstream::ones(0).tail_mask(), 0);
        // Positive multiples of 64 still claim the full word; partial words
        // still mask exactly their valid bits.
        assert_eq!(Bitstream::zeros(64).tail_mask(), u64::MAX);
        assert_eq!(Bitstream::zeros(128).tail_mask(), u64::MAX);
        assert_eq!(Bitstream::zeros(1).tail_mask(), 1);
        assert_eq!(Bitstream::zeros(65).tail_mask(), 1);
        // The zero mask composes correctly with caller-side word buffers:
        // masking an arbitrary word selects nothing for an empty stream.
        assert_eq!(0xDEAD_BEEF_u64 & Bitstream::new().tail_mask(), 0);
    }

    /// Regression companion: word iteration over zero-length streams is
    /// empty and stays consistent through the word-level constructors and
    /// combinators.
    #[test]
    fn empty_stream_word_iteration() {
        let empty = Bitstream::zeros(0);
        assert_eq!(empty.len(), 0);
        assert!(empty.as_words().is_empty());
        assert_eq!(empty.word_len(0), 0);
        assert_eq!(empty.count_ones(), 0);
        assert_eq!(Bitstream::from_word_fn(0, |_| u64::MAX), empty);
        assert_eq!(Bitstream::from_words(Vec::new(), 0), empty);
        assert_eq!(empty.not(), empty, "complement of nothing is nothing");
        assert_eq!(empty.map_words(|w| !w), empty);
        assert_eq!(empty.zip_words(&empty).count(), 0);
        let mut pushed = Bitstream::new();
        pushed.push_word(u64::MAX, 0);
        assert_eq!(pushed, empty);
    }

    #[test]
    fn push_word_matches_bit_pushes() {
        for initial in [0usize, 1, 63, 64, 65] {
            for nbits in [0usize, 1, 37, 63, 64] {
                let word = 0xDEAD_BEEF_CAFE_F00Du64;
                let mut a = Bitstream::from_fn(initial, |i| i % 3 == 0);
                let mut b = a.clone();
                a.push_word(word, nbits);
                for i in 0..nbits {
                    b.push((word >> i) & 1 == 1);
                }
                assert_eq!(a, b, "initial {initial} nbits {nbits}");
            }
        }
    }

    #[test]
    fn map_and_zip_combinators() {
        let x = Bitstream::from_fn(100, |i| i % 2 == 0);
        let y = Bitstream::from_fn(100, |i| i % 3 == 0);
        assert_eq!(x.map_words(|w| !w), x.not());
        assert_eq!(x.zip_with_words(&y, |a, b| a & b).unwrap(), x.and(&y));
        assert_eq!(x.zip_words(&y).count(), 2);
        assert!(x.zip_with_words(&Bitstream::zeros(7), |a, _| a).is_err());
    }

    #[test]
    fn word_parallel_matches_reference_at_odd_lengths() {
        use crate::reference;
        for n in [1usize, 2, 63, 64, 65, 127, 128, 129, 1000] {
            let x = Bitstream::from_fn(n, |i| (i * 7 + 3) % 5 < 2);
            let y = Bitstream::from_fn(n, |i| (i * 11 + 1) % 3 == 0);
            assert_eq!(x.and(&y), reference::and(&x, &y).unwrap(), "and n={n}");
            assert_eq!(x.or(&y), reference::or(&x, &y).unwrap(), "or n={n}");
            assert_eq!(x.xor(&y), reference::xor(&x, &y).unwrap(), "xor n={n}");
            assert_eq!(x.xnor(&y), reference::xnor(&x, &y).unwrap(), "xnor n={n}");
            assert_eq!(x.not(), reference::not(&x), "not n={n}");
            assert_eq!(x.count_ones(), reference::count_ones(&x), "count n={n}");
            let sel = Bitstream::from_fn(n, |i| i % 2 == 1);
            assert_eq!(
                Bitstream::mux(&x, &y, &sel).unwrap(),
                reference::mux(&x, &y, &sel).unwrap(),
                "mux n={n}"
            );
            for k in [0usize, 1, 63, 64, 65, n / 2, n, n + 3] {
                assert_eq!(
                    x.delayed(k, false),
                    reference::delayed(&x, k, false),
                    "delay n={n} k={k}"
                );
                assert_eq!(
                    x.delayed(k, true),
                    reference::delayed(&x, k, true),
                    "delay-fill n={n} k={k}"
                );
                assert_eq!(
                    x.rotated(k),
                    reference::rotated(&x, k),
                    "rotate n={n} k={k}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_and_value_never_exceeds_either_input(bits_a in proptest::collection::vec(any::<bool>(), 1..300),
                                                     bits_b in proptest::collection::vec(any::<bool>(), 1..300)) {
            let n = bits_a.len().min(bits_b.len());
            let a = Bitstream::from_bools(bits_a.into_iter().take(n));
            let b = Bitstream::from_bools(bits_b.into_iter().take(n));
            let z = a.and(&b);
            prop_assert!(z.value() <= a.value() + 1e-12);
            prop_assert!(z.value() <= b.value() + 1e-12);
        }

        #[test]
        fn prop_or_value_at_least_either_input(bits_a in proptest::collection::vec(any::<bool>(), 1..300),
                                               bits_b in proptest::collection::vec(any::<bool>(), 1..300)) {
            let n = bits_a.len().min(bits_b.len());
            let a = Bitstream::from_bools(bits_a.into_iter().take(n));
            let b = Bitstream::from_bools(bits_b.into_iter().take(n));
            let z = a.or(&b);
            prop_assert!(z.value() + 1e-12 >= a.value());
            prop_assert!(z.value() + 1e-12 >= b.value());
        }

        #[test]
        fn prop_not_complements_value(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
            let a = Bitstream::from_bools(bits);
            prop_assert!((a.not().value() - (1.0 - a.value())).abs() < 1e-12);
        }

        #[test]
        fn prop_inclusion_exclusion(bits_a in proptest::collection::vec(any::<bool>(), 1..300),
                                    bits_b in proptest::collection::vec(any::<bool>(), 1..300)) {
            let n = bits_a.len().min(bits_b.len());
            let a = Bitstream::from_bools(bits_a.into_iter().take(n));
            let b = Bitstream::from_bools(bits_b.into_iter().take(n));
            let and_ones = a.and(&b).count_ones();
            let or_ones = a.or(&b).count_ones();
            prop_assert_eq!(and_ones + or_ones, a.count_ones() + b.count_ones());
        }

        #[test]
        fn prop_parse_round_trip(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
            let a = Bitstream::from_bools(bits);
            let s = a.to_bit_string();
            prop_assert_eq!(Bitstream::parse(&s).unwrap(), a);
        }

        #[test]
        fn prop_rotation_preserves_ones(bits in proptest::collection::vec(any::<bool>(), 1..300), k in 0usize..600) {
            let a = Bitstream::from_bools(bits);
            prop_assert_eq!(a.rotated(k).count_ones(), a.count_ones());
        }
    }
}
