//! The stochastic computing correlation (SCC) metric of Alaghi & Hayes,
//! as used throughout §II.B and Table II of the paper.
//!
//! For two equal-length streams `X` and `Y`, let
//!
//! * `a` = positions where both are 1,
//! * `b` = positions where `X` is 1 and `Y` is 0,
//! * `c` = positions where `X` is 0 and `Y` is 1,
//! * `d` = positions where both are 0,
//! * `N = a + b + c + d`.
//!
//! Then
//!
//! ```text
//!           ⎧ (ad − bc) / (N·min(a+b, a+c) − (a+b)(a+c))              if ad > bc
//! SCC(X,Y) =⎨
//!           ⎩ (ad − bc) / ((a+b)(a+c) − N·max(a+b + a+c − N, 0))      otherwise
//! ```
//!
//! `SCC = +1` means maximal positive correlation (the 1s overlap as much as the
//! values allow), `SCC = −1` means maximal negative correlation (the 1s overlap
//! as little as possible), and `SCC = 0` means the streams look independent.

use crate::bitstream::Bitstream;
use crate::error::{Error, Result};

/// Joint occurrence counts of two equal-length bitstreams.
///
/// # Example
///
/// ```
/// use sc_bitstream::{Bitstream, JointCounts};
///
/// let x = Bitstream::parse("1100")?;
/// let y = Bitstream::parse("1010")?;
/// let j = JointCounts::from_streams(&x, &y)?;
/// assert_eq!((j.a, j.b, j.c, j.d), (1, 1, 1, 1));
/// assert_eq!(j.scc(), 0.0); // independent-looking
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct JointCounts {
    /// Positions where both streams are 1.
    pub a: u64,
    /// Positions where the first stream is 1 and the second is 0.
    pub b: u64,
    /// Positions where the first stream is 0 and the second is 1.
    pub c: u64,
    /// Positions where both streams are 0.
    pub d: u64,
}

impl JointCounts {
    /// Builds the joint counts of two equal-length streams.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the lengths differ and
    /// [`Error::EmptyStream`] if the streams are empty.
    pub fn from_streams(x: &Bitstream, y: &Bitstream) -> Result<Self> {
        if x.len() != y.len() {
            return Err(Error::LengthMismatch {
                left: x.len(),
                right: y.len(),
            });
        }
        if x.is_empty() {
            return Err(Error::EmptyStream);
        }
        // Word-parallel accumulation: one pass over the packed words, three
        // popcounts per 64 stream bits, no intermediate stream allocation.
        let n = x.len() as u64;
        let (mut a, mut x1, mut y1) = (0u64, 0u64, 0u64);
        for (xw, yw) in x.zip_words(y) {
            a += u64::from((xw & yw).count_ones());
            x1 += u64::from(xw.count_ones());
            y1 += u64::from(yw.count_ones());
        }
        let b = x1 - a;
        let c = y1 - a;
        let d = n - a - b - c;
        Ok(JointCounts { a, b, c, d })
    }

    /// Total number of positions (`N`).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.a + self.b + self.c + self.d
    }

    /// Number of 1s in the first stream (`a + b`).
    #[must_use]
    pub fn ones_x(&self) -> u64 {
        self.a + self.b
    }

    /// Number of 1s in the second stream (`a + c`).
    #[must_use]
    pub fn ones_y(&self) -> u64 {
        self.a + self.c
    }

    /// SC correlation of the counted pair; see the module documentation.
    ///
    /// Returns `0.0` when the denominator is zero (either stream is constant),
    /// matching the convention that a constant stream is uncorrelated with
    /// everything.
    #[must_use]
    pub fn scc(&self) -> f64 {
        let a = self.a as f64;
        let b = self.b as f64;
        let c = self.c as f64;
        let d = self.d as f64;
        let n = a + b + c + d;
        let numer = a * d - b * c;
        let px_ones = a + b;
        let py_ones = a + c;
        let denom = if numer > 0.0 {
            n * px_ones.min(py_ones) - px_ones * py_ones
        } else {
            px_ones * py_ones - n * (px_ones + py_ones - n).max(0.0)
        };
        if denom.abs() < f64::EPSILON {
            0.0
        } else {
            (numer / denom).clamp(-1.0, 1.0)
        }
    }
}

/// SC correlation of two equal-length streams.
///
/// # Panics
///
/// Panics if the streams differ in length or are empty; use
/// [`try_scc`] for a fallible variant.
///
/// # Example
///
/// ```
/// use sc_bitstream::{Bitstream, scc};
///
/// // Table I: positively correlated X and Y.
/// let x = Bitstream::parse("10101010")?;
/// let y = Bitstream::parse("10111011")?;
/// assert_eq!(scc(&x, &y), 1.0);
/// # Ok::<(), sc_bitstream::Error>(())
/// ```
#[must_use]
pub fn scc(x: &Bitstream, y: &Bitstream) -> f64 {
    try_scc(x, y).expect("scc requires non-empty equal-length streams")
}

/// Fallible SC correlation of two equal-length streams.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] or [`Error::EmptyStream`] as appropriate.
pub fn try_scc(x: &Bitstream, y: &Bitstream) -> Result<f64> {
    Ok(JointCounts::from_streams(x, y)?.scc())
}

/// SC correlation computed directly from joint counts.
///
/// Convenience free function mirroring [`JointCounts::scc`].
#[must_use]
pub fn scc_from_counts(counts: JointCounts) -> f64 {
    counts.scc()
}

/// Pairwise SCC matrix for a slice of equal-length streams.
///
/// Entry `(i, j)` is `scc(streams[i], streams[j])`; the diagonal is 1 for
/// non-constant streams and 0 for constant streams (by the zero-denominator
/// convention).
///
/// # Errors
///
/// Returns an error if any pair has mismatched lengths or the streams are empty.
pub fn scc_matrix(streams: &[Bitstream]) -> Result<Vec<Vec<f64>>> {
    let n = streams.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            m[i][j] = if i == j {
                try_scc(&streams[i], &streams[j])?
            } else if j < i {
                m[j][i]
            } else {
                try_scc(&streams[i], &streams[j])?
            };
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bs(s: &str) -> Bitstream {
        Bitstream::parse(s).unwrap()
    }

    #[test]
    fn table1_positively_correlated_pair() {
        // Table I row 1: X = 10101010 (0.5), Y = 10111011 (0.75), positively correlated.
        let x = bs("10101010");
        let y = bs("10111011");
        assert_eq!(scc(&x, &y), 1.0);
        // AND implements min under positive correlation.
        assert_eq!(x.and(&y).value(), 0.5);
    }

    #[test]
    fn table1_negatively_correlated_pair() {
        // Table I row 2: X = 10101010 (0.5), Y = 11011101 (0.75), negatively correlated.
        let x = bs("10101010");
        let y = bs("11011101");
        assert_eq!(scc(&x, &y), -1.0);
        // AND implements max(0, pX + pY - 1) under negative correlation.
        assert_eq!(x.and(&y).value(), 0.25);
    }

    #[test]
    fn table1_uncorrelated_pair() {
        // Table I row 3: X = 10101010 (0.5), Y = 11111100 (0.75), uncorrelated.
        let x = bs("10101010");
        let y = bs("11111100");
        assert_eq!(scc(&x, &y), 0.0);
        assert_eq!(x.and(&y).value(), 0.375);
    }

    #[test]
    fn maximal_negative_same_value() {
        let x = bs("1010");
        let y = bs("0101");
        assert_eq!(scc(&x, &y), -1.0);
    }

    #[test]
    fn maximal_negative_overlapping_values() {
        // pX = pY = 0.75: total ones 6 > N = 4, so some overlap is forced;
        // the minimum-overlap arrangement still has SCC = -1.
        let x = bs("1110");
        let y = bs("0111");
        assert_eq!(scc(&x, &y), -1.0);
    }

    #[test]
    fn identical_streams_are_maximally_positive() {
        let x = bs("1100101");
        assert_eq!(scc(&x, &x), 1.0);
    }

    #[test]
    fn constant_stream_is_uncorrelated_with_everything() {
        let ones = Bitstream::ones(16);
        let zeros = Bitstream::zeros(16);
        let x = bs("1010101010101010");
        assert_eq!(scc(&ones, &x), 0.0);
        assert_eq!(scc(&zeros, &x), 0.0);
        assert_eq!(scc(&ones, &zeros), 0.0);
    }

    #[test]
    fn joint_counts_fields() {
        let x = bs("110010");
        let y = bs("101010");
        let j = JointCounts::from_streams(&x, &y).unwrap();
        assert_eq!(j.a, 2); // positions 0 and 4
        assert_eq!(j.b, 1); // position 1
        assert_eq!(j.c, 1); // position 2
        assert_eq!(j.d, 2); // positions 3 and 5
        assert_eq!(j.total(), 6);
        assert_eq!(j.ones_x(), 3);
        assert_eq!(j.ones_y(), 3);
        assert_eq!(scc_from_counts(j), j.scc());
    }

    #[test]
    fn length_mismatch_and_empty_errors() {
        let x = bs("1010");
        let y = bs("10100");
        assert!(try_scc(&x, &y).is_err());
        let e = Bitstream::new();
        assert!(JointCounts::from_streams(&e, &e).is_err());
    }

    #[test]
    fn scc_matrix_is_symmetric() {
        let streams = vec![bs("10101010"), bs("10111011"), bs("11111100")];
        let m = scc_matrix(&streams).unwrap();
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, value) in row.iter().enumerate() {
                assert!((value - m[j][i]).abs() < 1e-12);
            }
        }
    }

    /// Builds the maximally positively correlated pair of values (px, py):
    /// both streams put their 1s at the start.
    fn max_pos_pair(kx: usize, ky: usize, n: usize) -> (Bitstream, Bitstream) {
        (
            Bitstream::from_fn(n, |i| i < kx),
            Bitstream::from_fn(n, |i| i < ky),
        )
    }

    /// Builds the maximally negatively correlated pair: X puts 1s at the
    /// start, Y puts 1s at the end.
    fn max_neg_pair(kx: usize, ky: usize, n: usize) -> (Bitstream, Bitstream) {
        (
            Bitstream::from_fn(n, |i| i < kx),
            Bitstream::from_fn(n, |i| i >= n - ky),
        )
    }

    #[test]
    fn exhaustive_extremes_small_n() {
        let n = 16;
        for kx in 1..n {
            for ky in 1..n {
                let (x, y) = max_pos_pair(kx, ky, n);
                assert_eq!(scc(&x, &y), 1.0, "positive extreme kx={kx} ky={ky}");
                let (x, y) = max_neg_pair(kx, ky, n);
                assert_eq!(scc(&x, &y), -1.0, "negative extreme kx={kx} ky={ky}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_scc_in_range(bits_a in proptest::collection::vec(any::<bool>(), 1..400),
                             bits_b in proptest::collection::vec(any::<bool>(), 1..400)) {
            let n = bits_a.len().min(bits_b.len());
            let a = Bitstream::from_bools(bits_a.into_iter().take(n));
            let b = Bitstream::from_bools(bits_b.into_iter().take(n));
            let s = scc(&a, &b);
            prop_assert!((-1.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_scc_symmetric(bits_a in proptest::collection::vec(any::<bool>(), 1..400),
                              bits_b in proptest::collection::vec(any::<bool>(), 1..400)) {
            let n = bits_a.len().min(bits_b.len());
            let a = Bitstream::from_bools(bits_a.into_iter().take(n));
            let b = Bitstream::from_bools(bits_b.into_iter().take(n));
            prop_assert!((scc(&a, &b) - scc(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn prop_self_correlation_is_one_or_zero(bits in proptest::collection::vec(any::<bool>(), 1..400)) {
            let a = Bitstream::from_bools(bits);
            let s = scc(&a, &a);
            let ones = a.count_ones();
            if ones == 0 || ones == a.len() {
                prop_assert_eq!(s, 0.0);
            } else {
                prop_assert_eq!(s, 1.0);
            }
        }

        #[test]
        fn prop_complement_correlation_is_negative(bits in proptest::collection::vec(any::<bool>(), 2..400)) {
            let a = Bitstream::from_bools(bits);
            let ones = a.count_ones();
            // Exclude constant streams where SCC is 0 by convention.
            prop_assume!(ones > 0 && ones < a.len());
            let s = scc(&a, &a.not());
            prop_assert_eq!(s, -1.0);
        }
    }
}
