//! # sc-sim
//!
//! A small cycle-level simulation framework for stochastic-computing circuits.
//!
//! The paper models accelerator quality with "a cycle-level simulator which
//! uses models that have been verified against RTL simulation traces" (§IV.A).
//! This crate provides that layer: circuits are netlists of [`Component`]s
//! (gates, flip-flops, and arbitrary streaming state machines) connected by
//! nets, evaluated one clock cycle at a time with proper sequential /
//! combinational ordering.
//!
//! The higher-level crates use it three ways:
//!
//! * to cross-check the bitstream-level functional models of the correlation
//!   manipulating circuits against gate/FSM-level implementations,
//! * to cross-check **compiled `sc_graph` dataflow plans** — not only
//!   hand-built circuits — against gate-level netlists of the same design
//!   (see the workspace `graph_equivalence` suite, which runs a compiled
//!   graph node and a simulated gate over the same streams and demands
//!   bit-identical output), and
//! * to count switching activity for the `sc-hwcost` power model.
//!
//! # Example
//!
//! ```
//! use sc_sim::{Circuit, components::AndGate};
//! use sc_bitstream::Bitstream;
//!
//! // Build the SC multiplier of Fig. 1a: a single AND gate.
//! let mut circuit = Circuit::new();
//! let x = circuit.add_input("x");
//! let y = circuit.add_input("y");
//! let z = circuit.add_component(AndGate::new(), &[x, y])[0];
//! circuit.mark_output("z", z);
//!
//! let sx = Bitstream::parse("01010101")?;
//! let sy = Bitstream::parse("00111111")?;
//! let out = circuit.run(&[("x", sx), ("y", sy)])?;
//! assert_eq!(out["z"].value(), 0.375);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod component;
pub mod components;
pub mod trace;

pub use circuit::{Circuit, NetId, SimError};
pub use component::Component;
pub use trace::Trace;
