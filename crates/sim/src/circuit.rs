//! Netlist construction and cycle-by-cycle evaluation.

use crate::component::Component;
use crate::trace::Trace;
use sc_bitstream::Bitstream;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a single-bit net (wire) in a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(usize);

impl NetId {
    /// Raw index of the net, usable as a dense array key.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors raised while building or running a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A component was connected to the wrong number of input nets.
    PortCountMismatch {
        /// Component name.
        component: String,
        /// Nets supplied.
        supplied: usize,
        /// Ports expected.
        expected: usize,
    },
    /// The combinational logic contains a loop not broken by a flip-flop.
    CombinationalLoop,
    /// A named primary input was not supplied a stimulus stream.
    MissingInput(String),
    /// Two stimulus streams (or a stream and the requested cycle count) disagree in length.
    StimulusLengthMismatch {
        /// First length observed.
        expected: usize,
        /// Conflicting length.
        found: usize,
    },
    /// An unknown primary input name was supplied.
    UnknownInput(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PortCountMismatch { component, supplied, expected } => write!(
                f,
                "component '{component}' connected to {supplied} nets but has {expected} input ports"
            ),
            SimError::CombinationalLoop => {
                write!(f, "combinational loop detected (not broken by any flip-flop)")
            }
            SimError::MissingInput(name) => write!(f, "no stimulus supplied for input '{name}'"),
            SimError::StimulusLengthMismatch { expected, found } => {
                write!(f, "stimulus length mismatch: {found} vs {expected}")
            }
            SimError::UnknownInput(name) => write!(f, "unknown primary input '{name}'"),
        }
    }
}

impl std::error::Error for SimError {}

struct Instance {
    component: Box<dyn Component>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

/// A netlist of components connected by single-bit nets, evaluated one clock
/// cycle at a time.
///
/// See the crate-level documentation for a usage example.
#[derive(Default)]
pub struct Circuit {
    instances: Vec<Instance>,
    net_count: usize,
    primary_inputs: Vec<(String, NetId)>,
    primary_outputs: Vec<(String, NetId)>,
    /// Transparent-component evaluation order (computed lazily).
    order: Option<Vec<usize>>,
    /// Total number of net value toggles observed across all runs (for
    /// activity-based power estimation).
    toggle_count: u64,
    /// Total number of simulated cycles across all runs.
    cycle_count: u64,
}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Circuit")
            .field("components", &self.instances.len())
            .field("nets", &self.net_count)
            .field("inputs", &self.primary_inputs.len())
            .field("outputs", &self.primary_outputs.len())
            .finish()
    }
}

impl Circuit {
    /// Creates an empty circuit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh unconnected net.
    pub fn add_net(&mut self) -> NetId {
        let id = NetId(self.net_count);
        self.net_count += 1;
        id
    }

    /// Declares a named primary input and returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let net = self.add_net();
        self.primary_inputs.push((name.into(), net));
        net
    }

    /// Adds a component with its input ports connected to `inputs`, returning
    /// the newly allocated output nets (one per output port).
    ///
    /// # Panics
    ///
    /// Panics if the number of supplied nets differs from the component's
    /// input port count. Use [`Circuit::try_add_component`] for a fallible
    /// variant.
    pub fn add_component<C: Component + 'static>(
        &mut self,
        component: C,
        inputs: &[NetId],
    ) -> Vec<NetId> {
        self.try_add_component(component, inputs)
            .expect("component port count mismatch")
    }

    /// Fallible variant of [`Circuit::add_component`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PortCountMismatch`] if the net count is wrong.
    pub fn try_add_component<C: Component + 'static>(
        &mut self,
        component: C,
        inputs: &[NetId],
    ) -> Result<Vec<NetId>, SimError> {
        if inputs.len() != component.num_inputs() {
            return Err(SimError::PortCountMismatch {
                component: component.name().to_string(),
                supplied: inputs.len(),
                expected: component.num_inputs(),
            });
        }
        let outputs: Vec<NetId> = (0..component.num_outputs())
            .map(|_| self.add_net())
            .collect();
        self.instances.push(Instance {
            component: Box::new(component),
            inputs: inputs.to_vec(),
            outputs: outputs.clone(),
        });
        self.order = None;
        Ok(outputs)
    }

    /// Marks a net as a named primary output.
    pub fn mark_output(&mut self, name: impl Into<String>, net: NetId) {
        self.primary_outputs.push((name.into(), net));
    }

    /// Marks a multi-bit bus as primary outputs named `prefix[i]`, LSB first.
    pub fn mark_output_bus(&mut self, prefix: &str, nets: &[NetId]) {
        for (i, net) in nets.iter().enumerate() {
            self.mark_output(format!("{prefix}[{i}]"), *net);
        }
    }

    /// Number of component instances in the circuit.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of nets in the circuit.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Total net toggles observed so far (switching activity).
    #[must_use]
    pub fn toggle_count(&self) -> u64 {
        self.toggle_count
    }

    /// Total cycles simulated so far.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        self.cycle_count
    }

    /// Average switching activity per net per cycle, in `[0, 1]`.
    #[must_use]
    pub fn activity_factor(&self) -> f64 {
        if self.cycle_count == 0 || self.net_count == 0 {
            0.0
        } else {
            self.toggle_count as f64 / (self.cycle_count as f64 * self.net_count as f64)
        }
    }

    /// Resets every component to its power-on state and clears activity counters.
    pub fn reset(&mut self) {
        for inst in &mut self.instances {
            inst.component.reset();
        }
        self.toggle_count = 0;
        self.cycle_count = 0;
    }

    /// Runs the circuit with the given named input stimuli and returns the
    /// streams observed on every marked output.
    ///
    /// All stimulus streams must have equal length; the circuit runs for that
    /// many cycles.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if an input is missing, lengths mismatch, an
    /// unknown input name is supplied, or the netlist contains a
    /// combinational loop.
    pub fn run(
        &mut self,
        stimuli: &[(&str, Bitstream)],
    ) -> Result<HashMap<String, Bitstream>, SimError> {
        let (outputs, _) = self.run_traced(stimuli, false)?;
        Ok(outputs)
    }

    /// Like [`Circuit::run`] but with an explicit cycle count, so circuits
    /// with *no* primary inputs (e.g. fully generator-driven designs lowered
    /// from dataflow plans) can still be clocked.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::run`], plus a
    /// [`SimError::StimulusLengthMismatch`] if any stimulus stream's length
    /// differs from `cycles`.
    pub fn run_cycles(
        &mut self,
        stimuli: &[(&str, Bitstream)],
        cycles: usize,
    ) -> Result<HashMap<String, Bitstream>, SimError> {
        let (outputs, _) = self.run_traced_cycles(stimuli, Some(cycles), false)?;
        Ok(outputs)
    }

    /// Like [`Circuit::run`] but optionally records a full per-net [`Trace`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::run`].
    pub fn run_traced(
        &mut self,
        stimuli: &[(&str, Bitstream)],
        capture_trace: bool,
    ) -> Result<(HashMap<String, Bitstream>, Option<Trace>), SimError> {
        self.run_traced_cycles(stimuli, None, capture_trace)
    }

    /// The most general run entry point: optional explicit cycle count plus
    /// optional trace capture.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::run_cycles`].
    pub fn run_traced_cycles(
        &mut self,
        stimuli: &[(&str, Bitstream)],
        explicit_cycles: Option<usize>,
        capture_trace: bool,
    ) -> Result<(HashMap<String, Bitstream>, Option<Trace>), SimError> {
        // Validate stimuli.
        let mut by_name: HashMap<&str, &Bitstream> = HashMap::new();
        let mut cycles: Option<usize> = explicit_cycles;
        for (name, stream) in stimuli {
            if !self.primary_inputs.iter().any(|(n, _)| n == name) {
                return Err(SimError::UnknownInput((*name).to_string()));
            }
            match cycles {
                None => cycles = Some(stream.len()),
                Some(c) if c != stream.len() => {
                    return Err(SimError::StimulusLengthMismatch {
                        expected: c,
                        found: stream.len(),
                    })
                }
                _ => {}
            }
            by_name.insert(name, stream);
        }
        for (name, _) in &self.primary_inputs {
            if !by_name.contains_key(name.as_str()) {
                return Err(SimError::MissingInput(name.clone()));
            }
        }
        let cycles = cycles.unwrap_or(0);

        let order = self.evaluation_order()?;
        let mut nets = vec![false; self.net_count];
        let mut prev_nets = vec![false; self.net_count];
        let mut outputs: HashMap<String, Bitstream> = self
            .primary_outputs
            .iter()
            .map(|(n, _)| (n.clone(), Bitstream::zeros(cycles)))
            .collect();
        let mut trace = capture_trace.then(|| Trace::new(self.net_count));

        let mut scratch_in = Vec::new();
        let mut scratch_out = Vec::new();

        for cycle in 0..cycles {
            // Drive primary inputs.
            for (name, net) in &self.primary_inputs {
                nets[net.index()] = by_name[name.as_str()].bit(cycle);
            }
            // Non-transparent components drive their outputs from state first.
            for inst in self
                .instances
                .iter_mut()
                .filter(|i| !i.component.is_transparent())
            {
                scratch_out.clear();
                scratch_out.resize(inst.outputs.len(), false);
                inst.component.evaluate(&[], &mut scratch_out);
                for (net, &v) in inst.outputs.iter().zip(scratch_out.iter()) {
                    nets[net.index()] = v;
                }
            }
            // Transparent components in topological order.
            for &idx in &order {
                let inst = &mut self.instances[idx];
                scratch_in.clear();
                scratch_in.extend(inst.inputs.iter().map(|n| nets[n.index()]));
                scratch_out.clear();
                scratch_out.resize(inst.outputs.len(), false);
                inst.component.evaluate(&scratch_in, &mut scratch_out);
                for (net, &v) in inst.outputs.iter().zip(scratch_out.iter()) {
                    nets[net.index()] = v;
                }
            }
            // Commit sequential state with settled inputs.
            for inst in &mut self.instances {
                scratch_in.clear();
                scratch_in.extend(inst.inputs.iter().map(|n| nets[n.index()]));
                inst.component.commit(&scratch_in);
            }
            // Record outputs, activity, and trace.
            for (name, net) in &self.primary_outputs {
                if nets[net.index()] {
                    outputs
                        .get_mut(name)
                        .expect("output registered")
                        .set(cycle, true);
                }
            }
            if cycle > 0 {
                self.toggle_count += nets
                    .iter()
                    .zip(prev_nets.iter())
                    .filter(|(a, b)| a != b)
                    .count() as u64;
            }
            prev_nets.copy_from_slice(&nets);
            if let Some(t) = trace.as_mut() {
                t.record_cycle(&nets);
            }
            self.cycle_count += 1;
        }

        Ok((outputs, trace))
    }

    /// Computes (and caches) a topological evaluation order over the
    /// transparent components.
    fn evaluation_order(&mut self) -> Result<Vec<usize>, SimError> {
        if let Some(order) = &self.order {
            return Ok(order.clone());
        }
        // Map each net to the transparent component that drives it.
        let mut driver: HashMap<usize, usize> = HashMap::new();
        for (idx, inst) in self.instances.iter().enumerate() {
            if inst.component.is_transparent() {
                for net in &inst.outputs {
                    driver.insert(net.index(), idx);
                }
            }
        }
        let transparent: Vec<usize> = self
            .instances
            .iter()
            .enumerate()
            .filter(|(_, i)| i.component.is_transparent())
            .map(|(idx, _)| idx)
            .collect();
        // Kahn's algorithm over dependencies between transparent components.
        let mut in_degree: HashMap<usize, usize> = transparent.iter().map(|&i| (i, 0)).collect();
        let mut dependents: HashMap<usize, Vec<usize>> = HashMap::new();
        for &idx in &transparent {
            for net in &self.instances[idx].inputs {
                if let Some(&dep) = driver.get(&net.index()) {
                    *in_degree.get_mut(&idx).expect("present") += 1;
                    dependents.entry(dep).or_default().push(idx);
                }
            }
        }
        let mut ready: Vec<usize> = transparent
            .iter()
            .copied()
            .filter(|i| in_degree[i] == 0)
            .collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(transparent.len());
        while let Some(idx) = ready.pop() {
            order.push(idx);
            if let Some(deps) = dependents.get(&idx) {
                for &d in deps {
                    let e = in_degree.get_mut(&d).expect("present");
                    *e -= 1;
                    if *e == 0 {
                        ready.push(d);
                    }
                }
            }
        }
        if order.len() != transparent.len() {
            return Err(SimError::CombinationalLoop);
        }
        self.order = Some(order.clone());
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{AndGate, Constant, DFlipFlop, Mux2, NotGate, OrGate, XorGate};

    fn bs(s: &str) -> Bitstream {
        Bitstream::parse(s).unwrap()
    }

    #[test]
    fn and_gate_multiplies() {
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let y = c.add_input("y");
        let z = c.add_component(AndGate::new(), &[x, y])[0];
        c.mark_output("z", z);
        let out = c
            .run(&[("x", bs("01010101")), ("y", bs("00111111"))])
            .unwrap();
        assert_eq!(out["z"], bs("00010101"));
        assert_eq!(out["z"].value(), 0.375);
        assert_eq!(c.component_count(), 1);
        assert!(c.net_count() >= 3);
    }

    #[test]
    fn mux_adder_matches_paper_example() {
        // Fig. 1b: X = 01110111, Y = 11000000, R = 10100110 -> Z = value 0.5.
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let y = c.add_input("y");
        let r = c.add_input("r");
        let z = c.add_component(Mux2::new(), &[y, x, r])[0];
        c.mark_output("z", z);
        let out = c
            .run(&[
                ("x", bs("01110111")),
                ("y", bs("11000000")),
                ("r", bs("10100110")),
            ])
            .unwrap();
        assert_eq!(out["z"].value(), 0.5);
    }

    #[test]
    fn chained_gates_evaluate_in_topological_order() {
        // z = (x & y) | !x, built so the OR depends on two other gates.
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let y = c.add_input("y");
        let a = c.add_component(AndGate::new(), &[x, y])[0];
        let nx = c.add_component(NotGate::new(), &[x])[0];
        let z = c.add_component(OrGate::new(), &[a, nx])[0];
        c.mark_output("z", z);
        let out = c.run(&[("x", bs("0011")), ("y", bs("0101"))]).unwrap();
        assert_eq!(out["z"], bs("1101"));
    }

    #[test]
    fn dff_delays_stream() {
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let q = c.add_component(DFlipFlop::new(), &[x])[0];
        c.mark_output("q", q);
        let out = c.run(&[("x", bs("10110"))]).unwrap();
        assert_eq!(out["q"], bs("01011"));
    }

    #[test]
    fn feedback_through_dff_is_legal() {
        // Toggle circuit: q_next = !q.
        let mut c = Circuit::new();
        let x = c.add_input("x"); // unused but provides cycle count
        let _ = x;
        let loopback = c.add_net();
        let q = c.add_component(DFlipFlop::new(), &[loopback])[0];
        let nq = c.add_component(NotGate::new(), &[q])[0];
        // Manually alias: we need nq to drive the dff input net. Rebuild with
        // the proper order instead: create dff first with a net we then drive.
        // Since nets are positional, simply add an OR gate as a buffer from nq
        // to the loopback net is not possible; instead check the simpler
        // property that a circuit with a dff plus inverter on its output works.
        c.mark_output("nq", nq);
        let out = c.run(&[("x", bs("0000"))]).unwrap();
        // q starts 0 and never changes because nothing drives the loopback net.
        assert_eq!(out["nq"], bs("1111"));
    }

    #[test]
    fn combinational_loop_detected() {
        let mut c = Circuit::new();
        let x = c.add_input("x");
        // Create a net that will be driven by the gate itself: a -> and -> a.
        let placeholder = c.add_net();
        let out_net = c.add_component(AndGate::new(), &[x, placeholder])[0];
        // Second gate drives the placeholder from the first gate's output,
        // closing a combinational cycle.
        let closing = c.add_component(OrGate::new(), &[out_net, placeholder]);
        // Force the loop: connect another AND whose output *is* the placeholder
        // by building a tiny custom circuit is not possible through the public
        // API (outputs always get fresh nets), so instead verify that the
        // acyclic construction above runs fine.
        let _ = closing;
        c.mark_output("z", out_net);
        assert!(c.run(&[("x", bs("1"))]).is_ok());
    }

    #[test]
    fn missing_and_unknown_inputs_error() {
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let y = c.add_input("y");
        let z = c.add_component(AndGate::new(), &[x, y])[0];
        c.mark_output("z", z);
        assert_eq!(
            c.run(&[("x", bs("01"))]).unwrap_err(),
            SimError::MissingInput("y".to_string())
        );
        assert!(matches!(
            c.run(&[("x", bs("01")), ("y", bs("01")), ("w", bs("01"))])
                .unwrap_err(),
            SimError::UnknownInput(_)
        ));
        assert!(matches!(
            c.run(&[("x", bs("01")), ("y", bs("011"))]).unwrap_err(),
            SimError::StimulusLengthMismatch { .. }
        ));
    }

    #[test]
    fn port_count_mismatch_is_reported() {
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let err = c.try_add_component(AndGate::new(), &[x]).unwrap_err();
        assert!(matches!(
            err,
            SimError::PortCountMismatch {
                expected: 2,
                supplied: 1,
                ..
            }
        ));
        assert!(err.to_string().contains("and2"));
    }

    #[test]
    fn activity_counters_accumulate() {
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let z = c.add_component(NotGate::new(), &[x])[0];
        c.mark_output("z", z);
        let _ = c.run(&[("x", bs("01010101"))]).unwrap();
        assert_eq!(c.cycle_count(), 8);
        assert!(c.toggle_count() > 0);
        assert!(c.activity_factor() > 0.5); // alternating input toggles every net every cycle
        c.reset();
        assert_eq!(c.cycle_count(), 0);
        assert_eq!(c.toggle_count(), 0);
    }

    #[test]
    fn constants_and_xor() {
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let one = c.add_component(Constant::new(true), &[])[0];
        let z = c.add_component(XorGate::new(), &[x, one])[0];
        c.mark_output("z", z);
        let out = c.run(&[("x", bs("0110"))]).unwrap();
        assert_eq!(out["z"], bs("1001"));
    }

    #[test]
    fn run_cycles_clocks_inputless_circuits() {
        use crate::components::UpCounter;
        let mut c = Circuit::new();
        let one = c.add_component(Constant::new(true), &[])[0];
        let bus = c.add_component(UpCounter::new(4), &[one]);
        c.mark_output_bus("cnt", &bus);
        let out = c.run_cycles(&[], 5).unwrap();
        // Final-cycle bus value = 5 (count including the current cycle).
        let count: usize = (0..4)
            .filter(|i| out[&format!("cnt[{i}]")].bit(4))
            .map(|i| 1usize << i)
            .sum();
        assert_eq!(count, 5);
        // Explicit cycle count must agree with stimulus lengths.
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let z = c.add_component(NotGate::new(), &[x])[0];
        c.mark_output("z", z);
        assert!(matches!(
            c.run_cycles(&[("x", bs("0101"))], 5),
            Err(SimError::StimulusLengthMismatch { .. })
        ));
        assert_eq!(
            c.run_cycles(&[("x", bs("0101"))], 4).unwrap()["z"],
            bs("1010")
        );
    }

    #[test]
    fn traced_run_captures_all_nets() {
        let mut c = Circuit::new();
        let x = c.add_input("x");
        let z = c.add_component(NotGate::new(), &[x])[0];
        c.mark_output("z", z);
        let (_, trace) = c.run_traced(&[("x", bs("0101"))], true).unwrap();
        let trace = trace.unwrap();
        assert_eq!(trace.cycles(), 4);
        assert_eq!(trace.net_count(), c.net_count());
        assert_eq!(trace.net_stream(z.index()).unwrap().to_bit_string(), "1010");
    }
}
