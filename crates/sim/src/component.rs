//! The [`Component`] trait: the unit of structure in a simulated circuit.

/// A hardware component evaluated once per clock cycle.
///
/// Components fall into two classes:
///
/// * **transparent** components (gates, multiplexers, Mealy state machines):
///   their outputs for the current cycle depend on the current-cycle inputs
///   (and possibly internal state);
/// * **non-transparent** components (D flip-flops, Moore machines): their
///   outputs depend only on internal state, which makes them legal points to
///   break feedback loops.
///
/// The simulator calls [`Component::evaluate`] for every component each cycle
/// (non-transparent components first, then transparent components in
/// topological order) and then [`Component::commit`] for every component with
/// the final input values of the cycle so sequential state can advance.
pub trait Component: Send {
    /// Short human-readable name used in traces and error messages.
    fn name(&self) -> &str;

    /// Number of input ports.
    fn num_inputs(&self) -> usize;

    /// Number of output ports.
    fn num_outputs(&self) -> usize;

    /// Whether the outputs combinationally depend on the current-cycle inputs.
    fn is_transparent(&self) -> bool {
        true
    }

    /// Computes this cycle's outputs.
    ///
    /// For non-transparent components the `inputs` slice contents are
    /// unspecified and must be ignored.
    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]);

    /// Commits end-of-cycle state given the settled input values.
    ///
    /// The default implementation does nothing (purely combinational logic).
    fn commit(&mut self, inputs: &[bool]) {
        let _ = inputs;
    }

    /// Restores the component to its power-on state.
    fn reset(&mut self) {}
}

impl Component for Box<dyn Component> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn num_inputs(&self) -> usize {
        self.as_ref().num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.as_ref().num_outputs()
    }

    fn is_transparent(&self) -> bool {
        self.as_ref().is_transparent()
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        self.as_mut().evaluate(inputs, outputs);
    }

    fn commit(&mut self, inputs: &[bool]) {
        self.as_mut().commit(inputs);
    }

    fn reset(&mut self) {
        self.as_mut().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Buf;

    impl Component for Buf {
        fn name(&self) -> &str {
            "buf"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
            outputs[0] = inputs[0];
        }
    }

    #[test]
    fn boxed_component_forwards() {
        let mut b: Box<dyn Component> = Box::new(Buf);
        assert_eq!(b.name(), "buf");
        assert_eq!(b.num_inputs(), 1);
        assert_eq!(b.num_outputs(), 1);
        assert!(b.is_transparent());
        let mut out = [false];
        b.evaluate(&[true], &mut out);
        assert!(out[0]);
        b.commit(&[true]);
        b.reset();
    }
}
