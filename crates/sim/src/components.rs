//! Primitive component library: logic gates, multiplexers, flip-flops, and a
//! closure adapter for arbitrary streaming state machines.

use crate::component::Component;

macro_rules! define_gate {
    ($(#[$doc:meta])* $name:ident, $inputs:literal, $label:literal, |$in:ident| $expr:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
        pub struct $name;

        impl $name {
            /// Creates the gate.
            #[must_use]
            pub fn new() -> Self {
                $name
            }
        }

        impl Component for $name {
            fn name(&self) -> &str {
                $label
            }

            fn num_inputs(&self) -> usize {
                $inputs
            }

            fn num_outputs(&self) -> usize {
                1
            }

            fn evaluate(&mut self, $in: &[bool], outputs: &mut [bool]) {
                outputs[0] = $expr;
            }
        }
    };
}

define_gate!(
    /// Two-input AND gate — the SC unipolar multiplier (Fig. 1a) and, with
    /// positively correlated inputs, the SC minimum (Table I).
    AndGate, 2, "and2", |i| i[0] && i[1]
);
define_gate!(
    /// Two-input OR gate — the SC saturating adder (negatively correlated
    /// inputs, Fig. 2b) and the SC maximum (positively correlated inputs).
    OrGate, 2, "or2", |i| i[0] || i[1]
);
define_gate!(
    /// Two-input XOR gate — the SC subtractor `|pX − pY|` with positively
    /// correlated inputs (Fig. 2c).
    XorGate, 2, "xor2", |i| i[0] ^ i[1]
);
define_gate!(
    /// Two-input XNOR gate — the bipolar SC multiplier.
    XnorGate, 2, "xnor2", |i| !(i[0] ^ i[1])
);
define_gate!(
    /// Inverter — computes `1 − pX` (unipolar) or `−x` (bipolar).
    NotGate, 1, "inv", |i| !i[0]
);
define_gate!(
    /// Two-input NAND gate.
    NandGate, 2, "nand2", |i| !(i[0] && i[1])
);
define_gate!(
    /// Two-input NOR gate.
    NorGate, 2, "nor2", |i| !(i[0] || i[1])
);

/// Two-to-one multiplexer: ports are `(in0, in1, select)`; the output is
/// `in1` when `select` is 1 — the SC scaled adder of Fig. 2a when `select`
/// carries an uncorrelated 0.5-valued stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Mux2;

impl Mux2 {
    /// Creates the multiplexer.
    #[must_use]
    pub fn new() -> Self {
        Mux2
    }
}

impl Component for Mux2 {
    fn name(&self) -> &str {
        "mux2"
    }

    fn num_inputs(&self) -> usize {
        3
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        outputs[0] = if inputs[2] { inputs[1] } else { inputs[0] };
    }
}

/// A D flip-flop: the output is the value captured at the end of the previous
/// cycle. Non-transparent, so it legally breaks feedback loops — it is also
/// the *isolator* primitive of Ting & Hayes used as a decorrelation baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct DFlipFlop {
    state: bool,
    initial: bool,
}

impl DFlipFlop {
    /// Creates a flip-flop initialised to 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a flip-flop with an explicit power-on value.
    #[must_use]
    pub fn with_initial(initial: bool) -> Self {
        DFlipFlop {
            state: initial,
            initial,
        }
    }

    /// Current stored value.
    #[must_use]
    pub fn state(&self) -> bool {
        self.state
    }
}

impl Component for DFlipFlop {
    fn name(&self) -> &str {
        "dff"
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn is_transparent(&self) -> bool {
        false
    }

    fn evaluate(&mut self, _inputs: &[bool], outputs: &mut [bool]) {
        outputs[0] = self.state;
    }

    fn commit(&mut self, inputs: &[bool]) {
        self.state = inputs[0];
    }

    fn reset(&mut self) {
        self.state = self.initial;
    }
}

/// Adapter that turns a closure `FnMut(&[bool]) -> Vec<bool>` into a
/// transparent (Mealy) component, so bitstream-level models such as the
/// synchronizer can be dropped into gate-level netlists for cross-checking.
pub struct StreamFn<F> {
    name: String,
    inputs: usize,
    outputs: usize,
    f: F,
}

impl<F> std::fmt::Debug for StreamFn<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamFn")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .finish()
    }
}

impl<F: FnMut(&[bool]) -> Vec<bool> + Send> StreamFn<F> {
    /// Wraps a closure as a component with the given port counts.
    ///
    /// # Panics
    ///
    /// The simulator will panic later if the closure returns a vector whose
    /// length differs from `outputs`.
    #[must_use]
    pub fn new(name: impl Into<String>, inputs: usize, outputs: usize, f: F) -> Self {
        StreamFn {
            name: name.into(),
            inputs,
            outputs,
            f,
        }
    }
}

impl<F: FnMut(&[bool]) -> Vec<bool> + Send> Component for StreamFn<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        self.inputs
    }

    fn num_outputs(&self) -> usize {
        self.outputs
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        let produced = (self.f)(inputs);
        assert_eq!(
            produced.len(),
            outputs.len(),
            "component '{}' produced {} outputs, expected {}",
            self.name,
            produced.len(),
            outputs.len()
        );
        outputs.copy_from_slice(&produced);
    }
}

/// A one-bit full adder: ports are `(a, b, carry_in)`, outputs are
/// `(sum, carry_out)`. The building block of parallel-counter (APC) adder
/// trees and of the correlation-agnostic adder's majority/sum pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FullAdder;

impl FullAdder {
    /// Creates the adder.
    #[must_use]
    pub fn new() -> Self {
        FullAdder
    }
}

impl Component for FullAdder {
    fn name(&self) -> &str {
        "fa"
    }

    fn num_inputs(&self) -> usize {
        3
    }

    fn num_outputs(&self) -> usize {
        2
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        let ones = inputs.iter().filter(|&&b| b).count();
        outputs[0] = ones & 1 == 1; // sum
        outputs[1] = ones >= 2; // carry
    }
}

/// A `bits`-wide up counter with a combinational increment path: the output
/// bus carries `state + enable` (LSB first), so at the final cycle of a run
/// the bus holds the total number of enabled cycles *including* the current
/// one — the S/D converter counter of Fig. 2f readable without an extra
/// drain cycle. The register commits at the end of the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UpCounter {
    bits: u32,
    state: u64,
}

impl UpCounter {
    /// Creates a zeroed counter with `bits` output bits (1–63).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 63.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=63).contains(&bits),
            "counter width {bits} outside supported range 1..=63"
        );
        UpCounter { bits, state: 0 }
    }

    /// The configured output width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The committed count (excluding any in-flight cycle).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.state
    }
}

impl Component for UpCounter {
    fn name(&self) -> &str {
        "counter"
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        self.bits as usize
    }

    fn evaluate(&mut self, inputs: &[bool], outputs: &mut [bool]) {
        let value = (self.state + u64::from(inputs[0])) & ((1u64 << self.bits) - 1);
        for (i, out) in outputs.iter_mut().enumerate() {
            *out = (value >> i) & 1 == 1;
        }
    }

    fn commit(&mut self, inputs: &[bool]) {
        self.state = (self.state + u64::from(inputs[0])) & ((1u64 << self.bits) - 1);
    }

    fn reset(&mut self) {
        self.state = 0;
    }
}

/// A constant-value source component with no inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constant(bool);

impl Constant {
    /// Creates a constant driving the given value.
    #[must_use]
    pub fn new(value: bool) -> Self {
        Constant(value)
    }
}

impl Component for Constant {
    fn name(&self) -> &str {
        "const"
    }

    fn num_inputs(&self) -> usize {
        0
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn evaluate(&mut self, _inputs: &[bool], outputs: &mut [bool]) {
        outputs[0] = self.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval1(c: &mut impl Component, inputs: &[bool]) -> bool {
        let mut out = vec![false; c.num_outputs()];
        c.evaluate(inputs, &mut out);
        out[0]
    }

    #[test]
    fn gate_truth_tables() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (a, b) in cases {
            assert_eq!(eval1(&mut AndGate::new(), &[a, b]), a && b);
            assert_eq!(eval1(&mut OrGate::new(), &[a, b]), a || b);
            assert_eq!(eval1(&mut XorGate::new(), &[a, b]), a ^ b);
            assert_eq!(eval1(&mut XnorGate::new(), &[a, b]), !(a ^ b));
            assert_eq!(eval1(&mut NandGate::new(), &[a, b]), !(a && b));
            assert_eq!(eval1(&mut NorGate::new(), &[a, b]), !(a || b));
        }
        assert!(!eval1(&mut NotGate::new(), &[true]));
        assert!(eval1(&mut NotGate::new(), &[false]));
    }

    #[test]
    fn mux_selects() {
        let mut m = Mux2::new();
        assert!(eval1(&mut m, &[true, false, false]));
        assert!(!eval1(&mut m, &[true, false, true]));
        assert_eq!(m.num_inputs(), 3);
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut d = DFlipFlop::new();
        assert!(!d.is_transparent());
        let mut out = [true];
        d.evaluate(&[], &mut out);
        assert!(!out[0]); // power-on 0
        d.commit(&[true]);
        d.evaluate(&[], &mut out);
        assert!(out[0]);
        assert!(d.state());
        d.reset();
        assert!(!d.state());
        let d1 = DFlipFlop::with_initial(true);
        assert!(d1.state());
    }

    #[test]
    fn stream_fn_wraps_closure_with_state() {
        let mut parity = false;
        let mut c = StreamFn::new("parity", 1, 1, move |i: &[bool]| {
            parity ^= i[0];
            vec![parity]
        });
        assert_eq!(c.name(), "parity");
        assert!(eval1(&mut c, &[true]));
        assert!(!eval1(&mut c, &[true]));
        assert!(!eval1(&mut c, &[false]));
    }

    #[test]
    #[should_panic(expected = "produced")]
    fn stream_fn_panics_on_wrong_arity() {
        let mut c = StreamFn::new("bad", 1, 2, |_: &[bool]| vec![true]);
        let mut out = [false, false];
        c.evaluate(&[true], &mut out);
    }

    #[test]
    fn full_adder_truth_table() {
        let mut fa = FullAdder::new();
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let mut out = [false, false];
                    fa.evaluate(&[a, b, cin], &mut out);
                    let ones = usize::from(a) + usize::from(b) + usize::from(cin);
                    assert_eq!(out[0], ones & 1 == 1, "sum for {a}{b}{cin}");
                    assert_eq!(out[1], ones >= 2, "carry for {a}{b}{cin}");
                }
            }
        }
        assert_eq!(fa.num_inputs(), 3);
        assert_eq!(fa.num_outputs(), 2);
    }

    #[test]
    fn up_counter_counts_and_wraps() {
        let mut c = UpCounter::new(2);
        assert_eq!(c.bits(), 2);
        let mut out = [false, false];
        c.evaluate(&[true], &mut out);
        assert_eq!(out, [true, false], "combinational increment visible");
        c.commit(&[true]);
        assert_eq!(c.count(), 1);
        c.commit(&[true]);
        c.commit(&[true]);
        c.commit(&[true]);
        assert_eq!(c.count(), 0, "2-bit counter wraps at 4");
        c.commit(&[true]);
        c.reset();
        assert_eq!(c.count(), 0);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn zero_width_counter_panics() {
        let _ = UpCounter::new(0);
    }

    #[test]
    fn constant_drives_value() {
        assert!(eval1(&mut Constant::new(true), &[]));
        assert!(!eval1(&mut Constant::new(false), &[]));
    }
}
