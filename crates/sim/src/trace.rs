//! Waveform traces captured during simulation.

use sc_bitstream::Bitstream;
use std::fmt::Write as _;

/// A per-net waveform trace of a simulation run.
///
/// Each net's history is stored as a [`Bitstream`], so all the correlation and
/// value machinery of `sc-bitstream` applies directly to internal signals —
/// e.g. one can measure the SCC between two internal nets of an accelerator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    nets: Vec<Bitstream>,
}

impl Trace {
    /// Creates an empty trace for `net_count` nets.
    #[must_use]
    pub fn new(net_count: usize) -> Self {
        Trace {
            nets: vec![Bitstream::new(); net_count],
        }
    }

    /// Appends one cycle of net values (indexed by net id).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of nets.
    pub fn record_cycle(&mut self, values: &[bool]) {
        assert_eq!(values.len(), self.nets.len(), "trace width mismatch");
        for (net, &v) in self.nets.iter_mut().zip(values.iter()) {
            net.push(v);
        }
    }

    /// Number of nets in the trace.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of cycles recorded.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.nets.first().map_or(0, Bitstream::len)
    }

    /// The recorded waveform of one net.
    #[must_use]
    pub fn net_stream(&self, net_index: usize) -> Option<&Bitstream> {
        self.nets.get(net_index)
    }

    /// Total number of value toggles across all nets (switching activity).
    #[must_use]
    pub fn toggle_count(&self) -> u64 {
        self.nets
            .iter()
            .map(|n| (1..n.len()).filter(|&i| n.bit(i) != n.bit(i - 1)).count() as u64)
            .sum()
    }

    /// Renders the trace in a minimal VCD-like textual format, one line per
    /// net: `net<N>: 0101…`.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, net) in self.nets.iter().enumerate() {
            let _ = writeln!(out, "net{i}: {}", net.to_bit_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut t = Trace::new(2);
        t.record_cycle(&[true, false]);
        t.record_cycle(&[false, false]);
        t.record_cycle(&[true, true]);
        assert_eq!(t.net_count(), 2);
        assert_eq!(t.cycles(), 3);
        assert_eq!(t.net_stream(0).unwrap().to_bit_string(), "101");
        assert_eq!(t.net_stream(1).unwrap().to_bit_string(), "001");
        assert_eq!(t.net_stream(2), None);
        // Net 0 toggles twice, net 1 toggles once.
        assert_eq!(t.toggle_count(), 3);
        let text = t.to_text();
        assert!(text.contains("net0: 101"));
        assert!(text.contains("net1: 001"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut t = Trace::new(2);
        t.record_cycle(&[true]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(0);
        assert_eq!(t.cycles(), 0);
        assert_eq!(t.toggle_count(), 0);
        assert!(t.to_text().is_empty());
    }
}
