//! Criterion benchmarks for SC arithmetic operators and the improved
//! correlation-manipulating operators (Table III designs).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sc_arith::add::{ca_add, MuxAdder};
use sc_arith::maxmin::{and_min, ca_max, or_max};
use sc_arith::multiply::and_multiply;
use sc_bitstream::{Bitstream, Probability};
use sc_convert::DigitalToStochastic;
use sc_core::ops::{desync_saturating_add, sync_max, sync_min};
use sc_rng::{Halton, Lfsr, VanDerCorput};

fn input_pair(n: usize) -> (Bitstream, Bitstream) {
    let mut gx = DigitalToStochastic::new(VanDerCorput::new());
    let mut gy = DigitalToStochastic::new(Halton::new(3));
    (
        gx.generate(Probability::saturating(0.5), n),
        gy.generate(Probability::saturating(0.75), n),
    )
}

fn bench_operators(c: &mut Criterion) {
    let n = 1024usize;
    let (x, y) = input_pair(n);
    let mut group = c.benchmark_group("arith/operators");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("and-multiply", |b| {
        b.iter(|| and_multiply(&x, &y).expect("lengths"))
    });
    group.bench_function("mux-add", |b| {
        b.iter(|| {
            let mut adder = MuxAdder::new(Lfsr::new(16, 0xACE1));
            adder.add(&x, &y).expect("lengths")
        })
    });
    group.bench_function("ca-add", |b| b.iter(|| ca_add(&x, &y).expect("lengths")));
    group.bench_function("or-max", |b| b.iter(|| or_max(&x, &y).expect("lengths")));
    group.bench_function("and-min", |b| b.iter(|| and_min(&x, &y).expect("lengths")));
    group.bench_function("ca-max", |b| b.iter(|| ca_max(&x, &y).expect("lengths")));
    group.finish();
}

fn bench_improved_operators(c: &mut Criterion) {
    let n = 1024usize;
    let (x, y) = input_pair(n);
    let mut group = c.benchmark_group("arith/improved-operators");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("sync-max-d1", |b| {
        b.iter(|| sync_max(&x, &y, 1).expect("lengths"))
    });
    group.bench_function("sync-min-d1", |b| {
        b.iter(|| sync_min(&x, &y, 1).expect("lengths"))
    });
    group.bench_function("desync-satadd-d1", |b| {
        b.iter(|| desync_saturating_add(&x, &y, 1).expect("lengths"))
    });
    group.finish();
}

/// Bit-serial reference vs word-parallel kernel pairs: the speedup evidence
/// for the packed-word execution engine.
fn bench_word_parallel_vs_bit_serial(c: &mut Criterion) {
    let n = 4096usize;
    let (x, y) = input_pair(n);
    let mut group = c.benchmark_group("arith/word-parallel-vs-bit-serial");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("and-multiply/bit-serial", |b| {
        b.iter(|| sc_bitstream::reference::and(&x, &y).expect("lengths"))
    });
    group.bench_function("and-multiply/word-parallel", |b| {
        b.iter(|| and_multiply(&x, &y).expect("lengths"))
    });
    group.bench_function("or-max/bit-serial", |b| {
        b.iter(|| sc_bitstream::reference::or(&x, &y).expect("lengths"))
    });
    group.bench_function("or-max/word-parallel", |b| {
        b.iter(|| or_max(&x, &y).expect("lengths"))
    });
    group.bench_function("scc/bit-serial", |b| {
        b.iter(|| {
            sc_bitstream::reference::joint_counts(&x, &y)
                .expect("lengths")
                .scc()
        })
    });
    group.bench_function("scc/word-parallel", |b| {
        b.iter(|| sc_bitstream::scc(&x, &y))
    });
    group.bench_function("ca-add/bit-serial", |b| {
        b.iter(|| sc_arith::reference::ca_add(&x, &y).expect("lengths"))
    });
    group.bench_function("ca-add/word-parallel", |b| {
        b.iter(|| ca_add(&x, &y).expect("lengths"))
    });
    group.bench_function("ca-max/bit-serial", |b| {
        b.iter(|| sc_arith::reference::ca_max(&x, &y).expect("lengths"))
    });
    group.bench_function("ca-max/word-parallel", |b| {
        b.iter(|| ca_max(&x, &y).expect("lengths"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_operators, bench_improved_operators, bench_word_parallel_vs_bit_serial
}
criterion_main!(benches);
