//! Criterion throughput benchmarks for the correlation manipulating circuits:
//! synchronizer, desynchronizer, and decorrelator versus stream length and
//! save depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_bitstream::{Bitstream, Probability};
use sc_convert::DigitalToStochastic;
use sc_core::{CorrelationManipulator, Decorrelator, Desynchronizer, Isolator, Synchronizer};
use sc_rng::{Halton, VanDerCorput};

fn input_pair(n: usize) -> (Bitstream, Bitstream) {
    let mut gx = DigitalToStochastic::new(VanDerCorput::new());
    let mut gy = DigitalToStochastic::new(Halton::new(3));
    (
        gx.generate(Probability::saturating(0.5), n),
        gy.generate(Probability::saturating(0.75), n),
    )
}

fn bench_stream_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("manipulators/stream-length");
    for &n in &[256usize, 1024, 4096] {
        let (x, y) = input_pair(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("synchronizer-d1", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Synchronizer::new(1);
                m.process(&x, &y).expect("lengths")
            })
        });
        group.bench_with_input(BenchmarkId::new("desynchronizer-d1", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Desynchronizer::new(1);
                m.process(&x, &y).expect("lengths")
            })
        });
        group.bench_with_input(BenchmarkId::new("decorrelator-d4", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Decorrelator::new(4);
                m.process(&x, &y).expect("lengths")
            })
        });
        group.bench_with_input(BenchmarkId::new("isolator-k1", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Isolator::new(1);
                m.process(&x, &y).expect("lengths")
            })
        });
    }
    group.finish();
}

fn bench_save_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("manipulators/save-depth");
    let (x, y) = input_pair(1024);
    for &depth in &[1u32, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("synchronizer", depth), &depth, |b, &d| {
            b.iter(|| {
                let mut m = Synchronizer::new(d);
                m.process(&x, &y).expect("lengths")
            })
        });
    }
    group.finish();
}

/// Word-staged `process` vs the retained `process_bit_serial` for each
/// manipulator, plus the fused chain vs stage-wise processing.
fn bench_word_parallel_vs_bit_serial(c: &mut Criterion) {
    let n = 4096usize;
    let (x, y) = input_pair(n);
    let mut group = c.benchmark_group("manipulators/word-parallel-vs-bit-serial");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("isolator-k17/bit-serial", |b| {
        b.iter(|| {
            Isolator::new(17)
                .process_bit_serial(&x, &y)
                .expect("lengths")
        })
    });
    group.bench_function("isolator-k17/word-parallel", |b| {
        b.iter(|| Isolator::new(17).process(&x, &y).expect("lengths"))
    });
    group.bench_function("synchronizer-d1/bit-serial", |b| {
        b.iter(|| {
            Synchronizer::new(1)
                .process_bit_serial(&x, &y)
                .expect("lengths")
        })
    });
    group.bench_function("synchronizer-d1/word-staged", |b| {
        b.iter(|| Synchronizer::new(1).process(&x, &y).expect("lengths"))
    });
    group.bench_function("decorrelator-d4/bit-serial", |b| {
        b.iter(|| {
            Decorrelator::new(4)
                .process_bit_serial(&x, &y)
                .expect("lengths")
        })
    });
    group.bench_function("decorrelator-d4/word-staged", |b| {
        b.iter(|| Decorrelator::new(4).process(&x, &y).expect("lengths"))
    });

    let make_chain = || {
        let mut chain = sc_core::ManipulatorChain::new();
        chain.push(Synchronizer::new(1));
        chain.push(Isolator::new(4));
        chain.push(Desynchronizer::new(1));
        chain
    };
    group.bench_function("chain-3-stages/stage-wise-bit-serial", |b| {
        b.iter(|| make_chain().process_bit_serial(&x, &y).expect("lengths"))
    });
    group.bench_function("chain-3-stages/fused-word", |b| {
        b.iter(|| make_chain().process(&x, &y).expect("lengths"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stream_length, bench_save_depth, bench_word_parallel_vs_bit_serial
}
criterion_main!(benches);
