//! Criterion benchmarks for the stochastic-number sources: raw sample
//! generation and full digital-to-stochastic conversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_bitstream::Probability;
use sc_convert::DigitalToStochastic;
use sc_rng::{build_source, RandomSource, RngKind};

const KINDS: [RngKind; 5] = [
    RngKind::Lfsr,
    RngKind::VanDerCorput,
    RngKind::Halton,
    RngKind::Sobol,
    RngKind::Counter,
];

fn bench_raw_samples(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng/raw-samples");
    let samples = 4096u64;
    group.throughput(Throughput::Elements(samples));
    for kind in KINDS {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut source = build_source(kind);
            b.iter(|| {
                let mut acc = 0.0;
                for _ in 0..samples {
                    acc += source.next_unit();
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_stream_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng/d2s-generation");
    let n = 1024usize;
    group.throughput(Throughput::Elements(n as u64));
    for kind in KINDS {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut d2s = DigitalToStochastic::new(build_source(kind));
                d2s.generate(Probability::saturating(0.375), n)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_raw_samples, bench_stream_generation
}
criterion_main!(benches);
