//! Criterion benchmarks for the Gaussian-blur → edge-detector accelerator
//! simulation (Table IV workload) across the three correlation-handling
//! variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_image::{run_float_pipeline, run_sc_pipeline, GrayImage, PipelineConfig, PipelineVariant};
use std::time::Duration;

fn bench_variants(c: &mut Criterion) {
    let image = GrayImage::gaussian_blob(12, 12);
    let config = PipelineConfig {
        stream_length: 64,
        tile_size: 6,
        ..PipelineConfig::default()
    };
    let mut group = c.benchmark_group("pipeline/sc-variants");
    group.throughput(Throughput::Elements(image.pixel_count() as u64));
    for variant in PipelineVariant::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| b.iter(|| run_sc_pipeline(&image, variant, &config).expect("pipeline")),
        );
    }
    group.finish();
}

fn bench_float_reference(c: &mut Criterion) {
    let image = GrayImage::gaussian_blob(64, 64);
    let mut group = c.benchmark_group("pipeline/float-reference");
    group.throughput(Throughput::Elements(image.pixel_count() as u64));
    group.bench_function("gaussian-blur+roberts-cross", |b| {
        b.iter(|| run_float_pipeline(&image))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4));
    targets = bench_variants, bench_float_reference
}
criterion_main!(benches);
