//! # sc-bench
//!
//! Experiment harness for the DATE 2018 correlation-manipulation reproduction.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary in
//! `src/bin/` that regenerates it and prints a paper-vs-measured comparison:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig1_basics` | Fig. 1 — SC multiply and scaled add worked examples |
//! | `table1_and_functions` | Table I — AND-gate functions under ±1 / 0 correlation |
//! | `fig2_operations` | Fig. 2 — accuracy of each correlation-sensitive operation |
//! | `table2_scc` | Table II — SCC before/after each manipulating circuit |
//! | `table3_maxmin` | Table III — accuracy/area/power/energy of max/min designs |
//! | `table4_pipeline` | Table IV — GB→ED accelerator quality, area and energy |
//! | `ablation_depth` | §III.B — save-depth sweep of the synchronizer/desynchronizer |
//! | `ablation_decorrelator` | Fig. 4 — shuffle-buffer depth sweep |
//! | `ablation_compose` | §III.B — series composition of D = 1 circuits |
//! | `ablation_satadd` | Fig. 5c — saturating adder accuracy sweep |
//! | `ablation_length` | §II.A — stream length vs. precision sweep |
//!
//! Five perf-trajectory binaries record engine evidence as JSON:
//! `word_parallel_speedup` (`BENCH_word_parallel.json`, bit-serial vs
//! word-parallel kernels, plus `u64×4` lane-group columns for the FSM
//! laggards), `lane_batch_throughput` (`BENCH_lane_batch.json`, scalar vs
//! lane-batched kernels vs the executor's same-class stream transposition
//! for `ca_max`, `synchronizer_d1` and `decorrelator_d4`),
//! `graph_batch_throughput`
//! (`BENCH_graph_batch.json`, sharded vs single-thread batch execution on
//! the `sc_graph` engine), `tile_batch_throughput`
//! (`BENCH_tile_batch.json`, the `sc_image` cross-tile batch dispatcher vs
//! the sequential per-tile loop, plus speculative table-driven FSM
//! word-stepping vs the bit-serial reference), and
//! `stream_window_throughput` (`BENCH_stream_window.json`, the
//! bounded-window streaming dispatcher: peak live retargeted plans must
//! stay within every window while streaming throughput holds ≥ 0.9× the
//! full dispatch).
//!
//! Criterion throughput benchmarks live in `benches/`.
//!
//! This library crate only holds the small shared reporting helpers used by
//! those binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sc_telemetry::Json;
use std::fmt;

/// The stream length used throughout the paper's evaluation.
pub const PAPER_STREAM_LENGTH: usize = 256;

/// One row of a paper-vs-measured comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Quantity being compared (e.g. `"Sync. Max abs. error"`).
    pub label: String,
    /// Value reported by the paper.
    pub paper: f64,
    /// Value measured by this reproduction.
    pub measured: f64,
}

impl Comparison {
    /// Creates a comparison row.
    #[must_use]
    pub fn new(label: impl Into<String>, paper: f64, measured: f64) -> Self {
        Comparison {
            label: label.into(),
            paper,
            measured,
        }
    }

    /// Relative deviation `|measured − paper| / |paper|`, or the absolute
    /// deviation when the paper value is zero.
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        if self.paper.abs() < f64::EPSILON {
            (self.measured - self.paper).abs()
        } else {
            ((self.measured - self.paper) / self.paper).abs()
        }
    }

    /// Whether paper and measured values agree in sign (treating zero as
    /// matching anything), which is the minimal "shape" requirement for
    /// signed quantities like SCC and bias.
    #[must_use]
    pub fn same_sign(&self) -> bool {
        self.paper == 0.0 || self.measured == 0.0 || (self.paper > 0.0) == (self.measured > 0.0)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<44} paper {:>12.4}   measured {:>12.4}",
            self.label, self.paper, self.measured
        )
    }
}

/// Prints a titled block of comparison rows to stdout.
pub fn print_comparisons(title: &str, rows: &[Comparison]) {
    println!("\n=== {title} ===");
    for row in rows {
        println!("{row}");
    }
}

/// Prints a titled free-form table with a header row and aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with four significant decimals for table cells.
#[must_use]
pub fn cell(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with one decimal for large-magnitude table cells.
#[must_use]
pub fn cell1(v: f64) -> String {
    format!("{v:.1}")
}

/// The host context every `BENCH_*.json` evidence file embeds under a
/// `"host"` key, so a committed number can be read against the machine shape
/// that produced it: worker-thread budget, cargo profile, and the kernel
/// word/lane geometry the engine compiled with.
#[must_use]
pub fn host_context() -> Json {
    let worker_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let cargo_profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    Json::obj(vec![
        ("worker_threads", Json::u64(worker_threads as u64)),
        ("cargo_profile", Json::str(cargo_profile)),
        ("word_bits", Json::u64(64)),
        ("lanes", Json::u64(sc_core::LANES as u64)),
        ("arch", Json::str(std::env::consts::ARCH)),
        ("os", Json::str(std::env::consts::OS)),
    ])
}

/// Best observed call rate (calls per second) of `f` over seven samples,
/// with the repetition count first calibrated so each sample runs for at
/// least ~20 ms and times reliably.
///
/// The shared throughput-gate helper of the `tile_batch_throughput` and
/// `stream_window_throughput` binaries — one calibration loop, so the two
/// gates can never silently measure differently.
pub fn measure_rate<F: FnMut()>(mut f: F) -> f64 {
    use std::time::Instant;
    let mut reps = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        let ns = start.elapsed().as_nanos() as u64;
        if ns >= 20_000_000 || reps >= 1 << 16 {
            break;
        }
        reps = (reps * 20_000_000 / ns.max(1)).clamp(reps + 1, reps * 16);
    }
    let mut best = 0.0f64;
    for _ in 0..7 {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.max(reps as f64 / start.elapsed().as_secs_f64());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_relative_error() {
        let c = Comparison::new("x", 2.0, 2.2);
        assert!((c.relative_error() - 0.1).abs() < 1e-12);
        let z = Comparison::new("zero", 0.0, 0.05);
        assert!((z.relative_error() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn comparison_same_sign() {
        assert!(Comparison::new("a", 0.9, 0.8).same_sign());
        assert!(!Comparison::new("b", 0.9, -0.8).same_sign());
        assert!(Comparison::new("c", 0.0, -0.8).same_sign());
    }

    #[test]
    fn display_contains_both_values() {
        let c = Comparison::new("metric", 1.0, 2.0);
        let s = c.to_string();
        assert!(s.contains("metric"));
        assert!(s.contains("1.0000"));
        assert!(s.contains("2.0000"));
    }

    #[test]
    fn cells_format() {
        assert_eq!(cell(0.5), "0.5000");
        assert_eq!(cell1(1234.56), "1234.6");
    }

    #[test]
    fn host_context_records_the_machine_shape() {
        let host = host_context();
        assert!(host.get("worker_threads").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(host.get("word_bits").and_then(Json::as_u64), Some(64));
        assert_eq!(
            host.get("lanes").and_then(Json::as_u64),
            Some(sc_core::LANES as u64)
        );
        let profile = host.get("cargo_profile").and_then(Json::as_str).unwrap();
        assert!(profile == "debug" || profile == "release");
        // The rendered fragment is itself valid JSON — the hand-assembled
        // bench documents splice it in as text.
        sc_telemetry::json::parse(&host.to_string_compact()).unwrap();
    }

    #[test]
    fn print_helpers_do_not_panic() {
        print_comparisons("demo", &[Comparison::new("a", 1.0, 1.0)]);
        print_table(
            "demo",
            &["col1", "column2"],
            &[
                vec!["1".to_string(), "2".to_string()],
                vec!["longer".to_string(), "4".to_string()],
            ],
        );
    }
}
