//! Reproduces Fig. 2: the correlation-sensitive SC operation set. For every
//! operation the binary measures the mean absolute error twice — once with
//! the input correlation the operation requires, and once with the "wrong"
//! correlation — demonstrating why correlation manipulation matters.

use sc_arith::add::{ca_add, mux_add};
use sc_arith::divide::Divider;
use sc_arith::multiply::and_multiply;
use sc_arith::subtract::xor_subtract;
use sc_bench::{cell, print_table, PAPER_STREAM_LENGTH};
use sc_bitstream::{Bitstream, ErrorStats, Probability};
use sc_convert::{DigitalToStochastic, Regenerator, StochasticToDigital};
use sc_rng::{Halton, Lfsr, VanDerCorput};

const STEPS: u64 = 16;

fn uncorrelated_pair(px: f64, py: f64, n: usize) -> (Bitstream, Bitstream) {
    let mut gx = DigitalToStochastic::new(VanDerCorput::new());
    let mut gy = DigitalToStochastic::new(Halton::new(3));
    (
        gx.generate(Probability::saturating(px), n),
        gy.generate(Probability::saturating(py), n),
    )
}

fn correlated_pair(px: f64, py: f64, n: usize) -> (Bitstream, Bitstream) {
    let mut g = DigitalToStochastic::new(VanDerCorput::new());
    g.generate_correlated_pair(Probability::saturating(px), Probability::saturating(py), n)
}

fn sweep<F: FnMut(f64, f64) -> (f64, f64)>(mut f: F) -> f64 {
    let mut stats = ErrorStats::new();
    for i in 1..STEPS {
        for j in 1..STEPS {
            let (measured, expected) = f(i as f64 / STEPS as f64, j as f64 / STEPS as f64);
            stats.record(measured, expected);
        }
    }
    stats.mean_abs_error()
}

fn main() {
    let n = PAPER_STREAM_LENGTH;
    println!("Fig. 2 — correlation-sensitive SC operations (mean absolute error, N = {n})");

    // (a) Scaled add: needs a select uncorrelated with the operands.
    let add_good = sweep(|px, py| {
        let (x, y) = uncorrelated_pair(px, py, n);
        let mut sel = DigitalToStochastic::new(Lfsr::new(16, 0xACE1));
        let select = sel.generate(Probability::HALF, n);
        (
            mux_add(&x, &y, &select).expect("lengths").value(),
            0.5 * (px + py),
        )
    });
    let add_bad = sweep(|px, py| {
        // Select reuses the X operand's own source: correlated select.
        let (x, y) = uncorrelated_pair(px, py, n);
        let mut sel = DigitalToStochastic::new(VanDerCorput::new());
        let select = sel.generate(Probability::HALF, n);
        (
            mux_add(&x, &y, &select).expect("lengths").value(),
            0.5 * (px + py),
        )
    });

    // (b) Saturating add: needs negative correlation; positive is the failure mode.
    let sat_good = sweep(|px, py| {
        let x = Bitstream::from_fn(n, |i| (i as f64) < px * n as f64);
        let y = Bitstream::from_fn(n, |i| (i as f64) >= n as f64 * (1.0 - py));
        (x.or(&y).value(), (px + py).min(1.0))
    });
    let sat_bad = sweep(|px, py| {
        let (x, y) = correlated_pair(px, py, n);
        (x.or(&y).value(), (px + py).min(1.0))
    });

    // (c) Subtract (|pX - pY|): needs positive correlation.
    let sub_good = sweep(|px, py| {
        let (x, y) = correlated_pair(px, py, n);
        (
            xor_subtract(&x, &y).expect("lengths").value(),
            (px - py).abs(),
        )
    });
    let sub_bad = sweep(|px, py| {
        let (x, y) = uncorrelated_pair(px, py, n);
        (
            xor_subtract(&x, &y).expect("lengths").value(),
            (px - py).abs(),
        )
    });

    // (d) Multiply: needs uncorrelated inputs.
    let mul_good = sweep(|px, py| {
        let (x, y) = uncorrelated_pair(px, py, n);
        (and_multiply(&x, &y).expect("lengths").value(), px * py)
    });
    let mul_bad = sweep(|px, py| {
        let (x, y) = correlated_pair(px, py, n);
        (and_multiply(&x, &y).expect("lengths").value(), px * py)
    });

    // (e) Divide: prefers positively correlated inputs (quotients clamped to 1).
    let div_good = sweep(|px, py| {
        let (px, py) = (px.min(py), py.max(0.25));
        let (x, y) = correlated_pair(px, py, 2048);
        let mut div = Divider::new(Lfsr::new(16, 0x1D0D));
        (
            div.divide(&x, &y).expect("lengths").value(),
            (px / py).min(1.0),
        )
    });
    let div_bad = sweep(|px, py| {
        let (px, py) = (px.min(py), py.max(0.25));
        let (x, y) = uncorrelated_pair(px, py, 2048);
        let mut div = Divider::new(Lfsr::new(16, 0x1D0D));
        (
            div.divide(&x, &y).expect("lengths").value(),
            (px / py).min(1.0),
        )
    });

    // (f/g) Converters: S/D exactness and D/S + regeneration round trip.
    let sd_error = sweep(|px, _| {
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        let s = g.generate(Probability::saturating(px), n);
        (StochasticToDigital::convert(&s).get(), px)
    });
    let regen_error = sweep(|px, _| {
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        let s = g.generate(Probability::saturating(px), n);
        let mut regen = Regenerator::new(Halton::new(3));
        (regen.regenerate(&s).value(), px)
    });

    // Correlation-agnostic adder: accurate under any correlation.
    let ca_any = sweep(|px, py| {
        let (x, y) = correlated_pair(px, py, n);
        (ca_add(&x, &y).expect("lengths").value(), 0.5 * (px + py))
    });

    print_table(
        "Mean absolute error with required vs. violated input correlation",
        &[
            "operation",
            "required corr.",
            "error (required)",
            "error (violated)",
        ],
        &[
            vec![
                "scaled add (MUX)".into(),
                "uncorr. select".into(),
                cell(add_good),
                cell(add_bad),
            ],
            vec![
                "saturating add (OR)".into(),
                "negative".into(),
                cell(sat_good),
                cell(sat_bad),
            ],
            vec![
                "subtract (XOR)".into(),
                "positive".into(),
                cell(sub_good),
                cell(sub_bad),
            ],
            vec![
                "multiply (AND)".into(),
                "uncorrelated".into(),
                cell(mul_good),
                cell(mul_bad),
            ],
            vec![
                "divide (feedback)".into(),
                "positive".into(),
                cell(div_good),
                cell(div_bad),
            ],
            vec![
                "S/D converter".into(),
                "n/a".into(),
                cell(sd_error),
                cell(sd_error),
            ],
            vec![
                "D/S + regeneration".into(),
                "n/a".into(),
                cell(regen_error),
                cell(regen_error),
            ],
            vec![
                "CA add (agnostic)".into(),
                "agnostic".into(),
                cell(ca_any),
                cell(ca_any),
            ],
        ],
    );

    println!("\nExpected shape: each correlation-sensitive row degrades sharply in the");
    println!("'violated' column, while the converter and correlation-agnostic rows do not.");
}
