//! Measures the sharded batch executor of `sc_graph` and records the
//! evidence in `BENCH_graph_batch.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin graph_batch_throughput`.
//! The JSON file is written to the current directory (or to the path given as
//! the first argument). One representative pipeline — two D/S converters, a
//! fused two-stage synchronizer chain, a correlation-agnostic adder, and S/D
//! sinks — is compiled once and executed over batches of 1, 8, and 64
//! independent input sets at 1 worker thread and at the machine's available
//! parallelism, reporting input sets (stream pairs) per second.
//!
//! Gate: at batch 64 the sharded configuration must beat the single-thread
//! configuration when more than one CPU is available; on a single-CPU
//! machine (where sharding can only break even) it must stay within 15% of
//! single-thread throughput, demonstrating that the scoped worker pool adds
//! no meaningful overhead.

use sc_bench::host_context;
use sc_graph::{
    BatchInput, BinaryOp, CompiledGraph, Executor, Graph, ManipulatorKind, PlannerOptions,
};
use sc_rng::SourceSpec;
use std::time::Instant;

const STREAM_BITS: usize = 4096;
const BATCH_SIZES: [usize; 3] = [1, 8, 64];

fn build_plan() -> CompiledGraph {
    let mut g = Graph::new();
    let x = g.generate(0, SourceSpec::Sobol { dimension: 1 });
    let y = g.generate(1, SourceSpec::Halton { base: 3, offset: 0 });
    // Two manipulators in series: compiles to one fused chain step.
    let (sx, sy) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, x, y);
    let (dx, dy) = g.manipulate(ManipulatorKind::Synchronizer { depth: 2 }, sx, sy);
    let z = g.binary(BinaryOp::CaAdd, dx, dy);
    g.sink_value("sum", z);
    g.scc_probe("scc", dx, dy);
    let plan = g
        .compile(&PlannerOptions::default())
        .expect("benchmark graph is valid");
    assert_eq!(plan.report().fused_runs, 1, "chain fusion should engage");
    plan
}

fn batch(size: usize) -> Vec<BatchInput> {
    (0..size)
        .map(|i| {
            let p = (i % 17) as f64 / 17.0;
            BatchInput::with_values(vec![p, 1.0 - 0.5 * p])
        })
        .collect()
}

/// Best observed throughput (input sets per second) over several samples,
/// with the repetition count calibrated so each sample is long enough to
/// time reliably.
fn measure(exec: &Executor, plan: &CompiledGraph, inputs: &[BatchInput]) -> f64 {
    let mut reps = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..reps {
            let out = exec.run_batch(plan, inputs).expect("benchmark executes");
            std::hint::black_box(out);
        }
        let ns = start.elapsed().as_nanos() as u64;
        if ns >= 20_000_000 || reps >= 1 << 16 {
            break;
        }
        reps = (reps * 20_000_000 / ns.max(1)).clamp(reps + 1, reps * 16);
    }
    let mut best = 0.0f64;
    for _ in 0..7 {
        let start = Instant::now();
        for _ in 0..reps {
            let out = exec.run_batch(plan, inputs).expect("benchmark executes");
            std::hint::black_box(out);
        }
        let secs = start.elapsed().as_secs_f64();
        let throughput = (reps as usize * inputs.len()) as f64 / secs;
        best = best.max(throughput);
    }
    best
}

struct Row {
    batch: usize,
    threads: usize,
    items_per_sec: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_graph_batch.json".into());
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // On a single-CPU machine still exercise the sharded path (2 workers);
    // the gate below adapts.
    let sharded_threads = cpus.clamp(2, 8);
    let plan = build_plan();

    let mut rows: Vec<Row> = Vec::new();
    for &size in &BATCH_SIZES {
        let inputs = batch(size);
        for threads in [1usize, sharded_threads] {
            let exec = Executor::new(STREAM_BITS).with_threads(threads);
            let items_per_sec = measure(&exec, &plan, &inputs);
            println!("batch {size:>3}  threads {threads}  {items_per_sec:>12.0} input sets/sec");
            rows.push(Row {
                batch: size,
                threads,
                items_per_sec,
            });
        }
    }

    let throughput = |size: usize, threads: usize| {
        rows.iter()
            .find(|r| r.batch == size && r.threads == threads)
            .expect("configuration measured")
            .items_per_sec
    };
    let single = throughput(64, 1);
    let sharded = throughput(64, sharded_threads);
    let speedup = sharded / single;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"stream_bits\": {STREAM_BITS},\n"));
    json.push_str(&format!(
        "  \"host\": {},\n",
        host_context().to_string_compact()
    ));
    json.push_str(&format!("  \"cpus\": {cpus},\n"));
    json.push_str(&format!("  \"sharded_threads\": {sharded_threads},\n"));
    json.push_str("  \"unit\": \"independent input sets per second, best of 7 samples\",\n");
    json.push_str(&format!("  \"batch64_sharded_speedup\": {speedup:.3},\n"));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch\": {}, \"threads\": {}, \"items_per_sec\": {:.1}}}{}\n",
            row.batch,
            row.threads,
            row.items_per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_graph_batch.json");
    println!("\nwrote {out_path}");

    if cpus > 1 {
        assert!(
            sharded > single,
            "batch-64 sharded throughput ({sharded:.0}/s on {sharded_threads} threads) \
             must beat single-thread ({single:.0}/s) on a {cpus}-CPU machine"
        );
        println!("sharded batch-64 beats single-thread: {speedup:.2}x");
    } else {
        assert!(
            speedup >= 0.85,
            "on a single CPU, sharding must stay within 15% of single-thread \
             throughput (got {speedup:.2}x)"
        );
        println!("single CPU: sharded batch-64 within tolerance of single-thread ({speedup:.2}x)");
    }
}
