//! Reproduces Table I: the functions implemented by a two-input AND gate when
//! its input stochastic numbers are positively correlated, negatively
//! correlated, or uncorrelated.
//!
//! The table is reproduced twice: once on the paper's literal 8-bit example
//! streams, and once as a sweep over a grid of values at N = 256 where the
//! required correlation is produced by the paper's own circuits (synchronizer
//! for +1, desynchronizer for −1, independent low-discrepancy sources for 0).

use sc_bench::{cell, print_comparisons, print_table, Comparison, PAPER_STREAM_LENGTH};
use sc_bitstream::{scc, Bitstream, ErrorStats, Probability};
use sc_convert::DigitalToStochastic;
use sc_core::{CorrelationManipulator, Desynchronizer, Synchronizer};
use sc_rng::{Halton, VanDerCorput};

fn literal_examples() -> Result<(), Box<dyn std::error::Error>> {
    let x = Bitstream::parse("10101010")?;
    let cases = [
        ("positively correlated", "10111011", "min(pX, pY)", 0.5),
        (
            "negatively correlated",
            "11011101",
            "max(0, pX + pY - 1)",
            0.25,
        ),
        ("uncorrelated", "11111100", "pX * pY", 0.375),
    ];
    let mut rows = Vec::new();
    for (label, y_bits, function, expected) in cases {
        let y = Bitstream::parse(y_bits)?;
        let z = x.and(&y);
        rows.push(vec![
            label.to_string(),
            format!("{:+.2}", scc(&x, &y)),
            z.to_bit_string(),
            function.to_string(),
            cell(expected),
            cell(z.value()),
        ]);
    }
    print_table(
        "Table I — literal 8-bit examples (X = 10101010, pX = 0.5, pY = 0.75)",
        &[
            "correlation",
            "SCC",
            "X & Y",
            "function",
            "expected",
            "measured",
        ],
        &rows,
    );
    Ok(())
}

fn swept_examples() {
    let n = PAPER_STREAM_LENGTH;
    let steps = 16u64;
    let mut min_stats = ErrorStats::new();
    let mut sat_stats = ErrorStats::new();
    let mut mul_stats = ErrorStats::new();
    for i in 1..steps {
        for j in 1..steps {
            let px = i as f64 / steps as f64;
            let py = j as f64 / steps as f64;
            let mut gx = DigitalToStochastic::new(VanDerCorput::new());
            let mut gy = DigitalToStochastic::new(Halton::new(3));
            let x = gx.generate(Probability::saturating(px), n);
            let y = gy.generate(Probability::saturating(py), n);

            // Positive correlation via the synchronizer: AND computes min.
            let mut sync = Synchronizer::new(1);
            let (sx, sy) = sync.process(&x, &y).expect("equal lengths");
            min_stats.record(sx.and(&sy).value(), px.min(py));

            // Negative correlation via the desynchronizer: AND computes max(0, px+py-1).
            let mut desync = Desynchronizer::new(1);
            let (dx, dy) = desync.process(&x, &y).expect("equal lengths");
            sat_stats.record(dx.and(&dy).value(), (px + py - 1.0).max(0.0));

            // Uncorrelated: AND computes the product.
            mul_stats.record(x.and(&y).value(), px * py);
        }
    }
    print_comparisons(
        "Table I — swept at N = 256 (mean absolute error of each realised function)",
        &[
            Comparison::new(
                "AND as min (synchronized inputs)",
                0.0,
                min_stats.mean_abs_error(),
            ),
            Comparison::new(
                "AND as saturating subtract (desynchronized)",
                0.0,
                sat_stats.mean_abs_error(),
            ),
            Comparison::new(
                "AND as multiply (uncorrelated)",
                0.0,
                mul_stats.mean_abs_error(),
            ),
        ],
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table I — SC functions implemented by a two-input AND gate");
    literal_examples()?;
    swept_examples();
    Ok(())
}
