//! Measures the warm serving tier (`sc_image::ImageServer` over
//! `sc_graph::Service`) against sequential one-shot pipeline calls,
//! recording the evidence in `BENCH_serving.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin serving_throughput`.
//! The JSON file is written to the current directory (or to the path given
//! as the first argument).
//!
//! Two claims are gated:
//!
//! * **Cross-request coalescing** — two whole-image requests submitted
//!   concurrently for the same kernel must produce lane-batched groups that
//!   mix tiles from both requests (the `CrossRequestLaneJobs` counter), i.e.
//!   the dispatch window genuinely coalesces across request boundaries.
//! * **Warm-tier throughput** — serving N images through one warm server
//!   (shared worker pool, shared plan cache, multiplexed dispatch) must not
//!   fall below N sequential `run_sc_pipeline_with_threads` calls, which
//!   re-plan and re-spin their execution per image. On multi-core machines
//!   the warm tier is expected to win outright; a 1-CPU machine gets a
//!   small scheduling-noise tolerance.

use sc_image::{
    run_sc_pipeline_with_threads, GrayImage, ImageServer, PipelineConfig, PipelineVariant,
};
use sc_telemetry::{Counter, Json, TelemetrySink};
use std::time::Instant;

fn bench_image() -> GrayImage {
    let blob = GrayImage::gaussian_blob(40, 40);
    GrayImage::from_fn(40, 40, |x, y| {
        0.6 * blob.get(x, y) + 0.4 * (x as f64 / 40.0)
    })
}

/// One client's completed-request tallies.
#[derive(Default)]
struct ClientTally {
    latencies_ns: Vec<u64>,
    lane_batched: usize,
    cross_request: usize,
    tiles: usize,
}

fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serving.json".into());
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // On a single-CPU machine still exercise the pool path (2 workers).
    let threads = cpus.clamp(2, 8);

    // 40×40 image, 10-pixel tiles → 16 tiles per request: enough tiles that
    // concurrent requests genuinely interleave inside the dispatch window.
    let img = bench_image();
    let config = PipelineConfig {
        stream_length: 256,
        tile_size: 10,
        ..PipelineConfig::default()
    };
    let variant = PipelineVariant::Synchronizer;
    let clients = 4usize;
    let images_per_client = 6usize;
    let n_images = clients * images_per_client;

    // --- Sequential baseline: N one-shot pipeline calls, each re-planning
    // its tiles and spinning its own executor.
    let t0 = Instant::now();
    for _ in 0..n_images {
        std::hint::black_box(
            run_sc_pipeline_with_threads(&img, variant, &config, threads)
                .expect("baseline pipeline executes"),
        );
    }
    let sequential_secs = t0.elapsed().as_secs_f64();
    let sequential_ips = n_images as f64 / sequential_secs;

    // --- Warm serving tier: one server, `clients` open-loop producers.
    // Each client submits its whole batch without waiting between
    // submissions (backpressure comes from the bounded intake), then drains
    // its handles — so requests from different clients overlap in the
    // dispatch window and same-class tiles coalesce across requests.
    let sink = TelemetrySink::new();
    let server = ImageServer::builder(variant, config.clone().with_telemetry(sink.clone()))
        .with_threads(threads)
        .start()
        .expect("server starts");
    // One warm-up image: compiles the tile classes into the shared cache so
    // the measured window reflects steady-state serving, exactly what the
    // warm tier exists to provide.
    server
        .submit(&img)
        .expect("warm-up submit")
        .wait()
        .expect("warm-up completes");

    let t0 = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut pending = Vec::with_capacity(images_per_client);
                    for _ in 0..images_per_client {
                        pending.push(server.submit(&img).expect("serving submit"));
                    }
                    let mut tally = ClientTally::default();
                    for handle in pending {
                        let response = handle.wait().expect("served image completes");
                        tally.latencies_ns.push(response.attribution.wall_ns);
                        tally.lane_batched += response.lane_batched_jobs;
                        tally.cross_request += response.cross_request_lane_jobs;
                        tally.tiles += response.tiles;
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let serving_secs = t0.elapsed().as_secs_f64();
    let serving_ips = n_images as f64 / serving_secs;
    let speedup = serving_ips / sequential_ips;

    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|t| t.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let p50_ns = quantile_ns(&latencies, 0.50);
    let p99_ns = quantile_ns(&latencies, 0.99);
    let total_tiles: usize = tallies.iter().map(|t| t.tiles).sum();
    let lane_batched: usize = tallies.iter().map(|t| t.lane_batched).sum();
    let cross_request: usize = tallies.iter().map(|t| t.cross_request).sum();
    let cross_share = cross_request as f64 / total_tiles as f64;
    let report = sink.drain();
    drop(server);

    println!(
        "sequential {sequential_ips:>8.2} images/sec   warm serving {serving_ips:>8.2} \
         images/sec   ({speedup:.2}x)"
    );
    println!(
        "request latency p50 {:.2} ms   p99 {:.2} ms   cross-request lane share {:.1}% \
         ({cross_request}/{total_tiles} tiles)",
        p50_ns as f64 / 1e6,
        p99_ns as f64 / 1e6,
        cross_share * 100.0
    );

    // --- Deterministic two-request probe for the coalescing gate: a fresh
    // single-threaded server, two same-kernel images submitted back to
    // back — the dispatcher's round-robin intake must interleave their
    // same-class tiles into mixed lane groups. The submit gap is
    // microseconds against the dispatcher's 50 ms coalescing wait, but the
    // scheduler can in principle starve the second submit, so a few
    // attempts are allowed.
    let mut probe_cross = 0usize;
    for _ in 0..5 {
        let probe_sink = TelemetrySink::new();
        let probe =
            ImageServer::builder(variant, config.clone().with_telemetry(probe_sink.clone()))
                .with_threads(1)
                .start()
                .expect("probe server starts");
        let a = probe.submit(&img).expect("probe submit a");
        let b = probe.submit(&img).expect("probe submit b");
        a.wait().expect("probe a completes");
        b.wait().expect("probe b completes");
        drop(probe);
        probe_cross = probe_sink.drain().counter(Counter::CrossRequestLaneJobs) as usize;
        if probe_cross > 0 {
            break;
        }
    }

    let doc = Json::obj(vec![
        ("cpus", Json::u64(cpus as u64)),
        ("threads", Json::u64(threads as u64)),
        ("host", sc_bench::host_context()),
        (
            "workload",
            Json::str("40x40 image, 10px tiles (16 tiles), N=256, synchronizer variant"),
        ),
        ("clients", Json::u64(clients as u64)),
        ("images", Json::u64(n_images as u64)),
        ("sequential_images_per_sec", Json::fixed(sequential_ips, 2)),
        ("serving_images_per_sec", Json::fixed(serving_ips, 2)),
        ("serving_vs_sequential", Json::fixed(speedup, 3)),
        (
            "request_latency_p50_ms",
            Json::fixed(p50_ns as f64 / 1e6, 3),
        ),
        (
            "request_latency_p99_ms",
            Json::fixed(p99_ns as f64 / 1e6, 3),
        ),
        ("lane_batched_tiles", Json::u64(lane_batched as u64)),
        ("cross_request_lane_tiles", Json::u64(cross_request as u64)),
        ("cross_request_lane_share", Json::fixed(cross_share, 3)),
        (
            "probe_cross_request_lane_tiles",
            Json::u64(probe_cross as u64),
        ),
        ("telemetry", report.to_json()),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_serving.json");
    println!("\nwrote {out_path}");

    // Gate 1: concurrent same-kernel requests coalesce across request
    // boundaries (the deterministic probe; the open-loop run above usually
    // shows a healthy share too, but its interleaving is load-dependent).
    assert!(
        probe_cross > 0,
        "two concurrent same-kernel image requests produced no cross-request \
         lane-batched tiles"
    );
    println!("cross-request coalescing: probe mixed {probe_cross} tiles across requests");

    // Gate 2: the warm tier keeps up with (and normally beats) sequential
    // one-shot calls. A single-CPU runner gets a small tolerance for
    // scheduling noise; with real parallelism the warm tier must win.
    let floor = if cpus > 1 { 1.0 } else { 0.85 };
    assert!(
        speedup >= floor,
        "warm serving ({serving_ips:.2} images/s) fell below {floor:.2}x of sequential \
         one-shot calls ({sequential_ips:.2} images/s) on {cpus} CPUs"
    );
    println!("warm serving holds >= {floor:.2}x sequential throughput ({speedup:.2}x)");
}
