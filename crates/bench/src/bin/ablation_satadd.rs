//! Fig. 5c ablation: accuracy of the saturating adder with and without the
//! desynchronizer, across input correlation regimes, plus its hardware cost
//! relative to the correlation-agnostic adder.

use sc_arith::add::{ca_add, saturating_add};
use sc_bench::{cell, cell1, print_table, PAPER_STREAM_LENGTH};
use sc_bitstream::{Bitstream, ErrorStats, Probability};
use sc_convert::DigitalToStochastic;
use sc_core::ops::desync_saturating_add;
use sc_hwcost::characterize;
use sc_rng::{Halton, VanDerCorput};

const STEPS: u64 = 16;

#[derive(Clone, Copy)]
enum InputRegime {
    PositivelyCorrelated,
    Uncorrelated,
    NegativelyCorrelated,
}

impl InputRegime {
    fn label(self) -> &'static str {
        match self {
            InputRegime::PositivelyCorrelated => "positively correlated",
            InputRegime::Uncorrelated => "uncorrelated",
            InputRegime::NegativelyCorrelated => "negatively correlated",
        }
    }

    fn generate(self, px: f64, py: f64, n: usize) -> (Bitstream, Bitstream) {
        match self {
            InputRegime::PositivelyCorrelated => {
                let mut g = DigitalToStochastic::new(VanDerCorput::new());
                g.generate_correlated_pair(
                    Probability::saturating(px),
                    Probability::saturating(py),
                    n,
                )
            }
            InputRegime::Uncorrelated => {
                let mut gx = DigitalToStochastic::new(VanDerCorput::new());
                let mut gy = DigitalToStochastic::new(Halton::new(3));
                (
                    gx.generate(Probability::saturating(px), n),
                    gy.generate(Probability::saturating(py), n),
                )
            }
            InputRegime::NegativelyCorrelated => (
                Bitstream::from_fn(n, |i| (i as f64) < px * n as f64),
                Bitstream::from_fn(n, |i| (i as f64) >= n as f64 * (1.0 - py)),
            ),
        }
    }
}

fn main() {
    let n = PAPER_STREAM_LENGTH;
    println!("Ablation — saturating adder designs (expected output min(1, pX + pY), N = {n})");

    let regimes = [
        InputRegime::NegativelyCorrelated,
        InputRegime::Uncorrelated,
        InputRegime::PositivelyCorrelated,
    ];
    let mut rows = Vec::new();
    for regime in regimes {
        let mut plain = ErrorStats::new();
        let mut desync = [ErrorStats::new(), ErrorStats::new(), ErrorStats::new()];
        let mut agnostic = ErrorStats::new();
        for i in 1..STEPS {
            for j in 1..STEPS {
                let px = i as f64 / STEPS as f64;
                let py = j as f64 / STEPS as f64;
                let expected = (px + py).min(1.0);
                let (x, y) = regime.generate(px, py, n);
                plain.record(saturating_add(&x, &y).expect("lengths").value(), expected);
                for (slot, depth) in [(0usize, 1u32), (1, 2), (2, 4)] {
                    desync[slot].record(
                        desync_saturating_add(&x, &y, depth)
                            .expect("lengths")
                            .value(),
                        expected,
                    );
                }
                // The scaled CA adder computes (px+py)/2; compare it on the
                // unsaturated half of the range where 2x rescaling is exact.
                if px + py <= 1.0 {
                    agnostic.record(2.0 * ca_add(&x, &y).expect("lengths").value(), expected);
                }
            }
        }
        rows.push(vec![
            regime.label().to_string(),
            cell(plain.mean_abs_error()),
            cell(desync[0].mean_abs_error()),
            cell(desync[1].mean_abs_error()),
            cell(desync[2].mean_abs_error()),
            cell(agnostic.mean_abs_error()),
        ]);
    }
    print_table(
        "Mean absolute error by input correlation regime",
        &[
            "input regime",
            "plain OR",
            "desync+OR (D=1)",
            "desync+OR (D=2)",
            "desync+OR (D=4)",
            "CA adder (x2)",
        ],
        &rows,
    );

    // Hardware comparison.
    let or_only = characterize::or_max();
    let desync_cost = characterize::desynchronizer_saturating_adder_netlist(1).report(n as u64);
    let ca = characterize::correlation_agnostic_adder();
    let rows = vec![
        vec![
            "plain OR".into(),
            cell1(or_only.area_um2),
            cell1(or_only.power_uw),
            cell1(or_only.energy_pj),
        ],
        vec![
            "desynchronizer + OR (D=1)".into(),
            cell1(desync_cost.area_um2),
            cell1(desync_cost.power_uw),
            cell1(desync_cost.energy_pj),
        ],
        vec![
            "correlation-agnostic adder".into(),
            cell1(ca.area_um2),
            cell1(ca.power_uw),
            cell1(ca.energy_pj),
        ],
    ];
    print_table(
        "Hardware cost (256-cycle operation)",
        &["design", "area (um2)", "power (uW)", "energy (pJ)"],
        &rows,
    );
}
