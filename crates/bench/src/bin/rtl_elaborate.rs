//! Measures the `sc_rtl` gate-level lowering backend over the GB→ED tile
//! pipeline and records the evidence in `BENCH_rtl_elaborate.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin rtl_elaborate`. The JSON
//! file is written to the current directory (or to the path given as the
//! first argument).
//!
//! Three things are measured / checked:
//!
//! 1. **Elaboration throughput** — time to lower the full Gaussian-blur →
//!    edge-detect tile plan (planner-inserted synchronizer repairs included)
//!    into one flat `sc_sim` circuit, with the resulting cell / net / gate
//!    counts.
//! 2. **Co-simulation smoke gate** — a reduced tile is clock-cycle
//!    co-simulated and every output pixel must match the word-parallel
//!    executor *bit for bit* (the `rtl_cosim` CI job's cheap in-binary gate).
//! 3. **Structural-vs-table costing gate** — the structurally counted
//!    `sc_hwcost` netlist of the elaborated tile must match the table-driven
//!    bridge exactly.

use sc_bench::host_context;
use sc_graph::cost::compiled_netlist;
use sc_graph::Executor;
use sc_image::{planner_options, tile_graph, GrayImage, PipelineConfig, PipelineVariant};
use sc_rtl::{elaborate, sink_counter_bits};
use std::time::Instant;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_rtl_elaborate.json".into());
    let variant = PipelineVariant::Synchronizer;

    // 1. Elaboration of the full-size (paper-default) tile.
    let full = PipelineConfig::default();
    let img = GrayImage::gaussian_blob(full.tile_size + 4, full.tile_size + 4);
    let tile = tile_graph(&img, 0, 0, variant, &full, 0);
    let plan = tile
        .graph
        .compile(&planner_options(variant, &full))
        .expect("tile graph compiles");
    let start = Instant::now();
    let design = elaborate(&plan, &tile.input, full.stream_length).expect("tile plan lowers");
    let elaborate_us = start.elapsed().as_secs_f64() * 1e6;
    let histogram = design.kind_histogram();
    let netlist = design.netlist("gb-ed-tile", sink_counter_bits(full.stream_length));
    println!(
        "elaborated {} cells / {} nets in {elaborate_us:.0} us ({} plan steps)",
        design.cell_count(),
        design.net_count(),
        plan.step_count()
    );
    println!(
        "structural netlist: {} primitive instances, {:.1} um^2",
        netlist.cell_count(),
        netlist.area_um2()
    );

    // Costing gate: structural == table, primitive by primitive.
    let table = compiled_netlist(&plan, "gb-ed-tile", sink_counter_bits(full.stream_length));
    let collect = |n: &sc_hwcost::Netlist| {
        n.cells()
            .map(|(p, c)| (p.to_string(), c))
            .collect::<std::collections::BTreeMap<_, _>>()
    };
    assert_eq!(
        collect(&netlist),
        collect(&table),
        "structural netlist must match the table-driven cost bridge"
    );
    println!("structural netlist matches table-driven bridge");

    // 2. Co-simulation smoke gate on a reduced tile.
    let quick = PipelineConfig::quick();
    let qimg = GrayImage::gaussian_blob(8, 8);
    let qtile = tile_graph(&qimg, 0, 0, variant, &quick, 0);
    let qplan = qtile
        .graph
        .compile(&planner_options(variant, &quick))
        .expect("quick tile compiles");
    let exec = Executor::new(quick.stream_length)
        .run(&qplan, &qtile.input)
        .expect("executor runs");
    let qdesign = elaborate(&qplan, &qtile.input, quick.stream_length).expect("quick tile lowers");
    let start = Instant::now();
    let rtl = qdesign
        .cosimulate(&qtile.input)
        .expect("co-simulation runs");
    let cosim_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut pixels = 0usize;
    for (_, _, name) in &qtile.sinks {
        let e = exec.value(name).expect("executor pixel");
        let r = rtl.value(name).expect("rtl pixel");
        assert_eq!(
            e.to_bits(),
            r.to_bits(),
            "gate-level pixel {name} diverged from the word-parallel executor"
        );
        pixels += 1;
    }
    println!(
        "co-simulated {} cells x {} cycles in {cosim_ms:.1} ms: {pixels} pixels bit-identical",
        qdesign.cell_count(),
        quick.stream_length
    );

    // JSON report.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"host\": {},\n",
        host_context().to_string_compact()
    ));
    json.push_str(&format!(
        "  \"tile_size\": {},\n  \"stream_length\": {},\n",
        full.tile_size, full.stream_length
    ));
    json.push_str(&format!("  \"plan_steps\": {},\n", plan.step_count()));
    json.push_str(&format!("  \"cells\": {},\n", design.cell_count()));
    json.push_str(&format!("  \"nets\": {},\n", design.net_count()));
    json.push_str(&format!(
        "  \"primitive_instances\": {},\n  \"area_um2\": {:.2},\n",
        netlist.cell_count(),
        netlist.area_um2()
    ));
    json.push_str(&format!("  \"elaborate_us\": {elaborate_us:.1},\n"));
    json.push_str(&format!(
        "  \"cosim_quick_tile_ms\": {cosim_ms:.2},\n  \"cosim_pixels_bit_identical\": {pixels},\n"
    ));
    json.push_str("  \"cell_histogram\": {\n");
    let entries: Vec<String> = histogram
        .iter()
        .map(|(kind, count)| format!("    \"{kind}\": {count}"))
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_rtl_elaborate.json");
    println!("wrote {out_path}");
}
