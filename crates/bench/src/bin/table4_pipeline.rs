//! Reproduces Table IV: quality, area, and energy of the Gaussian-blur →
//! Roberts-cross edge-detector accelerator in its three correlation-handling
//! variants (no manipulation, regeneration, synchronizer), plus the §IV.B
//! correlation-manipulation-overhead comparison.
//!
//! The paper's input images are not published; a synthetic scene (Gaussian
//! blob over a gradient, plus a checkerboard patch) provides both smooth
//! regions and strong edges. Quality is the mean absolute error against the
//! floating-point pipeline on the same image. Pass `--quick` for a smaller
//! image and shorter streams (useful in debug builds).

use sc_bench::{cell, cell1, print_comparisons, print_table, Comparison};
use sc_image::{
    accelerator::cost_all_variants, pipeline::compare_variants, GrayImage, PipelineConfig,
    PipelineVariant,
};

fn synthetic_scene(size: usize) -> GrayImage {
    let blob = GrayImage::gaussian_blob(size, size);
    GrayImage::from_fn(size, size, |x, y| {
        let base = 0.5 * blob.get(x, y) + 0.3 * (x as f64 / size as f64);
        // A checkerboard patch in one corner adds hard edges.
        if x < size / 3 && y < size / 3 && (x / 3 + y / 3) % 2 == 0 {
            (base + 0.4).min(1.0)
        } else {
            base
        }
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (image_size, config) = if quick {
        (
            12,
            PipelineConfig {
                stream_length: 64,
                tile_size: 6,
                ..PipelineConfig::default()
            },
        )
    } else {
        (30, PipelineConfig::default())
    };
    let image = synthetic_scene(image_size);
    println!(
        "Table IV — GB + ED accelerator ({}x{} synthetic image, N = {}, {}x{} tiles)",
        image_size, image_size, config.stream_length, config.tile_size, config.tile_size
    );

    // Quality column.
    let quality = compare_variants(&image, &config).expect("pipeline run");
    // Area / energy columns (frame = 100x100 pixels as a representative frame).
    let costs = cost_all_variants(&config, 100, 100);

    let paper = |variant: PipelineVariant| -> (f64, f64, f64) {
        match variant {
            PipelineVariant::NoManipulation => (24313.0, 1383.0, 0.076),
            PipelineVariant::Regeneration => (34802.0, 1971.0, 0.019),
            PipelineVariant::Synchronizer => (36202.0, 1505.0, 0.020),
        }
    };

    // Our absolute energy scale differs from the paper's by a constant factor
    // (the effective cycle time is calibrated against the per-operation energy
    // of Table III, not against Table IV); report both the raw model output
    // and the values normalised so the no-manipulation baseline matches the
    // paper's 1383 nJ/frame, which makes the ratios directly comparable.
    let baseline_energy = costs
        .iter()
        .find(|c| c.variant == PipelineVariant::NoManipulation)
        .expect("baseline cost")
        .energy_per_frame_nj;
    let normalise = 1383.0 / baseline_energy;

    let rows: Vec<Vec<String>> = PipelineVariant::all()
        .into_iter()
        .map(|variant| {
            let q = quality
                .iter()
                .find(|q| q.variant == variant)
                .expect("quality row");
            let c = costs
                .iter()
                .find(|c| c.variant == variant)
                .expect("cost row");
            let (p_area, p_energy, p_err) = paper(variant);
            vec![
                variant.label().to_string(),
                cell1(p_area),
                cell1(c.area_um2),
                cell1(p_energy),
                cell1(c.energy_per_frame_nj * normalise),
                cell(p_err),
                cell(q.mean_abs_error),
            ]
        })
        .collect();
    print_table(
        "Table IV (paper vs measured; energy normalised to the paper's no-manipulation baseline)",
        &[
            "design",
            "area p. (um2)",
            "area ours",
            "energy p. (nJ/frame)",
            "energy ours (norm.)",
            "abs err p.",
            "abs err ours",
        ],
        &rows,
    );
    println!(
        "(raw model energies before normalisation: {} nJ/frame for the baseline)",
        cell1(baseline_energy)
    );

    let cost = |v: PipelineVariant| costs.iter().find(|c| c.variant == v).expect("cost");
    let err = |v: PipelineVariant| {
        quality
            .iter()
            .find(|q| q.variant == v)
            .expect("quality")
            .mean_abs_error
    };
    let regen = cost(PipelineVariant::Regeneration);
    let sync = cost(PipelineVariant::Synchronizer);
    let none = cost(PipelineVariant::NoManipulation);

    print_comparisons(
        "Headline claims (Sec. IV.B)",
        &[
            Comparison::new(
                "total energy saving of synchronizer vs regeneration",
                0.24,
                1.0 - sync.energy_per_frame_nj / regen.energy_per_frame_nj,
            ),
            Comparison::new(
                "manipulation-overhead energy ratio (regen / sync)",
                3.0,
                regen.manipulation_energy_nj / sync.manipulation_energy_nj,
            ),
            Comparison::new(
                "error ratio: no-manipulation / synchronizer",
                0.076 / 0.020,
                err(PipelineVariant::NoManipulation) / err(PipelineVariant::Synchronizer).max(1e-9),
            ),
            Comparison::new(
                "error gap: |regeneration - synchronizer|",
                0.001,
                (err(PipelineVariant::Regeneration) - err(PipelineVariant::Synchronizer)).abs(),
            ),
            Comparison::new(
                "energy overhead of no-manipulation baseline (nJ/frame)",
                1383.0,
                none.energy_per_frame_nj,
            ),
        ],
    );
}
