//! Reproduces Fig. 1 of the paper: the worked examples of SC multiplication
//! (a single AND gate) and SC scaled addition (a multiplexer), plus the §I
//! introduction example, on the exact bitstreams printed in the paper.

use sc_arith::add::mux_add;
use sc_arith::multiply::and_multiply;
use sc_bench::{print_comparisons, print_table, Comparison};
use sc_bitstream::{scc, Bitstream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Fig. 1 — basic SC operations on the paper's example bitstreams");

    // §I: X = 01000100 encodes 0.25.
    let intro = Bitstream::parse("01000100")?;

    // Fig. 1a: multiplication.
    let x = Bitstream::parse("01010101")?;
    let y = Bitstream::parse("00111111")?;
    let product = and_multiply(&x, &y)?;

    // Fig. 1b: scaled addition.
    let ax = Bitstream::parse("01110111")?;
    let ay = Bitstream::parse("11000000")?;
    let select = Bitstream::parse("10100110")?;
    let sum = mux_add(&ax, &ay, &select)?;

    print_table(
        "Worked examples",
        &["operation", "inputs", "output stream", "output value"],
        &[
            vec![
                "encode (Sec. I)".into(),
                intro.to_bit_string(),
                intro.to_bit_string(),
                format!("{}", intro.value()),
            ],
            vec![
                "multiply (Fig. 1a)".into(),
                format!("{} & {}", x.to_bit_string(), y.to_bit_string()),
                product.to_bit_string(),
                format!("{}", product.value()),
            ],
            vec![
                "scaled add (Fig. 1b)".into(),
                format!("{} + {}", ax.to_bit_string(), ay.to_bit_string()),
                sum.to_bit_string(),
                format!("{}", sum.value()),
            ],
        ],
    );

    let rows = vec![
        Comparison::new("encoded value of 01000100", 0.25, intro.value()),
        Comparison::new("multiply output value", 0.375, product.value()),
        Comparison::new("scaled add output value", 0.5, sum.value()),
        Comparison::new("multiply inputs SCC (uncorrelated)", 0.0, scc(&x, &y)),
    ];
    print_comparisons("Paper vs measured", &rows);

    let worst = rows
        .iter()
        .map(Comparison::relative_error)
        .fold(0.0f64, f64::max);
    println!("\nLargest relative deviation: {worst:.4}");
    Ok(())
}
