//! Measures the bounded-window streaming tile dispatcher of `sc_image`,
//! recording the evidence in `BENCH_stream_window.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin stream_window_throughput`.
//! The JSON file is written to the current directory (or to the path given
//! as the first argument).
//!
//! Two claims are gated:
//!
//! * **Bounded memory** — for every window in {1, threads, 4×threads}, the
//!   peak number of simultaneously-live retargeted tile plans reported by
//!   `run_sc_pipeline_with_window` must not exceed the window. This is the
//!   O(window) memory model: the full dispatch of PR 4 held O(tiles) plans
//!   live, the streaming engine holds at most the window.
//! * **No throughput regression** — streaming at the default window
//!   (threads × 4) must stay within 10% of the full dispatch (an
//!   effectively unbounded window over the same engine) on a multi-core
//!   machine, i.e. bounding memory is (nearly) free. On a single-CPU
//!   machine both paths run the same inline sequential loop, so the same
//!   bar applies.

use sc_bench::measure_rate as measure;
use sc_image::{run_sc_pipeline_with_window, GrayImage, PipelineConfig, PipelineVariant};
use sc_telemetry::{Json, TelemetrySink};

fn bench_image() -> GrayImage {
    let blob = GrayImage::gaussian_blob(40, 40);
    GrayImage::from_fn(40, 40, |x, y| {
        0.6 * blob.get(x, y) + 0.4 * (x as f64 / 40.0)
    })
}

struct WindowRow {
    window: usize,
    label: String,
    images_per_sec: f64,
    peak_live_plans: usize,
    tiles: usize,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_stream_window.json".into());
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // On a single-CPU machine still exercise the pool path (2 workers).
    let threads = cpus.clamp(2, 8);

    // 40×40 image, 10-pixel tiles → 16 tiles: enough for the default
    // window (threads × 4, at most 32 here) and the unbounded dispatch to
    // genuinely differ in how many plans they keep alive.
    let img = bench_image();
    let config = PipelineConfig {
        stream_length: 256,
        tile_size: 10,
        ..PipelineConfig::default()
    };
    let variant = PipelineVariant::Synchronizer;
    let default_window = threads * sc_graph::DEFAULT_WINDOW_FACTOR;

    let run = |window: usize| {
        run_sc_pipeline_with_window(&img, variant, &config, threads, window)
            .expect("benchmark pipeline executes")
    };

    // --- Memory gate: peak live plans never exceeds the window.
    let mut rows: Vec<WindowRow> = Vec::new();
    for (window, label) in [
        (1usize, "1".to_string()),
        (threads, format!("threads ({threads})")),
        (default_window, format!("4 x threads ({default_window})")),
        (usize::MAX, "unbounded (full dispatch)".to_string()),
    ] {
        let (_, stats) = run(window);
        let images_per_sec = measure(|| {
            std::hint::black_box(run(window));
        });
        println!(
            "window {label:<28} {images_per_sec:>8.2} images/sec   peak live plans {} / {} tiles",
            stats.peak_live_plans, stats.tiles
        );
        rows.push(WindowRow {
            window,
            label,
            images_per_sec,
            peak_live_plans: stats.peak_live_plans,
            tiles: stats.tiles,
        });
    }
    let streaming = rows
        .iter()
        .find(|r| r.window == default_window)
        .expect("default-window row present")
        .images_per_sec;
    let full = rows
        .iter()
        .find(|r| r.window == usize::MAX)
        .expect("unbounded row present")
        .images_per_sec;
    let ratio = streaming / full;

    // One instrumented run at the default window for the machine-readable
    // per-stage summary: the same TelemetryReport JSON every instrumented
    // consumer gets, instead of a hand-rolled writer.
    let sink = TelemetrySink::new();
    let instrumented = config.clone().with_telemetry(sink.clone());
    run_sc_pipeline_with_window(&img, variant, &instrumented, threads, default_window)
        .expect("instrumented pipeline executes");
    let telemetry = sink.drain().to_json();

    let doc = Json::obj(vec![
        ("cpus", Json::u64(cpus as u64)),
        ("threads", Json::u64(threads as u64)),
        ("host", sc_bench::host_context()),
        ("default_window", Json::u64(default_window as u64)),
        (
            "image",
            Json::str("40x40, 10px tiles (16 tiles), N=256, synchronizer variant"),
        ),
        (
            "unit",
            Json::str("whole images per second, best of 7 samples"),
        ),
        ("streaming_vs_full_dispatch", Json::fixed(ratio, 3)),
        (
            "results",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::obj(vec![
                            ("window", Json::str(&row.label)),
                            ("images_per_sec", Json::fixed(row.images_per_sec, 2)),
                            ("peak_live_plans", Json::u64(row.peak_live_plans as u64)),
                            ("tiles", Json::u64(row.tiles as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("telemetry", telemetry),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_stream_window.json");
    println!("\nwrote {out_path}");

    // Gate 1: the window bounds the number of simultaneously-live plans
    // (peak_live_plans is the engine's upper bound: jobs submitted but not
    // yet reported back, each of which may hold a live plan).
    for row in &rows {
        assert!(
            row.peak_live_plans <= row.window,
            "window {}: up to {} retargeted plans were live at once, exceeding the window",
            row.label,
            row.peak_live_plans
        );
    }
    // The unbounded dispatch plans every tile ahead of the first result —
    // the O(tiles) exposure the bounded rows above avoid by construction.
    let unbounded = rows.last().expect("rows recorded");
    assert!(
        unbounded.peak_live_plans == unbounded.tiles,
        "unbounded dispatch should plan all {} tiles ahead of the first result, saw {}",
        unbounded.tiles,
        unbounded.peak_live_plans
    );
    println!("peak live plans stay within every window");

    // Gate 2: bounding memory must not cost meaningful throughput.
    assert!(
        ratio >= 0.9,
        "streaming at the default window ({streaming:.2} images/s) fell below 90% of the \
         full dispatch ({full:.2} images/s) on {cpus} CPUs"
    );
    println!("streaming holds >= 0.9x full-dispatch throughput ({ratio:.2}x)");
}
