//! Reproduces Table III: average absolute error, bias, area, power, and
//! energy of the SC maximum and minimum designs (OR max, correlation-agnostic
//! max, synchronizer max, AND min, synchronizer min) at N = 256, plus the
//! §II.B correlation-agnostic-adder overhead comparison.
//!
//! Accuracy follows the paper's methodology: inputs are generated exhaustively
//! from a Van der Corput sequence (X) and a base-3 Halton sequence (Y). Pass
//! `--full` for the exhaustive 257×257 value grid; the default uses a 65×65
//! grid, which reproduces the averages to three decimal places.

use sc_arith::maxmin::{and_min, ca_max, or_max};
use sc_bench::{cell, cell1, print_comparisons, print_table, Comparison, PAPER_STREAM_LENGTH};
use sc_bitstream::{Bitstream, ErrorStats, Probability};
use sc_convert::DigitalToStochastic;
use sc_core::ops::{sync_max, sync_min};
use sc_hwcost::characterize;
use sc_hwcost::CostReport;
use sc_rng::{Halton, VanDerCorput};

struct DesignRow {
    name: &'static str,
    paper_error: f64,
    paper_bias: f64,
    paper_area: f64,
    paper_power: f64,
    paper_energy: f64,
    error: ErrorStats,
    cost: CostReport,
}

fn main() {
    let n = PAPER_STREAM_LENGTH;
    let full = std::env::args().any(|a| a == "--full");
    let step = if full { 1 } else { 4 };
    let grid: Vec<u64> = (0..=n as u64).step_by(step).collect();
    println!(
        "Table III — SC maximum / minimum designs (N = {n}, {}x{} input grid)",
        grid.len(),
        grid.len()
    );

    let mut rows = [
        DesignRow {
            name: "OR Max.",
            paper_error: 0.087,
            paper_bias: 0.087,
            paper_area: 2.16,
            paper_power: 0.26,
            paper_energy: 165.0,
            error: ErrorStats::new(),
            cost: characterize::or_max(),
        },
        DesignRow {
            name: "CA Max.",
            paper_error: 0.006,
            paper_bias: 0.001,
            paper_area: 252.36,
            paper_power: 56.7,
            paper_energy: 36288.0,
            error: ErrorStats::new(),
            cost: characterize::correlation_agnostic_max(),
        },
        DesignRow {
            name: "Sync. Max.",
            paper_error: 0.003,
            paper_bias: 0.003,
            paper_area: 48.6,
            paper_power: 4.89,
            paper_energy: 3130.0,
            error: ErrorStats::new(),
            cost: characterize::synchronizer_max(1),
        },
        DesignRow {
            name: "AND Min.",
            paper_error: 0.082,
            paper_bias: -0.082,
            paper_area: 2.16,
            paper_power: 0.25,
            paper_energy: 158.0,
            error: ErrorStats::new(),
            cost: characterize::and_min(),
        },
        DesignRow {
            name: "Sync. Min.",
            paper_error: 0.005,
            paper_bias: 0.005,
            paper_area: 45.0,
            paper_power: 8.38,
            paper_energy: 5363.0,
            error: ErrorStats::new(),
            cost: characterize::synchronizer_min(1),
        },
    ];

    // Accuracy sweep with the paper's VDC + Halton(3) input generation.
    for &kx in &grid {
        for &ky in &grid {
            let px = Probability::from_ratio(kx, n as u64);
            let py = Probability::from_ratio(ky, n as u64);
            let mut gx = DigitalToStochastic::new(VanDerCorput::new());
            let mut gy = DigitalToStochastic::new(Halton::new(3));
            let x: Bitstream = gx.generate(px, n);
            let y: Bitstream = gy.generate(py, n);
            let expected_max = px.get().max(py.get());
            let expected_min = px.get().min(py.get());

            rows[0]
                .error
                .record(or_max(&x, &y).expect("lengths").value(), expected_max);
            rows[1]
                .error
                .record(ca_max(&x, &y).expect("lengths").value(), expected_max);
            rows[2]
                .error
                .record(sync_max(&x, &y, 1).expect("lengths").value(), expected_max);
            rows[3]
                .error
                .record(and_min(&x, &y).expect("lengths").value(), expected_min);
            rows[4]
                .error
                .record(sync_min(&x, &y, 1).expect("lengths").value(), expected_min);
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                cell(r.paper_error),
                cell(r.error.mean_abs_error()),
                cell(r.paper_bias),
                cell(r.error.mean_bias()),
                cell1(r.paper_area),
                cell1(r.cost.area_um2),
                cell1(r.paper_power),
                cell1(r.cost.power_uw),
                cell1(r.paper_energy),
                cell1(r.cost.energy_pj),
            ]
        })
        .collect();
    print_table(
        "Table III (paper vs measured)",
        &[
            "design",
            "err (paper)",
            "err (ours)",
            "bias (paper)",
            "bias (ours)",
            "area p.",
            "area ours",
            "power p.",
            "power ours",
            "energy p.",
            "energy ours",
        ],
        &table,
    );

    // Headline ratios.
    let sync_vs_ca = rows[2].cost.relative_to(&rows[1].cost);
    print_comparisons(
        "Headline claims",
        &[
            Comparison::new(
                "Sync. max area reduction vs CA max (x)",
                5.2,
                sync_vs_ca.area_ratio,
            ),
            Comparison::new(
                "Sync. max energy efficiency vs CA max (x)",
                11.6,
                sync_vs_ca.energy_ratio,
            ),
            Comparison::new(
                "OR max error / Sync. max error (x)",
                0.087 / 0.003,
                rows[0].error.mean_abs_error() / rows[2].error.mean_abs_error().max(1e-6),
            ),
        ],
    );

    // §II.B adder overhead comparison.
    let mux = characterize::mux_adder();
    let ca = characterize::correlation_agnostic_adder();
    print_comparisons(
        "Correlation-agnostic adder overhead (Sec. II.B)",
        &[
            Comparison::new(
                "CA adder area / MUX adder area (x)",
                5.6,
                ca.area_um2 / mux.area_um2,
            ),
            Comparison::new(
                "CA adder power / MUX adder power (x)",
                10.7,
                ca.power_uw / mux.power_uw,
            ),
        ],
    );
}
