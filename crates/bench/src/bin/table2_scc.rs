//! Reproduces Table II: average SCC before and after each correlation
//! manipulating circuit, and the value bias it introduces, for the paper's
//! RNG configurations at N = 256.
//!
//! Rows whose two sources are the same family *and* whose paper input SCC is
//! close to +1 (the decorrelator/isolator/TFM rows and the third
//! synchronizer/desynchronizer rows) are generated from shared source
//! samples, exactly as sharing one hardware RNG between two D/S converters
//! would; all other rows use two independent sources.
//!
//! Pass `--quick` to run a coarser value grid (useful in debug builds).

use sc_bench::{cell, print_table, PAPER_STREAM_LENGTH};
use sc_core::analysis::{
    evaluate_manipulator, evaluate_manipulator_on_correlated_inputs, ManipulatorEvaluation,
    SweepConfig,
};
use sc_core::{
    CorrelationManipulator, Decorrelator, Desynchronizer, Isolator, Synchronizer,
    TrackingForecastMemory,
};
use sc_rng::RngKind;

struct Row {
    design: &'static str,
    x_rng: &'static str,
    y_rng: &'static str,
    paper_input_scc: f64,
    paper_output_scc: f64,
    paper_bias_x: f64,
    paper_bias_y: f64,
    eval: ManipulatorEvaluation,
}

fn kind(label: &str) -> RngKind {
    match label {
        "VDC" => RngKind::VanDerCorput,
        "Halton" => RngKind::Halton,
        "LFSR" => RngKind::Lfsr,
        other => panic!("unknown source label {other}"),
    }
}

fn evaluate<M, F>(
    make: F,
    x: &'static str,
    y: &'static str,
    shared: bool,
    config: SweepConfig,
) -> ManipulatorEvaluation
where
    M: CorrelationManipulator,
    F: FnMut() -> M,
{
    if shared {
        evaluate_manipulator_on_correlated_inputs(make, kind(x), config)
            .expect("sweep with shared source")
    } else {
        evaluate_manipulator(make, kind(x), kind(y), config).expect("sweep")
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig {
            stream_length: PAPER_STREAM_LENGTH,
            value_steps: 32,
        }
    };
    println!(
        "Table II — SCC before/after correlation manipulating circuits (N = {}, {} value pairs/row)",
        config.stream_length,
        (config.value_steps - 1) * (config.value_steps - 1)
    );

    let depth = 1;
    let rows = vec![
        // Synchronizer (Fig. 3a).
        Row {
            design: "Synchronizer",
            x_rng: "VDC",
            y_rng: "Halton",
            paper_input_scc: -0.048,
            paper_output_scc: 0.996,
            paper_bias_x: -0.001,
            paper_bias_y: -0.002,
            eval: evaluate(|| Synchronizer::new(depth), "VDC", "Halton", false, config),
        },
        Row {
            design: "Synchronizer",
            x_rng: "LFSR",
            y_rng: "VDC",
            paper_input_scc: -0.062,
            paper_output_scc: 0.903,
            paper_bias_x: -0.002,
            paper_bias_y: -0.001,
            eval: evaluate(|| Synchronizer::new(depth), "LFSR", "VDC", false, config),
        },
        Row {
            design: "Synchronizer",
            x_rng: "Halton",
            y_rng: "Halton",
            paper_input_scc: 0.984,
            paper_output_scc: 0.992,
            paper_bias_x: -0.002,
            paper_bias_y: -0.002,
            eval: evaluate(
                || Synchronizer::new(depth),
                "Halton",
                "Halton",
                true,
                config,
            ),
        },
        // Desynchronizer (Fig. 3b).
        Row {
            design: "Desynchronizer",
            x_rng: "VDC",
            y_rng: "Halton",
            paper_input_scc: -0.048,
            paper_output_scc: -0.981,
            paper_bias_x: -0.002,
            paper_bias_y: 0.0,
            eval: evaluate(
                || Desynchronizer::new(depth),
                "VDC",
                "Halton",
                false,
                config,
            ),
        },
        Row {
            design: "Desynchronizer",
            x_rng: "LFSR",
            y_rng: "VDC",
            paper_input_scc: -0.062,
            paper_output_scc: -0.788,
            paper_bias_x: -0.002,
            paper_bias_y: 0.0,
            eval: evaluate(|| Desynchronizer::new(depth), "LFSR", "VDC", false, config),
        },
        Row {
            design: "Desynchronizer",
            x_rng: "Halton",
            y_rng: "Halton",
            paper_input_scc: 0.984,
            paper_output_scc: -0.930,
            paper_bias_x: -0.003,
            paper_bias_y: 0.0,
            eval: evaluate(
                || Desynchronizer::new(depth),
                "Halton",
                "Halton",
                true,
                config,
            ),
        },
        // Decorrelator (Fig. 4a).
        Row {
            design: "Decorrelator",
            x_rng: "LFSR",
            y_rng: "LFSR",
            paper_input_scc: 0.992,
            paper_output_scc: 0.249,
            paper_bias_x: 0.000,
            paper_bias_y: -0.004,
            eval: evaluate(|| Decorrelator::new(4), "LFSR", "LFSR", true, config),
        },
        Row {
            design: "Decorrelator",
            x_rng: "VDC",
            y_rng: "VDC",
            paper_input_scc: 0.992,
            paper_output_scc: 0.168,
            paper_bias_x: 0.001,
            paper_bias_y: 0.003,
            eval: evaluate(|| Decorrelator::new(4), "VDC", "VDC", true, config),
        },
        Row {
            design: "Decorrelator",
            x_rng: "Halton",
            y_rng: "Halton",
            paper_input_scc: 0.984,
            paper_output_scc: 0.067,
            paper_bias_x: 0.001,
            paper_bias_y: 0.002,
            eval: evaluate(|| Decorrelator::new(4), "Halton", "Halton", true, config),
        },
        // Isolator insertion baseline.
        Row {
            design: "Isolator",
            x_rng: "LFSR",
            y_rng: "LFSR",
            paper_input_scc: 0.992,
            paper_output_scc: 0.600,
            paper_bias_x: -0.002,
            paper_bias_y: 0.000,
            eval: evaluate(|| Isolator::new(1), "LFSR", "LFSR", true, config),
        },
        Row {
            design: "Isolator",
            x_rng: "VDC",
            y_rng: "VDC",
            paper_input_scc: 0.992,
            paper_output_scc: -0.637,
            paper_bias_x: -0.004,
            paper_bias_y: 0.000,
            eval: evaluate(|| Isolator::new(1), "VDC", "VDC", true, config),
        },
        Row {
            design: "Isolator",
            x_rng: "Halton",
            y_rng: "Halton",
            paper_input_scc: 0.984,
            paper_output_scc: -0.353,
            paper_bias_x: 0.002,
            paper_bias_y: 0.000,
            eval: evaluate(|| Isolator::new(1), "Halton", "Halton", true, config),
        },
        // Tracking forecast memory baseline.
        Row {
            design: "TFM",
            x_rng: "LFSR",
            y_rng: "LFSR",
            paper_input_scc: 0.992,
            paper_output_scc: 0.654,
            paper_bias_x: -0.014,
            paper_bias_y: -0.051,
            eval: evaluate(
                || TrackingForecastMemory::new(3),
                "LFSR",
                "LFSR",
                true,
                config,
            ),
        },
        Row {
            design: "TFM",
            x_rng: "VDC",
            y_rng: "VDC",
            paper_input_scc: 0.992,
            paper_output_scc: 0.779,
            paper_bias_x: 0.246,
            paper_bias_y: 0.363,
            eval: evaluate(
                || TrackingForecastMemory::new(3),
                "VDC",
                "VDC",
                true,
                config,
            ),
        },
        Row {
            design: "TFM",
            x_rng: "Halton",
            y_rng: "Halton",
            paper_input_scc: 0.984,
            paper_output_scc: 0.353,
            paper_bias_x: -0.005,
            paper_bias_y: -0.007,
            eval: evaluate(
                || TrackingForecastMemory::new(3),
                "Halton",
                "Halton",
                true,
                config,
            ),
        },
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.design.to_string(),
                format!("{}/{}", r.x_rng, r.y_rng),
                cell(r.paper_input_scc),
                cell(r.eval.input_scc),
                cell(r.paper_output_scc),
                cell(r.eval.output_scc),
                cell(r.paper_bias_x),
                cell(r.eval.bias_x),
                cell(r.paper_bias_y),
                cell(r.eval.bias_y),
            ]
        })
        .collect();

    print_table(
        "Table II (paper vs measured)",
        &[
            "design",
            "X/Y RNG",
            "in SCC (paper)",
            "in SCC (ours)",
            "out SCC (paper)",
            "out SCC (ours)",
            "X' bias (paper)",
            "X' bias (ours)",
            "Y' bias (paper)",
            "Y' bias (ours)",
        ],
        &table,
    );

    // Shape summary: the sign and ordering of the output SCC is what the
    // paper's argument rests on.
    let sign_matches = rows
        .iter()
        .filter(|r| {
            r.paper_output_scc == 0.0
                || (r.paper_output_scc > 0.0) == (r.eval.output_scc > 0.0)
                || r.eval.output_scc.abs() < 0.3
        })
        .count();
    println!(
        "\nOutput-SCC sign/shape agreement: {sign_matches}/{} rows",
        rows.len()
    );
}
