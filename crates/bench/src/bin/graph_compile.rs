//! Measures the staged `Graph::compile` optimizer pipeline over the GB→ED
//! tile classes and records the evidence in `BENCH_graph_compile.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin graph_compile`. The JSON
//! file is written to the current directory (or to the path given as the
//! first argument).
//!
//! Three things are measured / checked:
//!
//! 1. **Compile time per pass** — each optimizer pass's span total
//!    (validate / scc-infer / cse / repair / fusion / emit) from an attached
//!    [`sc_telemetry::TelemetrySink`], across every tile class.
//! 2. **Plan shrinkage** — step count and `sc_hwcost` netlist cost of every
//!    tile class compiled with the full pass pipeline versus the
//!    pass-disabled baseline.
//! 3. **Optimizer gates** — per tile class, the optimized plan must (a)
//!    schedule strictly fewer steps, (b) never cost more `sc_hwcost` units
//!    under per-step pricing, (c) cost strictly less under shared-source
//!    pricing (the hardware the executor's source cache actually builds),
//!    and (d) execute bit-identically to the baseline.

use sc_bench::host_context;
use sc_graph::cost::{compiled_netlist, compiled_netlist_shared};
use sc_graph::{Executor, PassSet, PlannerOptions};
use sc_image::{planner_options, tile_graph, GrayImage, PipelineConfig, PipelineVariant};
use sc_telemetry::{Stage, TelemetrySink};
use std::time::Instant;

const PASS_STAGES: [Stage; 6] = [
    Stage::CompileValidate,
    Stage::CompilePlan,
    Stage::CompileCse,
    Stage::CompileRepair,
    Stage::CompileFuse,
    Stage::CompileEmit,
];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_graph_compile.json".into());
    let variant = PipelineVariant::Synchronizer;
    let config = PipelineConfig::quick();
    let n = config.stream_length;
    let bits = 8;

    // An 8×8 image under 6-pixel tiles yields all four tile classes: full
    // interior, right edge, bottom edge, and corner.
    let img = GrayImage::from_fn(8, 8, |x, y| {
        0.5 * GrayImage::gaussian_blob(8, 8).get(x, y) + 0.5 * (x as f64 / 8.0)
    });
    let classes = [(0usize, 0usize), (6, 0), (0, 6), (6, 6)];

    let sink = TelemetrySink::new();
    let mut class_json = Vec::new();
    for (x0, y0) in classes {
        let tile = tile_graph(&img, x0, y0, variant, &config, 0);
        let optimized_options = planner_options(variant, &config);
        let baseline_options = PlannerOptions {
            passes: PassSet::none(),
            ..optimized_options.clone()
        };

        let start = Instant::now();
        let optimized = tile
            .graph
            .compile_with_telemetry(&optimized_options, &sink)
            .expect("tile graph compiles");
        let optimized_us = start.elapsed().as_secs_f64() * 1e6;
        let start = Instant::now();
        let baseline = tile
            .graph
            .compile(&baseline_options)
            .expect("tile graph compiles");
        let baseline_us = start.elapsed().as_secs_f64() * 1e6;

        let name = format!("tile_{x0}_{y0}");
        let opt_area = compiled_netlist(&optimized, &name, bits).area_um2();
        let base_area = compiled_netlist(&baseline, &name, bits).area_um2();
        let opt_shared_area = compiled_netlist_shared(&optimized, &name, bits).area_um2();
        let report = optimized.report();

        // Gate (a): strictly fewer scheduled steps.
        assert!(
            optimized.step_count() < baseline.step_count(),
            "{name}: optimized plan ({}) must schedule strictly fewer steps \
             than the baseline ({})",
            optimized.step_count(),
            baseline.step_count()
        );
        // Gate (b): never more hwcost units under like-for-like pricing.
        assert!(
            opt_area <= base_area + 1e-6,
            "{name}: optimized per-step netlist ({opt_area:.1} um^2) must not \
             exceed the baseline ({base_area:.1} um^2)"
        );
        // Gate (c): strictly cheaper once shared sources are built once.
        assert!(
            opt_shared_area < base_area,
            "{name}: shared-source netlist ({opt_shared_area:.1} um^2) must \
             undercut the baseline ({base_area:.1} um^2)"
        );
        // Gate (d): bit-identical pixels.
        let opt_out = Executor::new(n).run(&optimized, &tile.input).expect("runs");
        let base_out = Executor::new(n).run(&baseline, &tile.input).expect("runs");
        for (_, _, sink_name) in &tile.sinks {
            assert_eq!(
                opt_out.value(sink_name).expect("pixel").to_bits(),
                base_out.value(sink_name).expect("pixel").to_bits(),
                "{name}: pixel {sink_name} diverged between pass subsets"
            );
        }

        println!(
            "{name}: steps {} -> {} ({} eliminated, {} spans fused, {} shared sources), \
             area {base_area:.0} -> {opt_shared_area:.0} um^2 shared, \
             compile {baseline_us:.0} -> {optimized_us:.0} us",
            baseline.step_count(),
            optimized.step_count(),
            report.steps_eliminated,
            report.fused_spans,
            report.shared_sources,
        );
        class_json.push(format!(
            "    {{\n      \"class\": \"{name}\",\n      \"baseline_steps\": {},\n      \
             \"optimized_steps\": {},\n      \"steps_eliminated\": {},\n      \
             \"fused_spans\": {},\n      \"shared_sources\": {},\n      \
             \"baseline_area_um2\": {base_area:.2},\n      \
             \"optimized_area_um2\": {opt_area:.2},\n      \
             \"optimized_shared_area_um2\": {opt_shared_area:.2},\n      \
             \"baseline_compile_us\": {baseline_us:.1},\n      \
             \"optimized_compile_us\": {optimized_us:.1}\n    }}",
            baseline.step_count(),
            optimized.step_count(),
            report.steps_eliminated,
            report.fused_spans,
            report.shared_sources,
        ));
    }

    // Per-pass span totals across all optimized compiles.
    let report = sink.drain();
    let mut pass_json = Vec::new();
    for stage in PASS_STAGES {
        let (count, ns) = report.stage_totals(stage);
        println!(
            "pass {}: {count} spans, {:.1} us total",
            stage.name(),
            ns as f64 / 1e3
        );
        pass_json.push(format!(
            "    {{ \"pass\": \"{}\", \"spans\": {count}, \"total_us\": {:.2} }}",
            stage.name(),
            ns as f64 / 1e3
        ));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"host\": {},\n",
        host_context().to_string_compact()
    ));
    json.push_str(&format!(
        "  \"tile_size\": {},\n  \"stream_length\": {n},\n  \"variant\": \"{variant:?}\",\n",
        config.tile_size
    ));
    json.push_str("  \"gates\": \"optimized plans: strictly fewer steps, never more per-step hwcost, strictly less shared-source hwcost, bit-identical pixels\",\n");
    json.push_str("  \"classes\": [\n");
    json.push_str(&class_json.join(",\n"));
    json.push_str("\n  ],\n  \"pass_timings\": [\n");
    json.push_str(&pass_json.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_graph_compile.json");
    println!("wrote {out_path}");
}
