//! §III.B ablation: how the synchronizer's and desynchronizer's save depth
//! `D` trades induced correlation and value bias against hardware cost, and
//! how the flush extension removes end-of-stream bias.

use sc_bench::{cell, cell1, print_table, PAPER_STREAM_LENGTH};
use sc_bitstream::{scc, Bitstream, Probability, StreamPairStats};
use sc_convert::DigitalToStochastic;
use sc_core::analysis::{evaluate_manipulator, SweepConfig};
use sc_core::{CorrelationManipulator, Desynchronizer, Synchronizer};
use sc_hwcost::characterize;
use sc_rng::{Lfsr, RngKind};

fn main() {
    let config = SweepConfig {
        stream_length: PAPER_STREAM_LENGTH,
        value_steps: 16,
    };
    println!("Ablation — save depth D of the synchronizer / desynchronizer FSMs");

    let depths = [1u32, 2, 4, 8, 16];
    let mut rows = Vec::new();
    for &d in &depths {
        let sync = evaluate_manipulator(
            || Synchronizer::new(d),
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            config,
        )
        .expect("sweep");
        let desync = evaluate_manipulator(
            || Desynchronizer::new(d),
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            config,
        )
        .expect("sweep");
        let sync_cost = characterize::synchronizer(d).report(PAPER_STREAM_LENGTH as u64);
        rows.push(vec![
            d.to_string(),
            cell(sync.output_scc),
            cell(sync.bias_x.abs().max(sync.bias_y.abs())),
            cell(desync.output_scc),
            cell(desync.bias_x.abs().max(desync.bias_y.abs())),
            cell1(sync_cost.area_um2),
            cell1(sync_cost.energy_pj),
        ]);
    }
    print_table(
        "Save depth sweep (LFSR / VDC inputs, N = 256)",
        &[
            "D",
            "sync out SCC",
            "sync |bias|",
            "desync out SCC",
            "desync |bias|",
            "sync area (um2)",
            "sync energy (pJ)",
        ],
        &rows,
    );

    // Flush extension: adversarial input with a run of lone 1s at the end of
    // the stream, where saved bits would otherwise be stranded.
    println!("\nFlush extension on an adversarial end-of-stream run (D = 16):");
    let n = PAPER_STREAM_LENGTH;
    let x = Bitstream::from_fn(n, |i| i >= n - 24);
    let y = Bitstream::zeros(n);
    let mut plain = Synchronizer::new(16);
    let (px_stream, _) = plain.process(&x, &y).expect("lengths");
    let mut flushing = Synchronizer::new(16);
    let (fx_stream, _) = flushing.process_with_flush(&x, &y).expect("lengths");
    println!(
        "  input value {:.4}  plain output {:.4}  flushed output {:.4}",
        x.value(),
        px_stream.value(),
        fx_stream.value()
    );

    // Depth also matters downstream: the synchronizer-based max accuracy.
    let mut rows = Vec::new();
    for &d in &depths {
        let mut stats = StreamPairStats::new();
        let mut err = 0.0;
        let mut count = 0u32;
        for kx in (0..=16u64).map(|k| k as f64 / 16.0) {
            for ky in (0..=16u64).map(|k| k as f64 / 16.0) {
                let mut gx = DigitalToStochastic::new(Lfsr::new(16, 0xACE1));
                let mut gy = DigitalToStochastic::new(Lfsr::new(16, 0xBEEF));
                let x = gx.generate(Probability::saturating(kx), n);
                let y = gy.generate(Probability::saturating(ky), n);
                let mut sync = Synchronizer::new(d);
                let (sx, sy) = sync.process(&x, &y).expect("lengths");
                stats.record(&x, &y, &sx, &sy).expect("lengths");
                err += (sx.or(&sy).value() - kx.max(ky)).abs();
                count += 1;
                let _ = scc(&sx, &sy);
            }
        }
        rows.push(vec![
            d.to_string(),
            cell(stats.mean_output_scc()),
            cell(err / f64::from(count)),
        ]);
    }
    print_table(
        "Synchronizer-max accuracy vs depth (LFSR-generated inputs)",
        &["D", "mean output SCC", "sync-max mean abs error"],
        &rows,
    );
}
