//! Fig. 4 ablation: shuffle-buffer depth sweep for the decorrelator, compared
//! against the isolator and tracking-forecast-memory baselines and against
//! full regeneration.

use sc_bench::{cell, cell1, print_table, PAPER_STREAM_LENGTH};
use sc_bitstream::{scc, Probability, StreamPairStats};
use sc_convert::{DigitalToStochastic, Regenerator};
use sc_core::analysis::{evaluate_manipulator_on_correlated_inputs, SweepConfig};
use sc_core::{Decorrelator, Isolator, TrackingForecastMemory};
use sc_hwcost::characterize;
use sc_rng::{Halton, RngKind, VanDerCorput};

fn main() {
    let config = SweepConfig {
        stream_length: PAPER_STREAM_LENGTH,
        value_steps: 16,
    };
    println!("Ablation — decorrelator shuffle-buffer depth (shared-source inputs, SCC ≈ +1)");

    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let eval = evaluate_manipulator_on_correlated_inputs(
            || Decorrelator::new(depth),
            RngKind::VanDerCorput,
            config,
        )
        .expect("sweep");
        let cost = characterize::decorrelator(depth as u32).report(PAPER_STREAM_LENGTH as u64);
        rows.push(vec![
            depth.to_string(),
            cell(eval.input_scc),
            cell(eval.output_scc),
            cell(eval.bias_x.abs().max(eval.bias_y.abs())),
            cell1(cost.area_um2),
            cell1(cost.energy_pj),
        ]);
    }
    print_table(
        "Shuffle-buffer depth sweep",
        &[
            "D",
            "input SCC",
            "output SCC",
            "|bias|",
            "area (um2)",
            "energy (pJ)",
        ],
        &rows,
    );

    // Baselines at their default configurations.
    let mut rows = Vec::new();
    for (name, eval) in [
        (
            "decorrelator D=4",
            evaluate_manipulator_on_correlated_inputs(
                || Decorrelator::new(4),
                RngKind::VanDerCorput,
                config,
            )
            .expect("sweep"),
        ),
        (
            "isolator k=1",
            evaluate_manipulator_on_correlated_inputs(
                || Isolator::new(1),
                RngKind::VanDerCorput,
                config,
            )
            .expect("sweep"),
        ),
        (
            "tracking forecast memory",
            evaluate_manipulator_on_correlated_inputs(
                || TrackingForecastMemory::new(3),
                RngKind::VanDerCorput,
                config,
            )
            .expect("sweep"),
        ),
    ] {
        rows.push(vec![
            name.to_string(),
            cell(eval.input_scc),
            cell(eval.output_scc),
            cell(eval.bias_x.abs().max(eval.bias_y.abs())),
        ]);
    }
    print_table(
        "Decorrelation baselines (VDC shared-source inputs)",
        &["design", "input SCC", "output SCC", "|bias|"],
        &rows,
    );

    // Reference point: regeneration with independent sources resets SCC ~ 0
    // but needs full converters.
    let n = PAPER_STREAM_LENGTH;
    let mut stats = StreamPairStats::new();
    for k in 1..16u64 {
        let p = Probability::from_ratio(k, 16);
        let mut g = DigitalToStochastic::new(VanDerCorput::new());
        let (x, y) = g.generate_correlated_pair(p, p, n);
        let mut rx = Regenerator::new(VanDerCorput::with_offset(977));
        let mut ry = Regenerator::new(Halton::new(3));
        let ox = rx.regenerate(&x);
        let oy = ry.regenerate(&y);
        stats.record(&x, &y, &ox, &oy).expect("lengths");
        let _ = scc(&ox, &oy);
    }
    println!(
        "\nRegeneration reference: input SCC {:.3} -> output SCC {:.3} (area per stream pair: {:.0} um2 vs decorrelator {:.0} um2)",
        stats.mean_input_scc(),
        stats.mean_output_scc(),
        2.0 * characterize::regeneration_unit(8).area_um2(),
        characterize::decorrelator(4).area_um2(),
    );
}
