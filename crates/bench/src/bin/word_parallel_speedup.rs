//! Measures the word-parallel execution engine against the retained
//! bit-serial references and records the evidence in
//! `BENCH_word_parallel.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin word_parallel_speedup`.
//! The JSON file is written to the current directory (or to the path given
//! as the first argument) and is the perf trajectory record for the
//! word-parallel refactor: per operator, median ns per call at 4096-bit
//! streams for both paths, plus the speedup factor. Operators with a
//! lane-batched `u64×4` kernel (the FSM laggards: `ca_max`,
//! `synchronizer_d1`, `decorrelator_d4`) additionally report the per-stream
//! cost of a four-stream lane group and its speedup over the live solo word
//! path — the gap the lane dimension was built to close.

use sc_arith::add::ca_add;
use sc_arith::maxmin::{ca_max, ca_max_lanes, or_max};
use sc_arith::multiply::and_multiply;
use sc_bench::host_context;
use sc_bitstream::{scc, Bitstream, Probability};
use sc_convert::DigitalToStochastic;
use sc_core::{
    process_lane_pairs, CorrelationManipulator, Decorrelator, DecorrelatorLanes, Isolator,
    LaneBank, Synchronizer, LANES,
};
use sc_rng::{Halton, VanDerCorput};
use std::time::Instant;

const STREAM_BITS: usize = 4096;

fn input_pair(n: usize) -> (Bitstream, Bitstream) {
    let mut gx = DigitalToStochastic::new(VanDerCorput::new());
    let mut gy = DigitalToStochastic::new(Halton::new(3));
    (
        gx.generate(Probability::saturating(0.5), n),
        gy.generate(Probability::saturating(0.75), n),
    )
}

/// Median ns per call over several timed samples, with adaptive batching so
/// each sample lasts long enough for the clock to be meaningful.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    // Calibrate the batch size to ~2 ms.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as u64;
        if ns >= 2_000_000 || iters >= 1 << 22 {
            break;
        }
        iters = (iters * 2_000_000 / ns.max(1)).clamp(iters + 1, iters * 16);
    }
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

struct Row {
    op: &'static str,
    bit_serial_ns: f64,
    word_parallel_ns: f64,
    /// Per-stream cost of a `LANES`-wide lane-batched call (group time / 4),
    /// for the ops that have a lane kernel.
    lane_ns: Option<f64>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.bit_serial_ns / self.word_parallel_ns
    }

    /// Lane-batching gain over the live solo word path.
    fn lane_speedup(&self) -> Option<f64> {
        self.lane_ns.map(|lane| self.word_parallel_ns / lane)
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_word_parallel.json".into());
    let (x, y) = input_pair(STREAM_BITS);
    let mut rows: Vec<Row> = Vec::new();

    let mut bench = |op: &'static str,
                     mut serial: Box<dyn FnMut()>,
                     mut word: Box<dyn FnMut()>,
                     lane: Option<Box<dyn FnMut()>>| {
        let bit_serial_ns = measure(&mut *serial);
        let word_parallel_ns = measure(&mut *word);
        // A lane closure runs one LANES-wide group; per-stream cost is the
        // group time split across the lanes.
        let lane_ns = lane.map(|mut group| measure(&mut *group) / LANES as f64);
        let row = Row {
            op,
            bit_serial_ns,
            word_parallel_ns,
            lane_ns,
        };
        match row.lane_speedup() {
            Some(gain) => println!(
                "{:<24} bit-serial {:>12.1} ns   word-parallel {:>12.1} ns   speedup {:>8.1}x   lane {:>10.1} ns   lane gain {:>6.2}x",
                row.op,
                row.bit_serial_ns,
                row.word_parallel_ns,
                row.speedup(),
                row.lane_ns.expect("lane gain implies lane time"),
                gain,
            ),
            None => println!(
                "{:<24} bit-serial {:>12.1} ns   word-parallel {:>12.1} ns   speedup {:>8.1}x",
                row.op,
                row.bit_serial_ns,
                row.word_parallel_ns,
                row.speedup()
            ),
        }
        rows.push(row);
    };

    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "and_multiply",
            Box::new(move || {
                std::hint::black_box(sc_bitstream::reference::and(&xs, &ys).expect("lengths"));
            }),
            Box::new(move || {
                std::hint::black_box(and_multiply(&xw, &yw).expect("lengths"));
            }),
            None,
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "or_max",
            Box::new(move || {
                std::hint::black_box(sc_bitstream::reference::or(&xs, &ys).expect("lengths"));
            }),
            Box::new(move || {
                std::hint::black_box(or_max(&xw, &yw).expect("lengths"));
            }),
            None,
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "scc",
            Box::new(move || {
                std::hint::black_box(
                    sc_bitstream::reference::joint_counts(&xs, &ys)
                        .expect("lengths")
                        .scc(),
                );
            }),
            Box::new(move || {
                std::hint::black_box(scc(&xw, &yw));
            }),
            None,
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "ca_add",
            Box::new(move || {
                std::hint::black_box(sc_arith::reference::ca_add(&xs, &ys).expect("lengths"));
            }),
            Box::new(move || {
                std::hint::black_box(ca_add(&xw, &yw).expect("lengths"));
            }),
            None,
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        let (xl, yl) = (x.clone(), y.clone());
        bench(
            "ca_max",
            Box::new(move || {
                std::hint::black_box(sc_arith::reference::ca_max(&xs, &ys).expect("lengths"));
            }),
            Box::new(move || {
                std::hint::black_box(ca_max(&xw, &yw).expect("lengths"));
            }),
            Some(Box::new(move || {
                let pairs: Vec<(&Bitstream, &Bitstream)> = (0..LANES).map(|_| (&xl, &yl)).collect();
                std::hint::black_box(ca_max_lanes(&pairs).expect("lengths"));
            })),
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "isolator_k17",
            Box::new(move || {
                std::hint::black_box(
                    Isolator::new(17)
                        .process_bit_serial(&xs, &ys)
                        .expect("lengths"),
                );
            }),
            Box::new(move || {
                std::hint::black_box(Isolator::new(17).process(&xw, &yw).expect("lengths"));
            }),
            None,
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        let (xl, yl) = (x.clone(), y.clone());
        bench(
            "synchronizer_d1",
            Box::new(move || {
                std::hint::black_box(
                    Synchronizer::new(1)
                        .process_bit_serial(&xs, &ys)
                        .expect("lengths"),
                );
            }),
            Box::new(move || {
                std::hint::black_box(Synchronizer::new(1).process(&xw, &yw).expect("lengths"));
            }),
            // The lane group includes bank construction, exactly as the
            // executor pays it per batched group.
            Some(Box::new(move || {
                let pairs: Vec<(&Bitstream, &Bitstream)> = (0..LANES).map(|_| (&xl, &yl)).collect();
                let mut bank = LaneBank::new(
                    (0..LANES)
                        .map(|_| Box::new(Synchronizer::new(1)) as Box<dyn CorrelationManipulator>)
                        .collect(),
                );
                std::hint::black_box(process_lane_pairs(&mut bank, &pairs).expect("lengths"));
            })),
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        let (xl, yl) = (x.clone(), y.clone());
        bench(
            "decorrelator_d4",
            Box::new(move || {
                std::hint::black_box(
                    Decorrelator::new(4)
                        .process_bit_serial(&xs, &ys)
                        .expect("lengths"),
                );
            }),
            Box::new(move || {
                std::hint::black_box(Decorrelator::new(4).process(&xw, &yw).expect("lengths"));
            }),
            Some(Box::new(move || {
                let pairs: Vec<(&Bitstream, &Bitstream)> = (0..LANES).map(|_| (&xl, &yl)).collect();
                let mut bank = DecorrelatorLanes::new(4, LANES);
                std::hint::black_box(process_lane_pairs(&mut bank, &pairs).expect("lengths"));
            })),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"stream_bits\": {STREAM_BITS},\n"));
    json.push_str(&format!(
        "  \"host\": {},\n",
        host_context().to_string_compact()
    ));
    json.push_str("  \"unit\": \"ns per whole-stream call, median of 9 samples\",\n");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let lane_cols = match (row.lane_ns, row.lane_speedup()) {
            (Some(lane_ns), Some(gain)) => {
                format!(", \"lane_ns\": {lane_ns:.1}, \"lane_speedup\": {gain:.2}")
            }
            _ => String::new(),
        };
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"bit_serial_ns\": {:.1}, \"word_parallel_ns\": {:.1}, \"speedup\": {:.1}{}}}{}\n",
            row.op,
            row.bit_serial_ns,
            row.word_parallel_ns,
            row.speedup(),
            lane_cols,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_word_parallel.json");
    println!("\nwrote {out_path}");

    // The refactor's acceptance bar: the single-gate operators and the SCC
    // metric must gain at least 5x from word-parallel execution.
    for required in ["and_multiply", "or_max", "scc"] {
        let row = rows
            .iter()
            .find(|r| r.op == required)
            .expect("required op measured");
        assert!(
            row.speedup() >= 5.0,
            "{required} speedup {:.1}x is below the 5x acceptance bar",
            row.speedup()
        );
    }
    println!("all required ops meet the 5x speedup bar");

    // Lane-batching acceptance bars, per-stream versus the live solo word
    // path (conservative halves of the measured gains, so a noisy shared
    // 1-CPU runner still clears them):
    //
    // * `ca_max` — counter updates vectorise across lanes; measured ~11x,
    //   gated at 3x.
    // * `decorrelator_d4` — the staged shift-register walk amortises its
    //   table lookups across lanes; measured ~3.3-3.5x, gated at 1.7x.
    // * `synchronizer_d1` — the solo speculative word path is *already*
    //   ~3.2x faster than the seed's, so the remaining lane gain is bounded
    //   by µop throughput, not latency: measured ~1.5-2.0x (the lane path
    //   is ~12x the bit-serial reference), gated at 1.2x.
    for (required, bar) in [
        ("ca_max", 3.0),
        ("decorrelator_d4", 1.7),
        ("synchronizer_d1", 1.2),
    ] {
        let row = rows
            .iter()
            .find(|r| r.op == required)
            .expect("required op measured");
        let gain = row
            .lane_speedup()
            .expect("lane-batched ops measure a lane group");
        assert!(
            gain >= bar,
            "{required} lane speedup {gain:.2}x is below the {bar}x acceptance bar"
        );
    }
    println!("all lane-batched ops meet their lane speedup bars");
}
