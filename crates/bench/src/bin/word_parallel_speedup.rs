//! Measures the word-parallel execution engine against the retained
//! bit-serial references and records the evidence in
//! `BENCH_word_parallel.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin word_parallel_speedup`.
//! The JSON file is written to the current directory (or to the path given
//! as the first argument) and is the perf trajectory record for the
//! word-parallel refactor: per operator, median ns per call at 4096-bit
//! streams for both paths, plus the speedup factor.

use sc_arith::add::ca_add;
use sc_arith::maxmin::{ca_max, or_max};
use sc_arith::multiply::and_multiply;
use sc_bitstream::{scc, Bitstream, Probability};
use sc_convert::DigitalToStochastic;
use sc_core::{CorrelationManipulator, Decorrelator, Isolator, Synchronizer};
use sc_rng::{Halton, VanDerCorput};
use std::time::Instant;

const STREAM_BITS: usize = 4096;

fn input_pair(n: usize) -> (Bitstream, Bitstream) {
    let mut gx = DigitalToStochastic::new(VanDerCorput::new());
    let mut gy = DigitalToStochastic::new(Halton::new(3));
    (
        gx.generate(Probability::saturating(0.5), n),
        gy.generate(Probability::saturating(0.75), n),
    )
}

/// Median ns per call over several timed samples, with adaptive batching so
/// each sample lasts long enough for the clock to be meaningful.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    // Calibrate the batch size to ~2 ms.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as u64;
        if ns >= 2_000_000 || iters >= 1 << 22 {
            break;
        }
        iters = (iters * 2_000_000 / ns.max(1)).clamp(iters + 1, iters * 16);
    }
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

struct Row {
    op: &'static str,
    bit_serial_ns: f64,
    word_parallel_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.bit_serial_ns / self.word_parallel_ns
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_word_parallel.json".into());
    let (x, y) = input_pair(STREAM_BITS);
    let mut rows: Vec<Row> = Vec::new();

    let mut bench = |op: &'static str, mut serial: Box<dyn FnMut()>, mut word: Box<dyn FnMut()>| {
        let bit_serial_ns = measure(&mut *serial);
        let word_parallel_ns = measure(&mut *word);
        let row = Row {
            op,
            bit_serial_ns,
            word_parallel_ns,
        };
        println!(
            "{:<24} bit-serial {:>12.1} ns   word-parallel {:>12.1} ns   speedup {:>8.1}x",
            row.op,
            row.bit_serial_ns,
            row.word_parallel_ns,
            row.speedup()
        );
        rows.push(row);
    };

    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "and_multiply",
            Box::new(move || {
                std::hint::black_box(sc_bitstream::reference::and(&xs, &ys).expect("lengths"));
            }),
            Box::new(move || {
                std::hint::black_box(and_multiply(&xw, &yw).expect("lengths"));
            }),
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "or_max",
            Box::new(move || {
                std::hint::black_box(sc_bitstream::reference::or(&xs, &ys).expect("lengths"));
            }),
            Box::new(move || {
                std::hint::black_box(or_max(&xw, &yw).expect("lengths"));
            }),
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "scc",
            Box::new(move || {
                std::hint::black_box(
                    sc_bitstream::reference::joint_counts(&xs, &ys)
                        .expect("lengths")
                        .scc(),
                );
            }),
            Box::new(move || {
                std::hint::black_box(scc(&xw, &yw));
            }),
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "ca_add",
            Box::new(move || {
                std::hint::black_box(sc_arith::reference::ca_add(&xs, &ys).expect("lengths"));
            }),
            Box::new(move || {
                std::hint::black_box(ca_add(&xw, &yw).expect("lengths"));
            }),
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "ca_max",
            Box::new(move || {
                std::hint::black_box(sc_arith::reference::ca_max(&xs, &ys).expect("lengths"));
            }),
            Box::new(move || {
                std::hint::black_box(ca_max(&xw, &yw).expect("lengths"));
            }),
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "isolator_k17",
            Box::new(move || {
                std::hint::black_box(
                    Isolator::new(17)
                        .process_bit_serial(&xs, &ys)
                        .expect("lengths"),
                );
            }),
            Box::new(move || {
                std::hint::black_box(Isolator::new(17).process(&xw, &yw).expect("lengths"));
            }),
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "synchronizer_d1",
            Box::new(move || {
                std::hint::black_box(
                    Synchronizer::new(1)
                        .process_bit_serial(&xs, &ys)
                        .expect("lengths"),
                );
            }),
            Box::new(move || {
                std::hint::black_box(Synchronizer::new(1).process(&xw, &yw).expect("lengths"));
            }),
        );
    }
    {
        let (xs, ys) = (x.clone(), y.clone());
        let (xw, yw) = (x.clone(), y.clone());
        bench(
            "decorrelator_d4",
            Box::new(move || {
                std::hint::black_box(
                    Decorrelator::new(4)
                        .process_bit_serial(&xs, &ys)
                        .expect("lengths"),
                );
            }),
            Box::new(move || {
                std::hint::black_box(Decorrelator::new(4).process(&xw, &yw).expect("lengths"));
            }),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"stream_bits\": {STREAM_BITS},\n"));
    json.push_str("  \"unit\": \"ns per whole-stream call, median of 9 samples\",\n");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"bit_serial_ns\": {:.1}, \"word_parallel_ns\": {:.1}, \"speedup\": {:.1}}}{}\n",
            row.op,
            row.bit_serial_ns,
            row.word_parallel_ns,
            row.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_word_parallel.json");
    println!("\nwrote {out_path}");

    // The refactor's acceptance bar: the single-gate operators and the SCC
    // metric must gain at least 5x from word-parallel execution.
    for required in ["and_multiply", "or_max", "scc"] {
        let row = rows
            .iter()
            .find(|r| r.op == required)
            .expect("required op measured");
        assert!(
            row.speedup() >= 5.0,
            "{required} speedup {:.1}x is below the 5x acceptance bar",
            row.speedup()
        );
    }
    println!("all required ops meet the 5x speedup bar");
}
