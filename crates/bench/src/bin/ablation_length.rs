//! §II.A ablation: stream length N versus accuracy for the designs the paper
//! evaluates at N = 256. SC precision grows like log2(N) (each bit position
//! carries equal weight), so halving the error costs roughly 4× the latency —
//! the fundamental SC trade-off the correlation circuits have to live inside.

use sc_bench::{cell, print_table};
use sc_bitstream::{ErrorStats, Probability};
use sc_convert::DigitalToStochastic;
use sc_core::ops::{desync_saturating_add, sync_max};
use sc_core::{CorrelationManipulator, Synchronizer};
use sc_rng::{Halton, VanDerCorput};

const STEPS: u64 = 16;

struct LengthResult {
    n: usize,
    multiply_error: f64,
    sync_max_error: f64,
    satadd_error: f64,
    sync_scc: f64,
}

fn sweep(n: usize) -> LengthResult {
    let mut multiply = ErrorStats::new();
    let mut max = ErrorStats::new();
    let mut satadd = ErrorStats::new();
    let mut scc_sum = 0.0;
    let mut scc_count = 0u32;
    for i in 1..STEPS {
        for j in 1..STEPS {
            let px = i as f64 / STEPS as f64;
            let py = j as f64 / STEPS as f64;
            let mut gx = DigitalToStochastic::new(VanDerCorput::new());
            let mut gy = DigitalToStochastic::new(Halton::new(3));
            let x = gx.generate(Probability::saturating(px), n);
            let y = gy.generate(Probability::saturating(py), n);
            multiply.record(x.and(&y).value(), px * py);
            max.record(sync_max(&x, &y, 1).expect("lengths").value(), px.max(py));
            satadd.record(
                desync_saturating_add(&x, &y, 1).expect("lengths").value(),
                (px + py).min(1.0),
            );
            let mut sync = Synchronizer::new(1);
            let (sx, sy) = sync.process(&x, &y).expect("lengths");
            if sx.count_ones() > 0
                && sx.count_ones() < n
                && sy.count_ones() > 0
                && sy.count_ones() < n
            {
                scc_sum += sc_bitstream::scc(&sx, &sy);
                scc_count += 1;
            }
        }
    }
    LengthResult {
        n,
        multiply_error: multiply.mean_abs_error(),
        sync_max_error: max.mean_abs_error(),
        satadd_error: satadd.mean_abs_error(),
        sync_scc: scc_sum / f64::from(scc_count.max(1)),
    }
}

fn main() {
    println!("Ablation — stream length N vs accuracy (15x15 value grid per N)");
    let results: Vec<LengthResult> = [16usize, 32, 64, 128, 256, 512, 1024]
        .into_iter()
        .map(sweep)
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.1}", (r.n as f64).log2()),
                cell(r.multiply_error),
                cell(r.sync_max_error),
                cell(r.satadd_error),
                cell(r.sync_scc),
            ]
        })
        .collect();
    print_table(
        "Accuracy vs stream length",
        &[
            "N",
            "eq. bits",
            "AND multiply err",
            "sync-max err",
            "desync-satadd err",
            "sync output SCC",
        ],
        &rows,
    );
    let first = &results[0];
    let last = &results[results.len() - 1];
    println!(
        "\nMultiply error improves {:.1}x while latency grows {}x — the linear-latency cost of SC precision (Sec. II.A).",
        first.multiply_error / last.multiply_error.max(1e-9),
        last.n / first.n
    );
    println!(
        "The synchronizer's induced correlation is already > 0.9 at N = 64, so the correlation"
    );
    println!("circuits do not limit how short the streams can be; quantization does.");
}
