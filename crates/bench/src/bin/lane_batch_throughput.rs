//! Measures the lane-batched `u64×4` kernels and the executor's stream
//! transposition against scalar execution, and records the evidence in
//! `BENCH_lane_batch.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin lane_batch_throughput`.
//! The JSON file is written to the current directory (or to the path given
//! as the first argument). For each of the three FSM laggards — `ca_max`,
//! `synchronizer_d1`, `decorrelator_d4` — at 4096-bit streams it reports,
//! per stream:
//!
//! * `scalar_ns` — one solo word-parallel call;
//! * `lane_ns` — a `LANES`-wide kernel-level lane group, time / 4;
//! * `executor_scalar_ns` — one of four same-class [`StreamJob`]s streamed
//!   through [`Executor::run_stream`] with a window of 1, which forces the
//!   scalar dispatch path;
//! * `executor_lane_ns` — the same four jobs with a window of `LANES`, which
//!   lets the executor transpose them into lanes and step their FSM stages
//!   together.
//!
//! The bin asserts bit-identity between the two executor configurations
//! before timing anything, then gates the kernel-level lane speedups and the
//! end-to-end executor transposition gain.

use sc_arith::maxmin::{ca_max, ca_max_lanes};
use sc_bitstream::{Bitstream, Probability};
use sc_convert::DigitalToStochastic;
use sc_core::{
    process_lane_pairs, CorrelationManipulator, Decorrelator, DecorrelatorLanes, LaneBank,
    Synchronizer, LANES,
};
use sc_graph::{
    BatchInput, BinaryOp, CompiledGraph, Executor, Graph, ManipulatorKind, PlannerOptions,
    StreamJob,
};
use sc_rng::{Halton, VanDerCorput};
use sc_telemetry::{Json, TelemetrySink};
use std::sync::Arc;
use std::time::Instant;

const STREAM_BITS: usize = 4096;

fn input_pair(n: usize) -> (Bitstream, Bitstream) {
    let mut gx = DigitalToStochastic::new(VanDerCorput::new());
    let mut gy = DigitalToStochastic::new(Halton::new(3));
    (
        gx.generate(Probability::saturating(0.5), n),
        gy.generate(Probability::saturating(0.75), n),
    )
}

/// Median ns per call over several timed samples, with adaptive batching so
/// each sample lasts long enough for the clock to be meaningful.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    // Calibrate the batch size to ~2 ms.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as u64;
        if ns >= 2_000_000 || iters >= 1 << 22 {
            break;
        }
        iters = (iters * 2_000_000 / ns.max(1)).clamp(iters + 1, iters * 16);
    }
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// A two-input plan exercising one lane-batchable operator, fed by raw input
/// streams so the measurement is the operator itself, not source generation.
fn plan_for(op: &str) -> Arc<CompiledGraph> {
    let mut g = Graph::new();
    let a = g.input_stream(0);
    let b = g.input_stream(1);
    match op {
        "ca_max" => {
            let z = g.binary(BinaryOp::CaMax, a, b);
            g.sink_stream("out_x", z);
        }
        "synchronizer_d1" => {
            let (mx, my) = g.manipulate(ManipulatorKind::Synchronizer { depth: 1 }, a, b);
            g.sink_stream("out_x", mx);
            g.sink_stream("out_y", my);
        }
        "decorrelator_d4" => {
            let (mx, my) = g.manipulate(ManipulatorKind::Decorrelator { depth: 4 }, a, b);
            g.sink_stream("out_x", mx);
            g.sink_stream("out_y", my);
        }
        other => unreachable!("unknown op {other}"),
    }
    // No auto-repair: the plan must contain exactly the operator under test.
    Arc::new(
        g.compile(&PlannerOptions::no_repair())
            .expect("two-input bench graphs are valid"),
    )
}

struct Row {
    op: &'static str,
    scalar_ns: f64,
    lane_ns: f64,
    executor_scalar_ns: f64,
    executor_lane_ns: f64,
}

impl Row {
    fn lane_speedup(&self) -> f64 {
        self.scalar_ns / self.lane_ns
    }

    fn executor_speedup(&self) -> f64 {
        self.executor_scalar_ns / self.executor_lane_ns
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_lane_batch.json".into());
    let (x, y) = input_pair(STREAM_BITS);
    let executor = Executor::new(STREAM_BITS).with_threads(1);
    let mut rows: Vec<Row> = Vec::new();

    for op in ["ca_max", "synchronizer_d1", "decorrelator_d4"] {
        let plan = plan_for(op);
        let jobs = || {
            (0..LANES).map(|_| StreamJob {
                plan: Arc::clone(&plan),
                input: BatchInput::with_streams(vec![x.clone(), y.clone()]),
            })
        };
        // Bit-identity first: the transposed window must reproduce the
        // scalar window's outputs exactly, and the stats must prove each
        // configuration took the path it claims to measure.
        let (scalar_out, scalar_stats) = executor
            .run_stream_with_stats(jobs(), 1)
            .expect("bench jobs execute");
        let (lane_out, lane_stats) = executor
            .run_stream_with_stats(jobs(), LANES)
            .expect("bench jobs execute");
        assert_eq!(
            scalar_out, lane_out,
            "{op}: transposed execution diverged from scalar execution"
        );
        assert_eq!(scalar_stats.lane_batched_jobs, 0, "{op}: window 1 batched");
        assert_eq!(
            lane_stats.lane_batched_jobs, LANES,
            "{op}: window {LANES} did not lane-batch"
        );

        let scalar_ns = match op {
            "ca_max" => measure(|| {
                std::hint::black_box(ca_max(&x, &y).expect("lengths"));
            }),
            "synchronizer_d1" => measure(|| {
                std::hint::black_box(Synchronizer::new(1).process(&x, &y).expect("lengths"));
            }),
            "decorrelator_d4" => measure(|| {
                std::hint::black_box(Decorrelator::new(4).process(&x, &y).expect("lengths"));
            }),
            other => unreachable!("unknown op {other}"),
        };
        let lane_ns = match op {
            "ca_max" => measure(|| {
                let pairs: Vec<(&Bitstream, &Bitstream)> = (0..LANES).map(|_| (&x, &y)).collect();
                std::hint::black_box(ca_max_lanes(&pairs).expect("lengths"));
            }),
            "synchronizer_d1" => measure(|| {
                let pairs: Vec<(&Bitstream, &Bitstream)> = (0..LANES).map(|_| (&x, &y)).collect();
                let mut bank = LaneBank::new(
                    (0..LANES)
                        .map(|_| Box::new(Synchronizer::new(1)) as Box<dyn CorrelationManipulator>)
                        .collect(),
                );
                std::hint::black_box(process_lane_pairs(&mut bank, &pairs).expect("lengths"));
            }),
            "decorrelator_d4" => measure(|| {
                let pairs: Vec<(&Bitstream, &Bitstream)> = (0..LANES).map(|_| (&x, &y)).collect();
                let mut bank = DecorrelatorLanes::new(4, LANES);
                std::hint::black_box(process_lane_pairs(&mut bank, &pairs).expect("lengths"));
            }),
            other => unreachable!("unknown op {other}"),
        } / LANES as f64;
        let executor_scalar_ns = measure(|| {
            std::hint::black_box(executor.run_stream(jobs(), 1).expect("bench jobs execute"));
        }) / LANES as f64;
        let executor_lane_ns = measure(|| {
            std::hint::black_box(
                executor
                    .run_stream(jobs(), LANES)
                    .expect("bench jobs execute"),
            );
        }) / LANES as f64;

        let row = Row {
            op,
            scalar_ns,
            lane_ns,
            executor_scalar_ns,
            executor_lane_ns,
        };
        println!(
            "{:<16} scalar {:>9.1} ns   lane {:>9.1} ns ({:>5.2}x)   executor scalar {:>9.1} ns   executor lane {:>9.1} ns ({:>5.2}x)",
            row.op,
            row.scalar_ns,
            row.lane_ns,
            row.lane_speedup(),
            row.executor_scalar_ns,
            row.executor_lane_ns,
            row.executor_speedup(),
        );
        rows.push(row);
    }

    // One instrumented lane-batched dispatch per op for the machine-readable
    // summary: the same TelemetryReport JSON every instrumented consumer
    // gets, instead of a hand-rolled writer.
    let sink = TelemetrySink::new();
    let instrumented = Executor::new(STREAM_BITS).with_telemetry(sink.clone());
    for op in ["ca_max", "synchronizer_d1", "decorrelator_d4"] {
        let plan = plan_for(op);
        let jobs = (0..LANES).map(|_| StreamJob {
            plan: Arc::clone(&plan),
            input: BatchInput::with_streams(vec![x.clone(), y.clone()]),
        });
        instrumented
            .run_stream(jobs, LANES)
            .expect("bench jobs execute");
    }
    let telemetry = sink.drain().to_json();

    let doc = Json::obj(vec![
        ("stream_bits", Json::u64(STREAM_BITS as u64)),
        ("lanes", Json::u64(LANES as u64)),
        ("host", sc_bench::host_context()),
        (
            "unit",
            Json::str(
                "ns per stream, median of 9 samples; executor columns run 4 \
                 same-class StreamJobs",
            ),
        ),
        (
            "results",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::obj(vec![
                            ("op", Json::str(row.op)),
                            ("scalar_ns", Json::fixed(row.scalar_ns, 1)),
                            ("lane_ns", Json::fixed(row.lane_ns, 1)),
                            ("lane_speedup", Json::fixed(row.lane_speedup(), 2)),
                            ("executor_scalar_ns", Json::fixed(row.executor_scalar_ns, 1)),
                            ("executor_lane_ns", Json::fixed(row.executor_lane_ns, 1)),
                            ("executor_speedup", Json::fixed(row.executor_speedup(), 2)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("telemetry", telemetry),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_lane_batch.json");
    println!("\nwrote {out_path}");

    // Acceptance bars, conservative halves of the measured gains so a noisy
    // shared 1-CPU runner still clears them (see BENCH_lane_batch.json for
    // the measured values on the development box).
    for (required, lane_bar, exec_bar) in [
        ("ca_max", 3.0, 1.5),
        ("synchronizer_d1", 1.2, 1.0),
        ("decorrelator_d4", 1.7, 1.3),
    ] {
        let row = rows
            .iter()
            .find(|r| r.op == required)
            .expect("required op measured");
        assert!(
            row.lane_speedup() >= lane_bar,
            "{required} kernel lane speedup {:.2}x is below the {lane_bar}x bar",
            row.lane_speedup()
        );
        assert!(
            row.executor_speedup() >= exec_bar,
            "{required} executor transposition speedup {:.2}x is below the {exec_bar}x bar",
            row.executor_speedup()
        );
    }
    println!("all lane kernels and the executor transposition meet their bars");
}
