//! Gates the cost of the telemetry layer itself, recording the evidence in
//! `BENCH_telemetry.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin telemetry_overhead`.
//! The JSON file is written to the current directory (or to the path given
//! as the first argument).
//!
//! Four configurations run the same 64-job stream of 4096-bit
//! AND-multiply plans (not lane-batchable, so every job takes the scalar
//! path and the per-job instrumentation cost is maximally exposed):
//!
//! * **baseline** — a plain [`Executor::run`] loop: no streaming engine, no
//!   telemetry touchpoints at all;
//! * **disabled** — [`Executor::run_stream`] with the default (disabled)
//!   [`TelemetrySink`]: the shipped configuration, paying the streaming
//!   engine plus the is-enabled checks of every instrumentation site;
//! * **enabled** — the same stream with an enabled sink recording spans,
//!   counters, gauges, and histograms for every job;
//! * **live** — the enabled stream while a concurrent sampler thread takes
//!   [`TelemetrySink::snapshot_delta`] interval snapshots at 1 kHz the
//!   whole time — the continuous-observation configuration a scrape
//!   endpoint or SLO watcher puts the sink in, at a far harsher cadence
//!   than either uses.
//!
//! Three claims are gated:
//!
//! * **Disabled telemetry is free** — the disabled-sink stream holds ≥ 97%
//!   of the baseline's throughput (≤ 3% regression). The instrumentation
//!   sits at step/job granularity — never inside the word kernels — so a
//!   disabled sink costs a handful of pointer-null checks per job.
//! * **Enabled telemetry is cheap** — recording everything still holds
//!   ≥ 85% of the disabled-sink throughput (≤ 15% overhead).
//! * **Live sampling doesn't stall the pipeline** — a concurrent
//!   delta-snapshot consumer costs the recording side at most 10%
//!   (live ≥ 90% of enabled): snapshots clone and diff outside the hot
//!   recording paths instead of locking them.

use sc_bench::{host_context, measure_rate as measure};
use sc_graph::{BatchInput, BinaryOp, Executor, Graph, PlannerOptions, StreamJob};
use sc_rng::SourceSpec;
use sc_telemetry::{Counter, Json, TelemetrySink};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const STREAM_BITS: usize = 4096;
const JOBS: usize = 64;
const WINDOW: usize = 8;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".into());

    // Two generated sources into an AND multiply: no manipulator or unary
    // FSM step, so the plan is not lane-batchable and every streamed job
    // crosses the scalar instrumentation sites individually.
    let mut g = Graph::new();
    let x = g.generate(0, SourceSpec::Sobol { dimension: 1 });
    let y = g.generate(1, SourceSpec::Sobol { dimension: 2 });
    let z = g.binary(BinaryOp::AndMultiply, x, y);
    g.sink_value("z", z);
    let plan = Arc::new(
        g.compile(&PlannerOptions::default())
            .expect("bench graph is valid"),
    );
    assert!(
        plan.report().inserted.is_empty(),
        "the AND multiply of two independent sources needs no repair"
    );
    assert!(
        !plan.lane_batchable(),
        "scalar-path bench plan lane-batched"
    );

    let input = BatchInput::with_values(vec![0.7, 0.4]);
    let jobs = || {
        (0..JOBS).map(|_| StreamJob {
            plan: Arc::clone(&plan),
            input: input.clone(),
        })
    };

    let baseline_exec = Executor::new(STREAM_BITS);
    let baseline = measure(|| {
        for _ in 0..JOBS {
            std::hint::black_box(
                baseline_exec
                    .run(&plan, &input)
                    .expect("bench jobs execute"),
            );
        }
    });

    let disabled_exec = Executor::new(STREAM_BITS);
    assert!(!disabled_exec.telemetry().is_enabled());
    let disabled = measure(|| {
        std::hint::black_box(
            disabled_exec
                .run_stream(jobs(), WINDOW)
                .expect("bench jobs execute"),
        );
    });

    let sink = TelemetrySink::new();
    let enabled_exec = Executor::new(STREAM_BITS).with_telemetry(sink.clone());
    let enabled = measure(|| {
        std::hint::black_box(
            enabled_exec
                .run_stream(jobs(), WINDOW)
                .expect("bench jobs execute"),
        );
        // Keep the span rings from saturating across samples; draining is
        // part of the enabled sink's steady-state cost anyway.
        std::hint::black_box(sink.drain());
    });

    // Live sampling: the same enabled stream while a sampler thread drains
    // interval deltas at 1 kHz — orders of magnitude harsher than any real
    // scrape or SLO-check cadence (Prometheus defaults to 15 s), so the
    // gate bounds a far worse case than production. An *unthrottled*
    // snapshot loop is excluded deliberately: each delta drains the
    // per-thread span rings, so back-to-back snapshots contend the ring
    // locks the recording threads need and measure lock ping-pong, not
    // sampling cost.
    let live_sink = TelemetrySink::new();
    let live_exec = Executor::new(STREAM_BITS).with_telemetry(live_sink.clone());
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let sink = live_sink.clone();
        let stop = Arc::clone(&sampler_stop);
        std::thread::Builder::new()
            .name("sc-bench-sampler".into())
            .spawn(move || {
                let mut samples = 0u64;
                while !stop.load(Ordering::Acquire) {
                    std::hint::black_box(sink.snapshot_delta());
                    samples += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                samples
            })
            .expect("spawning the sampler thread succeeds")
    };
    let live = measure(|| {
        std::hint::black_box(
            live_exec
                .run_stream(jobs(), WINDOW)
                .expect("bench jobs execute"),
        );
        std::hint::black_box(live_sink.drain());
    });
    sampler_stop.store(true, Ordering::Release);
    let samples = sampler.join().expect("the sampler thread completes");
    assert!(samples > 0, "the sampler never ran a delta snapshot");

    let disabled_vs_baseline = disabled / baseline;
    let enabled_vs_disabled = enabled / disabled;
    let live_vs_enabled = live / enabled;
    println!(
        "baseline {baseline:>8.2} streams/s   disabled {disabled:>8.2} ({:>5.1}%)   \
         enabled {enabled:>8.2} ({:>5.1}% of disabled)   \
         live {live:>8.2} ({:>5.1}% of enabled, {samples} delta snapshots)",
        100.0 * disabled_vs_baseline,
        100.0 * enabled_vs_disabled,
        100.0 * live_vs_enabled,
    );

    // One instrumented run for the machine-readable summary: the report
    // itself is the evidence that every job was seen.
    let report_sink = TelemetrySink::new();
    let report_exec = Executor::new(STREAM_BITS).with_telemetry(report_sink.clone());
    report_exec
        .run_stream(jobs(), WINDOW)
        .expect("bench jobs execute");
    let report = report_sink.drain();
    assert_eq!(report.counter(Counter::JobsPulled), JOBS as u64);

    let doc = Json::obj(vec![
        ("stream_bits", Json::u64(STREAM_BITS as u64)),
        ("jobs_per_call", Json::u64(JOBS as u64)),
        ("window", Json::u64(WINDOW as u64)),
        ("host", host_context()),
        (
            "unit",
            Json::str("64-job stream dispatches per second, best of 7 samples"),
        ),
        (
            "results",
            Json::obj(vec![
                ("baseline_calls_per_sec", Json::fixed(baseline, 2)),
                ("disabled_calls_per_sec", Json::fixed(disabled, 2)),
                ("enabled_calls_per_sec", Json::fixed(enabled, 2)),
                ("live_calls_per_sec", Json::fixed(live, 2)),
                ("disabled_vs_baseline", Json::fixed(disabled_vs_baseline, 3)),
                ("enabled_vs_disabled", Json::fixed(enabled_vs_disabled, 3)),
                ("live_vs_enabled", Json::fixed(live_vs_enabled, 3)),
            ]),
        ),
        ("telemetry", report.to_json()),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_telemetry.json");
    println!("wrote {out_path}");

    // Gate 1: the default (disabled) sink is free — within 3% of an
    // executor loop with no streaming engine and no telemetry at all.
    assert!(
        disabled_vs_baseline >= 0.97,
        "disabled-sink streaming ({disabled:.2}/s) fell below 97% of the \
         uninstrumented baseline ({baseline:.2}/s)"
    );
    println!("disabled sink holds >= 0.97x the uninstrumented baseline");

    // Gate 2: recording everything costs at most 15%.
    assert!(
        enabled_vs_disabled >= 0.85,
        "enabled-sink streaming ({enabled:.2}/s) fell below 85% of the \
         disabled-sink stream ({disabled:.2}/s)"
    );
    println!("enabled sink holds >= 0.85x the disabled-sink throughput");

    // Gate 3: continuous delta-snapshot sampling costs the recording side
    // at most 10%.
    assert!(
        live_vs_enabled >= 0.9,
        "live-sampled streaming ({live:.2}/s) fell below 90% of the \
         sampler-free enabled stream ({enabled:.2}/s)"
    );
    println!("live delta sampling holds >= 0.9x the sampler-free enabled stream");
}
