//! §III.B ablation: series composition of minimal-depth (D = 1) correlation
//! manipulating circuits versus a single deeper FSM, including the
//! initial-state trick that balances the compounded bias.

use sc_bench::{cell, cell1, print_table, PAPER_STREAM_LENGTH};
use sc_core::analysis::{evaluate_manipulator, SweepConfig};
use sc_core::{Desynchronizer, ManipulatorChain, Synchronizer};
use sc_hwcost::characterize;
use sc_rng::RngKind;

fn main() {
    let config = SweepConfig {
        stream_length: PAPER_STREAM_LENGTH,
        value_steps: 16,
    };
    println!("Ablation — composing D = 1 circuits in series (LFSR / VDC inputs)");

    // Chains of synchronizers.
    let mut rows = Vec::new();
    for stages in 1..=6usize {
        let eval = evaluate_manipulator(
            || ManipulatorChain::repeated(stages, |_| Synchronizer::new(1)),
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            config,
        )
        .expect("sweep");
        let area = stages as f64 * characterize::synchronizer(1).area_um2();
        rows.push(vec![
            stages.to_string(),
            cell(eval.output_scc),
            cell(eval.bias_x),
            cell(eval.bias_y),
            cell1(area),
        ]);
    }
    print_table(
        "Synchronizer chains (each stage D = 1)",
        &["stages", "output SCC", "X' bias", "Y' bias", "area (um2)"],
        &rows,
    );

    // Chains of desynchronizers.
    let mut rows = Vec::new();
    for stages in 1..=6usize {
        let eval = evaluate_manipulator(
            || ManipulatorChain::repeated(stages, |_| Desynchronizer::new(1)),
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            config,
        )
        .expect("sweep");
        rows.push(vec![
            stages.to_string(),
            cell(eval.output_scc),
            cell(eval.bias_x),
            cell(eval.bias_y),
        ]);
    }
    print_table(
        "Desynchronizer chains (each stage D = 1)",
        &["stages", "output SCC", "X' bias", "Y' bias"],
        &rows,
    );

    // Chain versus one deep FSM at matched total save capacity.
    let mut rows = Vec::new();
    for capacity in [2u32, 4, 8] {
        let chain_eval = evaluate_manipulator(
            || ManipulatorChain::repeated(capacity as usize, |_| Synchronizer::new(1)),
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            config,
        )
        .expect("sweep");
        let deep_eval = evaluate_manipulator(
            || Synchronizer::new(capacity),
            RngKind::Lfsr,
            RngKind::VanDerCorput,
            config,
        )
        .expect("sweep");
        rows.push(vec![
            capacity.to_string(),
            cell(chain_eval.output_scc),
            cell(deep_eval.output_scc),
            cell(chain_eval.bias_x.abs() + chain_eval.bias_y.abs()),
            cell(deep_eval.bias_x.abs() + deep_eval.bias_y.abs()),
        ]);
    }
    print_table(
        "Chain of D=1 stages vs one depth-D FSM (matched capacity)",
        &[
            "capacity",
            "chain out SCC",
            "deep out SCC",
            "chain |bias|",
            "deep |bias|",
        ],
        &rows,
    );

    // Alternating initial states to cancel the compounded bias (§III.B).
    let plain = evaluate_manipulator(
        || ManipulatorChain::repeated(4, |_| Synchronizer::new(1)),
        RngKind::Lfsr,
        RngKind::VanDerCorput,
        config,
    )
    .expect("sweep");
    let balanced = evaluate_manipulator(
        || {
            ManipulatorChain::repeated(4, |i| {
                Synchronizer::with_initial_credit(1, if i % 2 == 0 { 1 } else { -1 })
            })
        },
        RngKind::Lfsr,
        RngKind::VanDerCorput,
        config,
    )
    .expect("sweep");
    println!(
        "\nBias with 4 plain stages:      X' {:+.4}  Y' {:+.4}",
        plain.bias_x, plain.bias_y
    );
    println!(
        "Bias with alternating initial states: X' {:+.4}  Y' {:+.4}",
        balanced.bias_x, balanced.bias_y
    );
}
