//! Measures the cross-tile batch dispatcher of `sc_image` and the
//! speculative FSM word-stepping of `sc_core`, recording the evidence in
//! `BENCH_tile_batch.json`.
//!
//! Run with `cargo run --release -p sc_bench --bin tile_batch_throughput`.
//! The JSON file is written to the current directory (or to the path given
//! as the first argument).
//!
//! Two claims are gated:
//!
//! * **Cross-tile dispatch** — a whole image (every tile compiled or
//!   cache-retargeted to its own plan) streamed through the executor's
//!   persistent-pool dispatcher (`run_sc_pipeline_with_threads`, i.e.
//!   `Executor::run_stream` at the default window) must beat the sequential
//!   per-tile loop (the same dispatcher at one worker) on a multi-core
//!   machine; on a single-CPU machine, where sharding can only break even,
//!   it must stay within 15% of single-thread throughput — the same
//!   tolerance pattern as `graph_batch_throughput`.
//! * **Speculative FSM word-stepping** — the table-driven synchronizer and
//!   desynchronizer `step_word` must beat the retained bit-serial path
//!   (`process_bit_serial`, the in-tree reference every word path is
//!   verified against) by at least 5× at 4096-bit streams, at the depths
//!   the planner and pipeline actually insert (synchronizer D = 2,
//!   desynchronizer D = 1).

use sc_bench::{host_context, measure_rate as measure};
use sc_bitstream::Bitstream;
use sc_core::{CorrelationManipulator, Desynchronizer, Synchronizer};
use sc_image::{run_sc_pipeline_with_threads, GrayImage, PipelineConfig, PipelineVariant};

const FSM_STREAM_BITS: usize = 4096;

fn bench_image() -> GrayImage {
    let blob = GrayImage::gaussian_blob(30, 30);
    GrayImage::from_fn(30, 30, |x, y| {
        0.6 * blob.get(x, y) + 0.4 * (x as f64 / 30.0)
    })
}

struct FsmRow {
    kernel: &'static str,
    bit_serial_ns: f64,
    speculative_ns: f64,
}

impl FsmRow {
    fn speedup(&self) -> f64 {
        self.bit_serial_ns / self.speculative_ns
    }
}

fn bench_fsm<M, F>(kernel: &'static str, make: F) -> FsmRow
where
    M: CorrelationManipulator,
    F: Fn() -> M,
{
    let n = FSM_STREAM_BITS;
    let x = Bitstream::from_fn(n, |i| (i * 7 + 3) % 5 < 2);
    let y = Bitstream::from_fn(n, |i| (i * 11 + 1) % 3 == 0);
    let serial = measure(|| {
        let mut m = make();
        std::hint::black_box(m.process_bit_serial(&x, &y).expect("equal lengths"));
    });
    let speculative = measure(|| {
        let mut m = make();
        std::hint::black_box(m.process(&x, &y).expect("equal lengths"));
    });
    let row = FsmRow {
        kernel,
        bit_serial_ns: 1e9 / serial,
        speculative_ns: 1e9 / speculative,
    };
    println!(
        "{:<20} bit-serial {:>10.0} ns   speculative {:>10.0} ns   speedup {:>6.1}x",
        row.kernel,
        row.bit_serial_ns,
        row.speculative_ns,
        row.speedup()
    );
    row
}

struct TileRow {
    threads: usize,
    images_per_sec: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_tile_batch.json".into());
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // On a single-CPU machine still exercise the sharded path (2 workers);
    // the gate below adapts.
    let sharded_threads = cpus.clamp(2, 8);

    // --- Cross-tile dispatch: 30×30 image, 10-pixel tiles → 9 tiles in 4
    // plan-cache classes, dispatched as one heterogeneous group.
    let img = bench_image();
    let config = PipelineConfig {
        stream_length: 256,
        tile_size: 10,
        rng_bank_size: 8,
        synchronizer_depth: 2,
        ..PipelineConfig::default()
    };
    let mut tile_rows: Vec<TileRow> = Vec::new();
    for threads in [1usize, sharded_threads] {
        let images_per_sec = measure(|| {
            let out =
                run_sc_pipeline_with_threads(&img, PipelineVariant::Synchronizer, &config, threads)
                    .expect("benchmark pipeline executes");
            std::hint::black_box(out);
        });
        println!("tiles 9  threads {threads}  {images_per_sec:>8.2} images/sec");
        tile_rows.push(TileRow {
            threads,
            images_per_sec,
        });
    }
    let single = tile_rows[0].images_per_sec;
    let sharded = tile_rows[1].images_per_sec;
    let tile_speedup = sharded / single;

    // --- Speculative FSM word-stepping at the depths the planner inserts.
    let fsm_rows = vec![
        bench_fsm("synchronizer_d2", || Synchronizer::new(2)),
        bench_fsm("desynchronizer_d1", || Desynchronizer::new(1)),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"host\": {},\n",
        host_context().to_string_compact()
    ));
    json.push_str(&format!("  \"cpus\": {cpus},\n"));
    json.push_str(&format!("  \"sharded_threads\": {sharded_threads},\n"));
    json.push_str(
        "  \"tile_dispatch\": {\n    \"image\": \"30x30, 10px tiles (9 tiles), N=256, \
         synchronizer variant\",\n    \"unit\": \"whole images per second, best of 7 samples\",\n",
    );
    json.push_str(&format!(
        "    \"cross_tile_speedup\": {tile_speedup:.3},\n    \"results\": [\n"
    ));
    for (i, row) in tile_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"threads\": {}, \"images_per_sec\": {:.2}}}{}\n",
            row.threads,
            row.images_per_sec,
            if i + 1 == tile_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str(&format!(
        "  \"fsm_word_stepping\": {{\n    \"stream_bits\": {FSM_STREAM_BITS},\n    \"unit\": \
         \"ns per whole-stream call, best of 7 samples\",\n    \"results\": [\n"
    ));
    for (i, row) in fsm_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"kernel\": \"{}\", \"bit_serial_ns\": {:.0}, \"speculative_ns\": {:.0}, \
             \"speedup\": {:.1}}}{}\n",
            row.kernel,
            row.bit_serial_ns,
            row.speculative_ns,
            row.speedup(),
            if i + 1 == fsm_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_tile_batch.json");
    println!("\nwrote {out_path}");

    // Gate 1: cross-tile dispatch (strict on multi-core, tolerance on 1 CPU).
    if cpus > 1 {
        assert!(
            sharded > single,
            "cross-tile dispatch ({sharded:.2} images/s on {sharded_threads} threads) must \
             beat the sequential per-tile loop ({single:.2} images/s) on a {cpus}-CPU machine"
        );
        println!("cross-tile dispatch beats sequential tiles: {tile_speedup:.2}x");
    } else {
        assert!(
            tile_speedup >= 0.85,
            "on a single CPU, cross-tile dispatch must stay within 15% of single-thread \
             throughput (got {tile_speedup:.2}x)"
        );
        println!(
            "single CPU: cross-tile dispatch within tolerance of sequential ({tile_speedup:.2}x)"
        );
    }

    // Gate 2: speculative FSM stepping must beat the bit-serial path ≥ 5×.
    for row in &fsm_rows {
        assert!(
            row.speedup() >= 5.0,
            "{} speculative word-stepping speedup {:.1}x is below the 5x acceptance bar",
            row.kernel,
            row.speedup()
        );
    }
    println!("speculative FSM word-stepping meets the 5x speedup bar");
}
