//! # sc-image
//!
//! The image-processing case study of §IV: a stochastic-computing accelerator
//! that runs a Gaussian blur (GB) followed by a Roberts-cross edge detector
//! (ED) over an image in 10×10 tiles.
//!
//! The pipeline is the paper's motivating example for correlation
//! manipulation: the SC Gaussian blur wants *uncorrelated* inputs while the
//! SC edge detector's XOR subtractors want *positively correlated* inputs, so
//! something has to fix up correlation between the two kernels. Three
//! accelerator variants are modelled (Table IV):
//!
//! * [`PipelineVariant::NoManipulation`] — GB outputs feed the ED directly
//!   (cheap but inaccurate),
//! * [`PipelineVariant::Regeneration`] — every GB output is converted back to
//!   binary and re-encoded from a shared source (accurate but expensive),
//! * [`PipelineVariant::Synchronizer`] — a synchronizer is inserted in front
//!   of each ED subtractor pair (accurate and far cheaper).
//!
//! The stochastic pipeline is implemented on the `sc_graph` dataflow engine:
//! every tile is built as a graph ([`graph::tile_graph`]) whose XOR
//! subtractors declare their SCC +1 precondition, and the synchronizer
//! variant's correlation repair is **auto-inserted by the graph planner**
//! rather than wired by hand. [`run_sc_pipeline`] is a thin wrapper over
//! build → compile → execute; the pre-graph per-tile loop is retained in
//! `graph`'s tests as the bit-identity reference.
//!
//! **Observability.** [`PipelineConfig::with_telemetry`] attaches an
//! [`sc_telemetry::TelemetrySink`] that the whole run records into: per-tile
//! plan-cache hits (with nested retarget spans) and misses (with per-pass
//! compile spans), the executor's dispatch / lane-group / scalar / worker
//! activity, and the final sink scatter. Draining the sink yields one
//! [`sc_telemetry::TelemetryReport`] with the per-stage time breakdown,
//! counters, and the lane-group fill histogram; [`PipelineStats`] is a
//! plain-struct view over the same run (tiles, compilations,
//! lane-batched vs scalar jobs, fill distribution).
//!
//! The paper's input images are not published, so workloads are synthetic
//! ([`GrayImage::gradient`], [`GrayImage::checkerboard`],
//! [`GrayImage::gaussian_blob`], [`GrayImage::noise`]); accuracy is always
//! reported relative to the floating-point pipeline run on the *same* image,
//! so the ranking between variants is insensitive to image content.
//!
//! # Example
//!
//! ```
//! use sc_image::{GrayImage, PipelineConfig, PipelineVariant, run_sc_pipeline, run_float_pipeline};
//!
//! let image = GrayImage::gaussian_blob(20, 20);
//! let reference = run_float_pipeline(&image);
//! let config = PipelineConfig { stream_length: 64, ..PipelineConfig::default() };
//! let sc = run_sc_pipeline(&image, PipelineVariant::Synchronizer, &config)?;
//! let err = sc.mean_abs_error(&reference)?;
//! assert!(err < 0.1);
//! # Ok::<(), sc_image::ImageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod assemble;
pub mod edge;
pub mod gaussian;
pub mod graph;
pub mod image;
pub mod pipeline;
pub mod planner;
pub mod serve;

pub use accelerator::{AcceleratorCost, CostBreakdown};
pub use assemble::scatter_sinks;
pub use edge::{roberts_cross_float, sc_edge_detector};
pub use gaussian::{gaussian_blur_float, ScGaussianBlur, GAUSSIAN_WEIGHTS};
pub use graph::{measured_planner_options, planner_options, tile_graph, tile_mean, TileGraph};
pub use image::{GrayImage, ImageError};
pub use pipeline::{
    run_float_pipeline, run_sc_pipeline, run_sc_pipeline_with_stats, run_sc_pipeline_with_threads,
    run_sc_pipeline_with_window, PipelineConfig, PipelineStats, PipelineVariant,
};
pub use planner::{tile_origins, PlannedTile, TilePlanner};
pub use sc_telemetry::{TelemetryReport, TelemetrySink};
pub use serve::{ImageHandle, ImageResponse, ImageServer, ImageServerBuilder, ImageSubmitError};
