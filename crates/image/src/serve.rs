//! The image **serving front**: whole-image requests over one warm
//! [`sc_graph::Service`].
//!
//! [`ImageServer`] is the long-lived counterpart of the one-shot
//! [`crate::run_sc_pipeline`] family. It keeps three things warm across
//! requests: the service's worker pool (no per-image thread spin-up), the
//! shared [`TilePlanner`] (one per-class plan cache for *all* requests, so a
//! request whose tile classes were already compiled plans in retarget time),
//! and the service's dispatch window (tiles from concurrently submitted
//! images coalesce into the same lane-batched groups when they share a
//! `plan_class` — the cross-request batching the serving tier exists for).
//!
//! [`ImageServer::submit`] decomposes the image into per-tile
//! [`sc_graph::StreamJob`]s (raster order, so per-request select seeds — and
//! therefore pixels — are bit-identical to the one-shot pipeline), submits
//! them as one [`sc_graph::Request`], and returns an [`ImageHandle`] that
//! assembles the output image on [`ImageHandle::wait`]. Submission blocks
//! when the service's bounded intake is full ([`ImageServer::try_submit`]
//! fails fast instead); per-request deadlines and cancellation pass straight
//! through to the service.

use crate::assemble::scatter_sinks;
use crate::image::{GrayImage, ImageError};
use crate::pipeline::{PipelineConfig, PipelineStats, PipelineVariant};
use crate::planner::{tile_origins, TilePlanner};
use sc_graph::{
    Request, RequestAttribution, RequestError, RequestHandle, Service, ServiceConfig, StreamJob,
    SubmitError,
};
use sc_telemetry::TelemetrySink;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Builder for an [`ImageServer`]; see [`ImageServer::builder`].
#[derive(Debug, Clone)]
pub struct ImageServerBuilder {
    variant: PipelineVariant,
    config: PipelineConfig,
    threads: Option<usize>,
    window: Option<usize>,
    intake_capacity: Option<usize>,
    plan_cache_capacity: Option<usize>,
}

impl ImageServerBuilder {
    /// Sets the worker-thread count (default: available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets the service dispatch-window size (default: the executor
    /// default, `threads ×`[`sc_graph::DEFAULT_WINDOW_FACTOR`]).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = Some(window.max(1));
        self
    }

    /// Sets the intake capacity in *tiles* (default:
    /// `window ×`[`sc_graph::serve::DEFAULT_INTAKE_FACTOR`]).
    #[must_use]
    pub fn with_intake_capacity(mut self, capacity: usize) -> Self {
        self.intake_capacity = Some(capacity.max(1));
        self
    }

    /// Bounds the shared plan cache to `capacity` compiled tile classes with
    /// LRU eviction ([`TilePlanner::with_capacity`]); templates held by
    /// in-flight tiles are pinned. Default: unbounded.
    #[must_use]
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = Some(capacity);
        self
    }

    /// Starts the server: spins up the warm service and the shared planner.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::EmptyImage`] for degenerate configurations
    /// (zero-sized tiles or streams), mirroring the one-shot pipeline.
    pub fn start(self) -> Result<ImageServer, ImageError> {
        if self.config.tile_size == 0
            || self.config.stream_length == 0
            || self.config.rng_bank_size == 0
        {
            return Err(ImageError::EmptyImage);
        }
        let threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        let mut service_config = ServiceConfig::new(self.config.stream_length)
            .with_threads(threads)
            .with_telemetry(self.config.telemetry.clone());
        if let Some(window) = self.window {
            service_config = service_config.with_window(window);
        }
        if let Some(capacity) = self.intake_capacity {
            service_config = service_config.with_intake_capacity(capacity);
        }
        let planner = TilePlanner::new(self.variant, self.config.clone())
            .with_capacity(self.plan_cache_capacity);
        Ok(ImageServer {
            service: Service::start(service_config),
            planner: Mutex::new(planner),
            telemetry: self.config.telemetry.clone(),
        })
    }
}

/// Why an image submission did not enter the service. Unlike
/// [`sc_graph::SubmitError`] there is no payload to hand back — the caller
/// still owns the input image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageSubmitError {
    /// Non-blocking submit on a full intake queue.
    Rejected,
    /// The deadline had already expired at submit time.
    Expired,
    /// The server is shutting down.
    ShutDown,
}

impl std::fmt::Display for ImageSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageSubmitError::Rejected => write!(f, "intake queue full"),
            ImageSubmitError::Expired => write!(f, "deadline expired at submit"),
            ImageSubmitError::ShutDown => write!(f, "image server shut down"),
        }
    }
}

impl std::error::Error for ImageSubmitError {}

impl From<SubmitError> for ImageSubmitError {
    fn from(err: SubmitError) -> Self {
        match err {
            SubmitError::Rejected(_) => ImageSubmitError::Rejected,
            SubmitError::Expired(_) => ImageSubmitError::Expired,
            SubmitError::ShutDown(_) => ImageSubmitError::ShutDown,
        }
    }
}

/// A completed image request: the rendered output plus its serving-tier
/// accounting (a per-image view over [`sc_graph::RequestReport`]).
#[derive(Debug, Clone)]
pub struct ImageResponse {
    /// The edge-magnitude output image.
    pub image: GrayImage,
    /// Tiles the request decomposed into.
    pub tiles: usize,
    /// Wall-clock attribution across the serving stages
    /// (submit → queue-wait → execute → assemble, summing to `wall_ns`).
    pub attribution: RequestAttribution,
    /// Tiles executed through the lane-batched path.
    pub lane_batched_jobs: usize,
    /// Tiles executed through the scalar path.
    pub scalar_jobs: usize,
    /// Lane-batched tiles whose group mixed tiles from two or more requests.
    pub cross_request_lane_jobs: usize,
    /// Planning-side accounting for this request (tiles planned, plan-cache
    /// compilations, optimizer deltas); execution-side fields are zero —
    /// they live in the request's lane/scalar tallies above.
    pub planning: PipelineStats,
}

/// An in-flight image request; resolves on [`wait`](ImageHandle::wait).
pub struct ImageHandle {
    handle: RequestHandle,
    sinks: Vec<Vec<(usize, usize, String)>>,
    width: usize,
    height: usize,
    planning: PipelineStats,
    telemetry: TelemetrySink,
}

impl std::fmt::Debug for ImageHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImageHandle")
            .field("id", &self.handle.id())
            .field("tiles", &self.sinks.len())
            .finish_non_exhaustive()
    }
}

impl ImageHandle {
    /// The underlying request id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.handle.id()
    }

    /// Whether the request has already finished (completed or failed).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Requests cancellation: undispatched tiles are dropped and already
    /// completed tile results are discarded; `wait` reports
    /// [`RequestError::Cancelled`].
    pub fn cancel(&self) {
        self.handle.cancel();
    }

    /// Blocks until the request resolves and assembles the output image.
    ///
    /// # Errors
    ///
    /// Propagates the request's [`RequestError`]: the deterministic
    /// first-failing-tile error, cancellation, deadline expiry, or server
    /// shutdown.
    pub fn wait(self) -> Result<ImageResponse, RequestError> {
        let report = self.handle.wait()?;
        let mut image = GrayImage::filled(self.width, self.height, 0.0);
        scatter_sinks(&mut image, &self.sinks, &report.outputs, &self.telemetry);
        Ok(ImageResponse {
            image,
            tiles: report.outputs.len(),
            attribution: report.attribution,
            lane_batched_jobs: report.lane_batched_jobs,
            scalar_jobs: report.scalar_jobs,
            cross_request_lane_jobs: report.cross_request_lane_jobs,
            planning: self.planning,
        })
    }
}

/// The warm image server; see the [module docs](self).
pub struct ImageServer {
    service: Service,
    planner: Mutex<TilePlanner>,
    telemetry: TelemetrySink,
}

impl ImageServer {
    /// A server for one variant + configuration with default sizing; use
    /// [`builder`](Self::builder) to size threads, window, intake, and the
    /// plan-cache bound.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::EmptyImage`] for degenerate configurations.
    pub fn start(
        variant: PipelineVariant,
        config: PipelineConfig,
    ) -> Result<ImageServer, ImageError> {
        ImageServer::builder(variant, config).start()
    }

    /// A builder with default sizing for one variant + configuration.
    #[must_use]
    pub fn builder(variant: PipelineVariant, config: PipelineConfig) -> ImageServerBuilder {
        ImageServerBuilder {
            variant,
            config,
            threads: None,
            window: None,
            intake_capacity: None,
            plan_cache_capacity: None,
        }
    }

    /// The telemetry sink the server (and its service) records into.
    #[must_use]
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Compiled tile classes currently held by the shared plan cache.
    #[must_use]
    pub fn cached_classes(&self) -> usize {
        self.planner
            .lock()
            .expect("planner lock is never poisoned")
            .cached_classes()
    }

    /// Templates evicted by the plan cache's LRU bound so far.
    #[must_use]
    pub fn plan_cache_evictions(&self) -> u64 {
        self.planner
            .lock()
            .expect("planner lock is never poisoned")
            .evictions()
    }

    /// Submits a whole image, blocking while the service intake is full;
    /// producers slow down to the service's pace rather than queueing
    /// unboundedly.
    ///
    /// # Errors
    ///
    /// [`ImageSubmitError::ShutDown`] if the server is stopping.
    pub fn submit(&self, image: &GrayImage) -> Result<ImageHandle, ImageSubmitError> {
        self.submit_request(image, None, false)
    }

    /// Like [`submit`](Self::submit) with an absolute deadline: expired-at-
    /// submit requests fail fast with [`ImageSubmitError::Expired`]; in-
    /// flight expiry drops the request's remaining tiles.
    ///
    /// # Errors
    ///
    /// [`ImageSubmitError::Expired`] or [`ImageSubmitError::ShutDown`].
    pub fn submit_with_deadline(
        &self,
        image: &GrayImage,
        deadline: Instant,
    ) -> Result<ImageHandle, ImageSubmitError> {
        self.submit_request(image, Some(deadline), false)
    }

    /// Like [`submit_with_deadline`](Self::submit_with_deadline) with a
    /// deadline `timeout` from now.
    ///
    /// # Errors
    ///
    /// Same as [`submit_with_deadline`](Self::submit_with_deadline).
    pub fn submit_with_timeout(
        &self,
        image: &GrayImage,
        timeout: Duration,
    ) -> Result<ImageHandle, ImageSubmitError> {
        self.submit_request(image, Some(Instant::now() + timeout), false)
    }

    /// Non-blocking submit: fails with [`ImageSubmitError::Rejected`]
    /// instead of waiting when the intake is full, so load-shedding
    /// producers can drop or retry on their own schedule.
    ///
    /// # Errors
    ///
    /// [`ImageSubmitError::Rejected`], [`ImageSubmitError::Expired`], or
    /// [`ImageSubmitError::ShutDown`].
    pub fn try_submit(&self, image: &GrayImage) -> Result<ImageHandle, ImageSubmitError> {
        self.submit_request(image, None, true)
    }

    fn submit_request(
        &self,
        image: &GrayImage,
        deadline: Option<Instant>,
        non_blocking: bool,
    ) -> Result<ImageHandle, ImageSubmitError> {
        // Plan all tiles up front under the shared planner lock: requests
        // plan one at a time (compilation is already amortised by the shared
        // cache), while execution below multiplexes freely.
        let mut planner = self.planner.lock().expect("planner lock is never poisoned");
        let tile_size = planner.config().tile_size;
        let origins = tile_origins(image, tile_size);
        let mut planning = PipelineStats::default();
        let mut jobs = Vec::with_capacity(origins.len());
        let mut sinks = Vec::with_capacity(origins.len());
        for (tile_index, &(x0, y0)) in origins.iter().enumerate() {
            let planned = planner.plan_tile(image, x0, y0, tile_index as u64, &mut planning);
            sinks.push(planned.sinks);
            jobs.push(StreamJob {
                plan: planned.plan,
                input: planned.input,
            });
        }
        drop(planner);
        let mut request = Request::new(jobs);
        request.deadline = deadline;
        let handle = if non_blocking {
            self.service.try_submit(request)?
        } else {
            self.service.submit(request)?
        };
        Ok(ImageHandle {
            handle,
            sinks,
            width: image.width(),
            height: image.height(),
            planning,
            telemetry: self.telemetry.clone(),
        })
    }
}
