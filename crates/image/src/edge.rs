//! Roberts-cross edge detection: floating-point reference and stochastic
//! implementation.
//!
//! The Roberts cross operator approximates the gradient magnitude at pixel
//! `(x, y)` from the 2×2 neighbourhood as
//! `0.5·(|p(x,y) − p(x+1,y+1)| + |p(x,y+1) − p(x+1,y)|)` (the 0.5 scale keeps
//! the result in `[0, 1]`, matching the SC scaled adder). The stochastic
//! implementation uses two XOR subtractors feeding a MUX adder, and is only
//! accurate when each XOR's two input streams are **positively correlated** —
//! which is exactly what the paper's synchronizer (or the expensive
//! regeneration baseline) provides between the Gaussian-blur and
//! edge-detection kernels.

use crate::image::GrayImage;
use sc_bitstream::{Bitstream, Result};
use sc_rng::RandomSource;

/// Floating-point Roberts-cross edge detector with replicate border padding.
#[must_use]
pub fn roberts_cross_float(image: &GrayImage) -> GrayImage {
    GrayImage::from_fn(image.width(), image.height(), |x, y| {
        let (xi, yi) = (x as isize, y as isize);
        let a = image.get_clamped(xi, yi);
        let b = image.get_clamped(xi + 1, yi);
        let c = image.get_clamped(xi, yi + 1);
        let d = image.get_clamped(xi + 1, yi + 1);
        0.5 * ((a - d).abs() + (b - c).abs())
    })
}

/// Floating-point Roberts cross of a single 2×2 neighbourhood `[a, b, c, d]`
/// laid out as `[(x,y), (x+1,y), (x,y+1), (x+1,y+1)]`.
#[must_use]
pub fn roberts_cross_float_pixel(neighbourhood: &[f64; 4]) -> f64 {
    let [a, b, c, d] = *neighbourhood;
    0.5 * ((a - d).abs() + (b - c).abs())
}

/// Stochastic Roberts-cross kernel for one output pixel: two XOR subtractors
/// and a MUX scaled adder whose select bits come from `select_source`.
///
/// The caller is responsible for the correlation of `(a, d)` and `(b, c)`;
/// feeding uncorrelated streams reproduces the large errors of the
/// "no manipulation" accelerator variant.
///
/// # Errors
///
/// Returns a length-mismatch error if the four streams differ in length.
pub fn sc_edge_detector<S: RandomSource>(
    a: &Bitstream,
    b: &Bitstream,
    c: &Bitstream,
    d: &Bitstream,
    select_source: &mut S,
) -> Result<Bitstream> {
    let diag = a.try_xor(d)?;
    let anti = b.try_xor(c)?;
    // The select bits are packed a word at a time by `Bitstream::from_fn`;
    // the XORs and the MUX all run on the word-parallel combinators.
    let select = sc_arith::add::half_select_stream(select_source, diag.len());
    Bitstream::mux(&anti, &diag, &select)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_bitstream::Probability;
    use sc_convert::DigitalToStochastic;
    use sc_core::{CorrelationManipulator, Synchronizer};
    use sc_rng::{Halton, Lfsr, Sobol, VanDerCorput};

    #[test]
    fn float_edge_detector_finds_edges() {
        let img = GrayImage::checkerboard(12, 12, 4);
        let edges = roberts_cross_float(&img);
        // Inside a flat square the response is zero; across a boundary it is large.
        assert!(edges.get(1, 1) < 1e-9);
        assert!(edges.get(3, 1) > 0.3);
    }

    #[test]
    fn float_edge_detector_is_zero_on_constant_images() {
        let img = GrayImage::filled(6, 6, 0.7);
        let edges = roberts_cross_float(&img);
        assert!(edges.mean() < 1e-12);
    }

    #[test]
    fn pixel_helper_matches_image_version() {
        let img = GrayImage::gradient(8, 8);
        let (x, y) = (3usize, 4usize);
        let nb = [
            img.get_clamped(x as isize, y as isize),
            img.get_clamped(x as isize + 1, y as isize),
            img.get_clamped(x as isize, y as isize + 1),
            img.get_clamped(x as isize + 1, y as isize + 1),
        ];
        let full = roberts_cross_float(&img);
        assert!((roberts_cross_float_pixel(&nb) - full.get(x, y)).abs() < 1e-12);
    }

    #[test]
    fn sc_edge_detector_accurate_with_correlated_inputs() {
        let n = 2048;
        let values = [0.8, 0.35, 0.55, 0.2];
        // Generate all four streams from shared samples of one source so they
        // are maximally positively correlated.
        let streams: Vec<Bitstream> = {
            use sc_rng::RandomSource;
            let mut out = vec![Bitstream::zeros(n); 4];
            let mut source = VanDerCorput::new();
            for i in 0..n {
                let r = source.next_unit();
                for (k, v) in values.iter().enumerate() {
                    out[k].set(i, *v > r);
                }
            }
            out
        };
        let mut sel = Lfsr::new(16, 0x1D0D);
        let z =
            sc_edge_detector(&streams[0], &streams[1], &streams[2], &streams[3], &mut sel).unwrap();
        let expected = roberts_cross_float_pixel(&values);
        assert!(
            (z.value() - expected).abs() < 0.05,
            "sc {} vs float {expected}",
            z.value()
        );
    }

    #[test]
    fn sc_edge_detector_wrong_with_uncorrelated_inputs_and_fixed_by_synchronizer() {
        let n = 2048;
        let values = [0.6, 0.6, 0.6, 0.6];
        // Four mutually uncorrelated streams: the true edge response is 0,
        // but uncorrelated XOR computes 2·p(1−p) ≈ 0.48 instead.
        let sources: [u32; 4] = [1, 3, 5, 7];
        let streams: Vec<Bitstream> = values
            .iter()
            .zip(sources.iter())
            .map(|(&v, &dim)| {
                let mut g = DigitalToStochastic::new(Sobol::new(dim));
                g.generate(Probability::new(v).unwrap(), n)
            })
            .collect();
        let mut sel = Lfsr::new(16, 0x42A7);
        let wrong =
            sc_edge_detector(&streams[0], &streams[1], &streams[2], &streams[3], &mut sel).unwrap();
        assert!(
            wrong.value() > 0.3,
            "uncorrelated inputs give a large spurious edge"
        );

        // Insert synchronizers in front of each XOR pair (the Fig. 5 idea as
        // used by the accelerator's synchronizer variant).
        let mut sync_ad = Synchronizer::new(1);
        let (a2, d2) = sync_ad.process(&streams[0], &streams[3]).unwrap();
        let mut sync_bc = Synchronizer::new(1);
        let (b2, c2) = sync_bc.process(&streams[1], &streams[2]).unwrap();
        let mut sel2 = Lfsr::new(16, 0x42A7);
        let fixed = sc_edge_detector(&a2, &b2, &c2, &d2, &mut sel2).unwrap();
        assert!(
            fixed.value() < 0.08,
            "synchronized inputs should give a near-zero edge, got {}",
            fixed.value()
        );
    }

    #[test]
    fn sc_edge_detector_rejects_length_mismatch() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(9);
        let mut sel = Halton::new(3);
        assert!(sc_edge_detector(&a, &a, &a, &b, &mut sel).is_err());
        assert!(sc_edge_detector(&a, &b, &a, &a, &mut sel).is_err());
    }
}
